//! End-to-end integration: generator → database → mining → rules,
//! across crates.

use parallel_arm::prelude::*;

fn synthetic() -> Database {
    let mut p = QuestParams::paper(10, 4, 2_000);
    p.n_patterns = 100; // keep per-pattern support realistic at this size
    generate(&p)
}

#[test]
fn generator_feeds_miner() {
    let db = synthetic();
    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.01),
        ..AprioriConfig::default()
    };
    let r = parallel_arm::core::mine(&db, &cfg);
    assert!(r.total_frequent() > 0, "pattern data must yield itemsets");
    assert!(r.max_k() >= 2, "patterns of mean size 4 must yield pairs");

    // Every reported support is correct by brute-force recount.
    for (items, sup) in r.all_itemsets().iter().take(200) {
        let actual = db
            .iter()
            .filter(|t| arm_hashtree::is_subset(items, t))
            .count() as u32;
        assert_eq!(actual, *sup, "support mismatch for {items:?}");
        assert!(*sup >= r.min_support);
    }
}

#[test]
fn mining_is_complete_against_naive_reference() {
    let db = synthetic();
    let minsup = 20;
    let expected = parallel_arm::core::naive::mine_levelwise(&db, minsup, None);
    let cfg = AprioriConfig {
        min_support: Support::Absolute(minsup),
        ..AprioriConfig::default()
    };
    let got = parallel_arm::core::mine(&db, &cfg).all_itemsets();
    assert_eq!(got, expected);
}

#[test]
fn rules_pipeline_end_to_end() {
    let db = synthetic();
    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.01),
        ..AprioriConfig::default()
    };
    let r = parallel_arm::core::mine(&db, &cfg);
    let rules = generate_rules(&r, 0.7);
    for rule in &rules {
        assert!(rule.confidence >= 0.7 && rule.confidence <= 1.0 + 1e-12);
        assert!(!rule.antecedent.is_empty() && !rule.consequent.is_empty());
        // Antecedent and consequent are disjoint and sorted.
        assert!(rule.antecedent.windows(2).all(|w| w[0] < w[1]));
        assert!(rule.consequent.windows(2).all(|w| w[0] < w[1]));
        assert!(rule.antecedent.iter().all(|a| !rule.consequent.contains(a)));
    }
}

#[test]
fn dataset_io_roundtrip_preserves_mining_results() {
    let db = synthetic();
    let mut buf = Vec::new();
    parallel_arm::dataset::io::write_binary(&db, &mut buf).unwrap();
    let back = parallel_arm::dataset::io::read_binary(&buf[..]).unwrap();
    assert_eq!(db, back);

    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.02),
        ..AprioriConfig::default()
    };
    let a = parallel_arm::core::mine(&db, &cfg).all_itemsets();
    let b = parallel_arm::core::mine(&back, &cfg).all_itemsets();
    assert_eq!(a, b);
}
