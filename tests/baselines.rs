//! Cross-algorithm agreement: the optimized parallel CCPD, sequential
//! Apriori, the vertical (Eclat-style) miner, the two-scan Partition
//! algorithm, and the DHP pair-filtered variant must all produce the
//! same frequent itemsets.

use parallel_arm::prelude::*;

fn synthetic() -> Database {
    let mut p = QuestParams::paper(10, 4, 2_000).with_seed(21);
    p.n_patterns = 120;
    generate(&p)
}

#[test]
fn five_miners_agree() {
    let db = synthetic();
    let frac = 0.01;
    let minsup = db.absolute_support(frac);

    let apriori_cfg = AprioriConfig {
        min_support: Support::Fraction(frac),
        ..AprioriConfig::default()
    };
    let apriori = parallel_arm::core::mine(&db, &apriori_cfg).all_itemsets();
    assert!(!apriori.is_empty());

    let (ccpd_res, _) = ccpd::mine(&db, &ParallelConfig::new(apriori_cfg.clone(), 3));
    assert_eq!(ccpd_res.all_itemsets(), apriori, "CCPD");

    let eclat = parallel_arm::core::mine_eclat(&db, minsup, None);
    assert_eq!(eclat, apriori, "Eclat");

    let partition = parallel_arm::core::mine_partition(&db, frac, 4, None);
    assert_eq!(partition, apriori, "Partition");

    let dhp_cfg = AprioriConfig {
        pair_filter_buckets: Some(1 << 12),
        ..apriori_cfg
    };
    let dhp = parallel_arm::core::mine(&db, &dhp_cfg).all_itemsets();
    assert_eq!(dhp, apriori, "DHP");
}

#[test]
fn dhp_filter_shrinks_c2() {
    let db = synthetic();
    let base_cfg = AprioriConfig {
        min_support: Support::Fraction(0.01),
        max_k: Some(2),
        ..AprioriConfig::default()
    };
    let base = parallel_arm::core::mine(&db, &base_cfg);
    let dhp = parallel_arm::core::mine(
        &db,
        &AprioriConfig {
            pair_filter_buckets: Some(1 << 14),
            ..base_cfg
        },
    );
    let c2_base = base.iter_stats[1].n_candidates;
    let c2_dhp = dhp.iter_stats[1].n_candidates;
    assert!(
        c2_dhp < c2_base / 2,
        "DHP should prune most of C2: {c2_dhp} vs {c2_base}"
    );
    // ... without losing any frequent itemset.
    assert_eq!(dhp.all_itemsets(), base.all_itemsets());
    assert_eq!(dhp.iter_stats[1].n_frequent, base.iter_stats[1].n_frequent);
}

#[test]
fn dhp_in_parallel_driver() {
    let db = synthetic();
    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.01),
        pair_filter_buckets: Some(1 << 12),
        ..AprioriConfig::default()
    };
    let expected = parallel_arm::core::mine(&db, &cfg).all_itemsets();
    for p in [1usize, 3] {
        let (r, _) = ccpd::mine(&db, &ParallelConfig::new(cfg.clone(), p));
        assert_eq!(r.all_itemsets(), expected, "P={p}");
    }
}

#[test]
fn tiny_bucket_table_still_lossless() {
    // With absurdly few buckets almost nothing is pruned (counts
    // saturate above minsup), but correctness must hold.
    let db = synthetic();
    let base_cfg = AprioriConfig {
        min_support: Support::Fraction(0.01),
        max_k: Some(3),
        ..AprioriConfig::default()
    };
    let base = parallel_arm::core::mine(&db, &base_cfg).all_itemsets();
    let dhp = parallel_arm::core::mine(
        &db,
        &AprioriConfig {
            pair_filter_buckets: Some(7),
            ..base_cfg
        },
    )
    .all_itemsets();
    assert_eq!(dhp, base);
}
