//! Scheduling differential: every dynamic mode of the `arm-exec`
//! executor (chunked / guided / stealing) must produce frequent-itemset
//! results **bit-identical** to the `Static` oracle — the paper's fixed
//! equal-block split — for every thread count, chunk size, and dataset,
//! including the Zipf-tailed skew the executor exists to handle.
//!
//! With the LGpp placement all CCPD support counting goes through the
//! tallied shared counters, so the telemetry invariant is exact too:
//! the *total* number of counter increments equals the oracle's (every
//! support unit is counted exactly once, no matter which thread's chunk
//! it lands in).
//!
//! `ARM_STRESS_THREADS` raises the top thread count (CI sets 16).

use parallel_arm::metrics::Counter;
use parallel_arm::prelude::*;
use parallel_arm::quest::LengthDist;
use proptest::prelude::*;
use std::sync::OnceLock;

fn max_threads() -> usize {
    std::env::var("ARM_STRESS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(2)
}

/// Three Poisson-length databases plus one heavy-tailed one.
fn dbs() -> &'static Vec<Database> {
    static DBS: OnceLock<Vec<Database>> = OnceLock::new();
    DBS.get_or_init(|| {
        let mut out: Vec<Database> = [11u64, 29, 71]
            .iter()
            .map(|&seed| {
                let mut p = QuestParams::paper(10, 4, 400).with_seed(seed);
                p.n_patterns = 70;
                generate(&p)
            })
            .collect();
        let mut p = QuestParams::paper(10, 4, 400)
            .with_seed(5)
            .with_length_dist(LengthDist::ZipfTail {
                exponent: 1.6,
                max_factor: 8,
            });
        p.n_patterns = 70;
        out.push(generate(&p));
        out
    })
}

fn base_cfg() -> AprioriConfig {
    // LGpp: external counters, so CtrIncrements tallies every support unit.
    // Capped depth and a mid support keep the suite debug-build fast
    // while still crossing several candidate generations.
    AprioriConfig {
        min_support: Support::Fraction(0.02),
        max_k: Some(4),
        ..AprioriConfig::default()
    }
    .with_placement(PlacementPolicy::LGpp)
}

struct Oracle {
    itemsets: Vec<(Vec<parallel_arm::dataset::Item>, u32)>,
    ctr_increments: u64,
}

/// Static P=1 ground truth per fixture database.
fn oracles() -> &'static Vec<Oracle> {
    static ORACLES: OnceLock<Vec<Oracle>> = OnceLock::new();
    ORACLES.get_or_init(|| {
        dbs()
            .iter()
            .map(|db| {
                let cfg = ParallelConfig::new(base_cfg(), 1).with_scheduling(Scheduling::Static);
                let (r, stats) = ccpd::mine(db, &cfg);
                let itemsets = r.all_itemsets();
                assert!(!itemsets.is_empty(), "degenerate oracle fixture");
                Oracle {
                    itemsets,
                    ctr_increments: stats.metrics.total(Counter::CtrIncrements),
                }
            })
            .collect()
    })
}

fn check_ccpd(db_idx: usize, p: usize, mode: Scheduling) {
    let db = &dbs()[db_idx];
    let oracle = &oracles()[db_idx];
    let cfg = ParallelConfig::new(base_cfg(), p).with_scheduling(mode);
    let (r, stats) = ccpd::mine(db, &cfg);
    assert_eq!(
        r.all_itemsets(),
        oracle.itemsets,
        "ccpd db={db_idx} P={p} {mode:?}"
    );
    if MetricsRegistry::enabled() {
        assert_eq!(
            stats.metrics.total(Counter::CtrIncrements),
            oracle.ctr_increments,
            "ccpd increment total db={db_idx} P={p} {mode:?}"
        );
    }
}

fn all_modes() -> [Scheduling; 6] {
    [
        Scheduling::Static,
        Scheduling::Chunked { chunk: 1 },
        Scheduling::Chunked { chunk: 37 },
        Scheduling::Chunked { chunk: 256 },
        Scheduling::Guided,
        Scheduling::Stealing,
    ]
}

#[test]
fn ccpd_every_mode_matches_static_oracle() {
    let top = max_threads();
    for db_idx in 0..dbs().len() {
        for p in [2, top] {
            for mode in all_modes() {
                check_ccpd(db_idx, p, mode);
            }
        }
    }
}

#[test]
fn pccd_every_mode_matches_static_oracle() {
    // PCCD's dynamic path swaps per-thread local counters for shared
    // atomic ones, so bit-identical itemsets here exercise a genuinely
    // different counting pipeline than CCPD.
    let top = max_threads();
    for db_idx in [0usize, 3] {
        let db = &dbs()[db_idx];
        let oracle = &oracles()[db_idx];
        for p in [2, top.min(5)] {
            for mode in all_modes() {
                let cfg = ParallelConfig::new(base_cfg(), p).with_scheduling(mode);
                let (r, _) = pccd::mine(db, &cfg);
                assert_eq!(
                    r.all_itemsets(),
                    oracle.itemsets,
                    "pccd db={db_idx} P={p} {mode:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random (dataset, thread count, chunk size) triples: the chunked
    /// cursor must agree with Static even at adversarial granularities
    /// (chunk = 1 hands out single transactions).
    #[test]
    fn random_chunk_geometry_matches_oracle(
        db_idx in 0usize..4,
        p in 1usize..=8,
        chunk in 1usize..400,
    ) {
        let p = p.min(max_threads());
        check_ccpd(db_idx, p, Scheduling::Chunked { chunk });
    }

    /// Random (dataset, thread count) pairs under the adaptive modes.
    #[test]
    fn random_threads_adaptive_modes_match_oracle(
        db_idx in 0usize..4,
        p in 1usize..=8,
        steal in any::<bool>(),
    ) {
        let p = p.min(max_threads());
        let mode = if steal { Scheduling::Stealing } else { Scheduling::Guided };
        check_ccpd(db_idx, p, mode);
    }
}
