//! `max_k` edge-case battery: every miner in the workspace must treat
//! the depth cap identically —
//!
//! * `Some(0)` allows nothing (empty result, not "just F1");
//! * `Some(1)` yields exactly the frequent singletons;
//! * `Some(d)` for the exact natural depth `d` changes nothing;
//! * `Some(big)` and `None` agree.
//!
//! `Some(0)` used to leak F1 out of the level-wise miners; this suite
//! pins the uniform semantics across apriori, naive, eclat, partition,
//! CCPD, PCCD, the vertical miners, and the hybrid driver.

use parallel_arm::core::{mine_eclat, mine_partition, mine_with, naive::mine_levelwise};
use parallel_arm::prelude::*;
use parallel_arm::vertical::{mine_eclat_parallel, mine_vertical};

const FRACTION: f64 = 0.02;

fn dataset() -> Database {
    let mut p = QuestParams::paper(5, 2, 400).with_seed(7);
    p.n_patterns = 40;
    generate(&p)
}

fn cfg(max_k: Option<u32>) -> AprioriConfig {
    AprioriConfig {
        min_support: Support::Fraction(FRACTION),
        max_k,
        ..AprioriConfig::default()
    }
}

/// A miner's output: itemsets with their supports, length-then-lex order.
type Mined = Vec<(Vec<u32>, u32)>;

/// Runs every miner with the given cap and returns the (named) results.
fn all_miners(db: &Database, max_k: Option<u32>) -> Vec<(String, Mined)> {
    let minsup = db.absolute_support(FRACTION);
    let mut out = vec![
        (
            "apriori".to_string(),
            mine_with(db, &cfg(max_k), None).all_itemsets(),
        ),
        ("naive".to_string(), mine_levelwise(db, minsup, max_k)),
        ("eclat".to_string(), mine_eclat(db, minsup, max_k)),
        (
            "partition".to_string(),
            mine_partition(db, FRACTION, 2, max_k),
        ),
        (
            "vertical".to_string(),
            mine_vertical(db, minsup, max_k, &VerticalConfig::default()),
        ),
    ];
    for p in [1usize, 4] {
        let pc = ParallelConfig::new(cfg(max_k), p);
        let (r, _) = ccpd::mine(db, &pc);
        out.push((format!("ccpd-p{p}"), r.all_itemsets()));
        let (r, _) = pccd::mine(db, &pc);
        out.push((format!("pccd-p{p}"), r.all_itemsets()));
        let (r, _) = mine_eclat_parallel(db, minsup, max_k, &VerticalConfig::default(), p);
        out.push((format!("par-eclat-p{p}"), r));
        let (r, _) = mine_hybrid(db, &pc, &VerticalConfig::default());
        out.push((format!("hybrid-p{p}"), r));
    }
    out
}

#[test]
fn max_k_zero_is_empty_everywhere() {
    let db = dataset();
    for (name, result) in all_miners(&db, Some(0)) {
        assert!(result.is_empty(), "{name}: Some(0) must allow nothing");
    }
}

#[test]
fn max_k_one_is_exactly_the_singletons() {
    let db = dataset();
    let runs = all_miners(&db, Some(1));
    let (_, reference) = &runs[0];
    assert!(!reference.is_empty());
    assert!(reference.iter().all(|(s, _)| s.len() == 1));
    for (name, result) in &runs {
        assert_eq!(result, reference, "{name}: Some(1) disagrees");
    }
}

#[test]
fn max_k_at_exact_depth_and_beyond_match_uncapped() {
    let db = dataset();
    let uncapped = all_miners(&db, None);
    let (_, reference) = &uncapped[0];
    let natural = reference.iter().map(|(s, _)| s.len()).max().unwrap() as u32;
    assert!(natural >= 2, "fixture must mine beyond singletons");
    for (name, result) in &uncapped {
        assert_eq!(result, reference, "{name}: uncapped disagrees");
    }
    for cap in [natural, natural + 1, u32::MAX] {
        for (name, result) in all_miners(&db, Some(cap)) {
            assert_eq!(&result, reference, "{name}: cap {cap} disagrees");
        }
    }
    // An interior cap is a strict prefix of the uncapped result.
    let interior: Vec<_> = reference
        .iter()
        .filter(|(s, _)| s.len() <= (natural - 1) as usize)
        .cloned()
        .collect();
    for (name, result) in all_miners(&db, Some(natural - 1)) {
        assert_eq!(result, interior, "{name}: interior cap disagrees");
    }
}
