//! Concurrency stress: 8 threads hammer the shared hash tree build and
//! the shared support counters with *randomized* block splits, and the
//! final counts must be bit-identical to the sequential ground truth
//! every round.
//!
//! The randomized splits (including empty and wildly skewed blocks) shake
//! out ordering assumptions that fixed even partitions would never hit;
//! the metrics registry rides along so the lock/CAS telemetry is itself
//! validated against exact invariants (every tallied counter increment
//! corresponds to one final support unit).

use parallel_arm::core::{
    adaptive_fanout, equivalence_classes, f1_items, frequent_singletons, generate_class, make_hash,
    HashScheme,
};
use parallel_arm::hashtree::{
    freeze_policy, naive_counts, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter,
    PlacementPolicy, TreeBuilder, WorkMeter,
};
use parallel_arm::mem::FlatCounters;
use parallel_arm::metrics::{Counter, MetricsRegistry, TalliedCounters};
use parallel_arm::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::ops::Range;
use std::thread;

const THREADS: usize = 8;
const ROUNDS: u64 = 5;

/// Splits `0..n` into `parts` contiguous blocks at random cut points.
/// Blocks may be empty or hold nearly everything — that skew is the point.
fn random_splits(rng: &mut StdRng, n: usize, parts: usize) -> Vec<Range<usize>> {
    let mut cuts: Vec<usize> = (0..parts - 1).map(|_| rng.gen_range(0..n + 1)).collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for c in cuts {
        out.push(start..c);
        start = c;
    }
    out.push(start..n);
    out
}

struct Fixture {
    db: Database,
    cands: CandidateSet,
    hash: parallel_arm::balance::AnyHash,
    expected: Vec<u32>,
}

fn fixture() -> Fixture {
    let mut p = QuestParams::paper(10, 4, 1_000).with_seed(42);
    p.n_patterns = 60;
    let db = generate(&p);
    let minsup = db.absolute_support(0.01);
    let f1 = frequent_singletons(&db, minsup);
    let classes = equivalence_classes(&f1);
    let mut cands = CandidateSet::new(2);
    let mut scratch = Vec::new();
    for c in &classes {
        generate_class(&f1, c.clone(), &mut cands, &mut scratch);
    }
    assert!(cands.len() > THREADS, "fixture too small to stress");
    let fanout = adaptive_fanout(&classes, 4, 2);
    let hash = make_hash(HashScheme::Bitonic, fanout, &f1_items(&f1), db.n_items());
    let expected = naive_counts(&cands, &db);
    Fixture {
        db,
        cands,
        hash,
        expected,
    }
}

#[test]
fn randomized_build_and_shared_count_is_bit_identical_to_sequential() {
    let fx = fixture();
    let total_hits: u64 = fx.expected.iter().map(|&c| c as u64).sum();
    assert!(total_hits > 0);

    for round in 0..ROUNDS {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ round);
        let metrics = MetricsRegistry::new(THREADS);

        // Phase 1: concurrent tree build over randomized candidate blocks.
        let builder = TreeBuilder::new(&fx.cands, &fx.hash, 4);
        let cand_blocks = random_splits(&mut rng, fx.cands.len(), THREADS);
        thread::scope(|s| {
            for (t, range) in cand_blocks.iter().cloned().enumerate() {
                let builder = &builder;
                let metrics = &metrics;
                s.spawn(move || {
                    let shard = metrics.shard(t);
                    for id in range {
                        builder.insert_tallied(id as u32, shard);
                    }
                });
            }
        });
        // External-counter placement: counting goes through FlatCounters.
        let tree = freeze_policy(&builder, PlacementPolicy::LGpp);
        assert!(!tree.counters_inline());

        // Phase 2: concurrent counting over randomized database blocks
        // into one shared atomic counter array.
        let shared = FlatCounters::new(fx.cands.len());
        let db_blocks = random_splits(&mut rng, fx.db.len(), THREADS);
        thread::scope(|s| {
            for (t, range) in db_blocks.iter().cloned().enumerate() {
                let tree = &tree;
                let shared = &shared;
                let metrics = &metrics;
                let fx = &fx;
                s.spawn(move || {
                    let shard = metrics.shard(t);
                    let mut scratch = CountScratch::new(fx.db.n_items(), tree.n_nodes());
                    let tallied = TalliedCounters::new(shared, shard);
                    let mut cref = CounterRef::Shared(&tallied);
                    let mut meter = WorkMeter::default();
                    tree.count_partition(
                        &fx.hash,
                        &fx.db,
                        range,
                        None::<&ItemFilter>,
                        &mut scratch,
                        &mut cref,
                        CountOptions::default(),
                        &mut meter,
                    );
                });
            }
        });

        assert_eq!(shared.snapshot(), fx.expected, "round {round}");
        if MetricsRegistry::enabled() {
            let snap = metrics.snapshot();
            // One lock acquisition per insert, at minimum.
            assert!(snap.total(Counter::LeafLockAcquires) >= fx.cands.len() as u64);
            // Every final support unit passed through the tallied counters
            // exactly once.
            assert_eq!(snap.total(Counter::CtrIncrements), total_hits);
            assert!(snap.total(Counter::CtrCasRetries) <= total_hits);
        }
    }
}

#[test]
fn randomized_inline_count_is_bit_identical_to_sequential() {
    // Same stress against the *inline* (in-node atomic) counter path the
    // CCPD placement uses.
    let fx = fixture();
    for round in 0..ROUNDS {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ round);
        let builder = TreeBuilder::new(&fx.cands, &fx.hash, 4);
        let cand_blocks = random_splits(&mut rng, fx.cands.len(), THREADS);
        thread::scope(|s| {
            for range in cand_blocks.iter().cloned() {
                let builder = &builder;
                s.spawn(move || {
                    for id in range {
                        builder.insert(id as u32);
                    }
                });
            }
        });
        let tree = freeze_policy(&builder, PlacementPolicy::Ccpd);
        assert!(tree.counters_inline());

        let db_blocks = random_splits(&mut rng, fx.db.len(), THREADS);
        thread::scope(|s| {
            for range in db_blocks.iter().cloned() {
                let tree = &tree;
                let fx = &fx;
                s.spawn(move || {
                    let mut scratch = CountScratch::new(fx.db.n_items(), tree.n_nodes());
                    let mut cref = CounterRef::Inline;
                    let mut meter = WorkMeter::default();
                    tree.count_partition(
                        &fx.hash,
                        &fx.db,
                        range,
                        None::<&ItemFilter>,
                        &mut scratch,
                        &mut cref,
                        CountOptions::default(),
                        &mut meter,
                    );
                });
            }
        });
        assert_eq!(tree.inline_counts(), fx.expected, "round {round}");
    }
}

#[test]
fn stealing_pool_shared_count_is_bit_identical_to_sequential() {
    // Same invariant under the work-stealing executor, seeded as
    // lopsidedly as possible: thread 0 owns the whole database and the
    // other 7 start empty, so every chunk they execute was stolen.
    use parallel_arm::exec::{ChunkPool, Scheduling};

    let fx = fixture();
    let total_hits: u64 = fx.expected.iter().map(|&c| c as u64).sum();
    for round in 0..ROUNDS {
        let builder = TreeBuilder::new(&fx.cands, &fx.hash, 4);
        for id in 0..fx.cands.len() {
            builder.insert(id as u32);
        }
        let tree = freeze_policy(&builder, PlacementPolicy::LGpp);

        let metrics = MetricsRegistry::new(THREADS);
        let shared = FlatCounters::new(fx.cands.len());
        let mut seeds: Vec<Range<usize>> = (1..THREADS).map(|_| fx.db.len()..fx.db.len()).collect();
        seeds.insert(0, 0..fx.db.len());
        let pool = ChunkPool::with_floor(&seeds, Scheduling::Stealing, 4);
        thread::scope(|s| {
            for t in 0..THREADS {
                let tree = &tree;
                let shared = &shared;
                let metrics = &metrics;
                let pool = &pool;
                let fx = &fx;
                s.spawn(move || {
                    let shard = metrics.shard(t);
                    let mut scratch = CountScratch::new(fx.db.n_items(), tree.n_nodes());
                    let tallied = TalliedCounters::new(shared, shard);
                    let mut cref = CounterRef::Shared(&tallied);
                    let mut meter = WorkMeter::default();
                    while let Some(range) = pool.next(t) {
                        tree.count_partition(
                            &fx.hash,
                            &fx.db,
                            range,
                            None::<&ItemFilter>,
                            &mut scratch,
                            &mut cref,
                            CountOptions::default(),
                            &mut meter,
                        );
                    }
                });
            }
        });

        assert_eq!(shared.snapshot(), fx.expected, "round {round}");
        let mut items = 0u64;
        for t in 0..THREADS {
            let s = pool.thread_stats(t);
            items += s.items;
            // Non-owners hold empty deques: every chunk they ran was
            // lifted off another thread's deque.
            if t != 0 {
                assert_eq!(s.stolen, s.chunks, "thread {t} round {round}");
            }
        }
        assert_eq!(items, fx.db.len() as u64, "exactly-once round {round}");
        if MetricsRegistry::enabled() {
            assert_eq!(metrics.snapshot().total(Counter::CtrIncrements), total_hits);
        }
    }
}

#[test]
fn vertical_randomized_class_splits_are_bit_identical_to_sequential() {
    // The vertical miner under the same adversarial regime: 8 threads,
    // randomized (possibly empty or wildly skewed) seed tilings of the
    // first-level class space, every round bit-identical to the
    // sequential miner for both tidset backends.
    use parallel_arm::vertical::{
        mine_eclat_parallel_seeded, mine_vertical, TidBackend, VerticalConfig,
    };

    let mut p = QuestParams::paper(10, 4, 1_000).with_seed(42);
    p.n_patterns = 60;
    let db = generate(&p);
    let minsup = db.absolute_support(0.01);
    // Number of first-level classes = number of frequent singletons.
    let n_classes = frequent_singletons(&db, minsup).len();
    assert!(n_classes > THREADS, "fixture too small to stress");

    for backend in [TidBackend::Sorted, TidBackend::Bitmap] {
        let cfg = VerticalConfig::default().with_backend(backend);
        let expected = mine_vertical(&db, minsup, None, &cfg);
        assert!(!expected.is_empty());
        for round in 0..ROUNDS {
            let mut rng = StdRng::seed_from_u64(0xECA7 ^ round);
            let seeds = random_splits(&mut rng, n_classes, THREADS);
            let (got, stats) = mine_eclat_parallel_seeded(&db, minsup, None, &cfg, THREADS, &seeds);
            assert_eq!(got, expected, "backend={backend:?} round {round}");
            assert_eq!(stats.n_threads, THREADS);
            if MetricsRegistry::enabled() {
                // Parallel runs do exactly the sequential intersection count
                // (tasks are disjoint class subtrees — no duplicated work).
                let (_, seq_stats) =
                    parallel_arm::vertical::mine_vertical_stats(&db, minsup, None, &cfg);
                assert_eq!(
                    stats.metrics.total(Counter::TidsetIntersections),
                    seq_stats.intersections,
                    "backend={backend:?} round {round}"
                );
            }
        }
    }
}
