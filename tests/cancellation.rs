//! Cancellation and deadline semantics for every parallel miner
//! (DESIGN.md §10).
//!
//! The contract under test:
//!
//! * a token cancelled *before* the run fails at the first phase gate —
//!   no phase's results are produced;
//! * [`CancelToken::cancel_after_checks`] stops the run at an exact
//!   logical point, and observation latency is bounded: after the
//!   trigger at check `n`, each of the `P` workers lands at most one
//!   further checkpoint, so `checks() ≤ n + P`;
//! * the error names a phase the miner actually has;
//! * an already-expired deadline surfaces as `DeadlineExceeded` even
//!   when the database is empty (zero chunk claims) or `P == 0` — the
//!   phase gates poll the deadline, not just the claim path.
//!
//! `ARM_STRESS_THREADS` raises the top thread count (CI sets 16).

use parallel_arm::dataset::Item;
use parallel_arm::prelude::*;
use parallel_arm::vertical;
use std::sync::OnceLock;
use std::time::Duration;

type Itemsets = Vec<(Vec<Item>, u32)>;

fn max_threads() -> usize {
    std::env::var("ARM_STRESS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(2)
}

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut p = QuestParams::paper(8, 3, 250).with_seed(23);
        p.n_patterns = 40;
        generate(&p)
    })
}

fn empty_db() -> Database {
    Database::from_transactions(8, Vec::<Vec<u32>>::new()).unwrap()
}

fn pcfg(p: usize, mode: Scheduling) -> ParallelConfig {
    let base = AprioriConfig {
        min_support: Support::Fraction(0.02),
        max_k: Some(4),
        ..AprioriConfig::default()
    };
    ParallelConfig::new(base, p).with_scheduling(mode)
}

fn vcfg(mode: Scheduling) -> VerticalConfig {
    VerticalConfig::default()
        .with_scheduling(mode)
        .with_switch_level(2)
}

#[derive(Debug, Clone, Copy)]
enum Miner {
    Ccpd,
    Pccd,
    Eclat,
    Hybrid,
}

impl Miner {
    const ALL: [Miner; 4] = [Miner::Ccpd, Miner::Pccd, Miner::Eclat, Miner::Hybrid];

    fn phases(self) -> &'static [&'static str] {
        match self {
            Miner::Ccpd => &["f1", "candgen", "build", "freeze", "count", "extract"],
            Miner::Pccd => &["f1", "candgen", "count", "extract"],
            Miner::Eclat => &["transpose", "classes", "mine"],
            Miner::Hybrid => &[
                "f1",
                "candgen",
                "build",
                "freeze",
                "count",
                "extract",
                "transpose",
                "classes",
                "mine",
            ],
        }
    }

    /// The phase the first gate reports when the token is dead on entry.
    fn first_phase(self) -> &'static str {
        match self {
            Miner::Ccpd | Miner::Pccd | Miner::Hybrid => "f1",
            Miner::Eclat => "transpose",
        }
    }

    fn run(
        self,
        db: &Database,
        p: usize,
        mode: Scheduling,
        ctrl: &RunControl,
    ) -> Result<Itemsets, MiningError> {
        match self {
            Miner::Ccpd => ccpd::try_mine(db, &pcfg(p, mode), ctrl).map(|(r, _)| r.all_itemsets()),
            Miner::Pccd => pccd::try_mine(db, &pcfg(p, mode), ctrl).map(|(r, _)| r.all_itemsets()),
            Miner::Eclat => {
                let minsup = (db.len() as f64 * 0.02).ceil().max(1.0) as u32;
                vertical::try_mine_eclat_parallel(db, minsup, Some(4), &vcfg(mode), p, ctrl)
                    .map(|(r, _)| r)
            }
            Miner::Hybrid => try_mine_hybrid(db, &pcfg(p, mode), &vcfg(mode), ctrl).map(|(r, _)| r),
        }
    }
}

#[test]
fn pre_cancelled_token_fails_at_the_first_gate() {
    for miner in Miner::ALL {
        for p in [1, 2, 4] {
            let token = CancelToken::new();
            token.cancel();
            let ctrl = RunControl::with_cancel(token);
            let err = miner
                .run(db(), p, Scheduling::Stealing, &ctrl)
                .expect_err("pre-cancelled run must not produce a result");
            match err {
                MiningError::Cancelled { phase, .. } => {
                    assert_eq!(
                        phase,
                        miner.first_phase(),
                        "{miner:?} p={p}: cancellation must be observed at the first gate"
                    );
                }
                other => panic!("{miner:?} p={p}: expected Cancelled, got {other:?}"),
            }
        }
    }
}

#[test]
fn cancel_after_checks_bounds_observation_latency() {
    for miner in Miner::ALL {
        for &p in &[1usize, 2, 4, max_threads()] {
            for mode in [Scheduling::Stealing, Scheduling::Chunked { chunk: 2 }] {
                // Randomized-but-reproducible trigger points across the
                // run (claim ordinals are logical, not wall-clock).
                for n in [1u64, 2, 5, 11, 23, 47] {
                    let token = CancelToken::new().cancel_after_checks(n);
                    let ctrl = RunControl::with_cancel(token.clone());
                    match miner.run(db(), p, mode, &ctrl) {
                        Err(MiningError::Cancelled { phase, .. }) => {
                            assert!(
                                miner.phases().contains(&phase),
                                "{miner:?}: {phase} is not one of its phases"
                            );
                            assert!(
                                token.checks() <= n + p.max(1) as u64,
                                "{miner:?} p={p} mode={mode:?} n={n}: \
                                 {} checks — cancellation latency exceeds one claim per worker",
                                token.checks()
                            );
                        }
                        Ok(_) => {
                            // The whole run claimed fewer than n chunks;
                            // the trigger never tripped.
                            assert!(
                                token.checks() < n,
                                "{miner:?} p={p} mode={mode:?} n={n}: run succeeded \
                                 after {} checks but the trigger was armed at {n}",
                                token.checks()
                            );
                        }
                        Err(other) => {
                            panic!("{miner:?} p={p} mode={mode:?} n={n}: unexpected {other:?}")
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn expired_deadline_surfaces_everywhere() {
    for miner in Miner::ALL {
        for p in [1, 2, 4] {
            let token = CancelToken::deadline_in(Duration::ZERO);
            let ctrl = RunControl::with_cancel(token.clone());
            let err = miner
                .run(db(), p, Scheduling::Static, &ctrl)
                .expect_err("expired deadline must fail the run");
            match err {
                MiningError::DeadlineExceeded { phase, .. } => {
                    assert!(miner.phases().contains(&phase), "{miner:?}: phase {phase}");
                }
                other => panic!("{miner:?} p={p}: expected DeadlineExceeded, got {other:?}"),
            }
            // The latched deadline is not overwritten by the sibling
            // cancellation that containment may issue.
            assert!(token.is_cancelled());
        }
    }
}

#[test]
fn empty_database_and_zero_threads_observe_the_deadline() {
    // Zero chunk claims anywhere: the phase gates alone must notice.
    let empty = empty_db();
    for miner in Miner::ALL {
        for p in [0usize, 1, 4] {
            let ctrl = RunControl::with_cancel(CancelToken::deadline_in(Duration::ZERO));
            let err = miner
                .run(&empty, p, Scheduling::Stealing, &ctrl)
                .expect_err("deadline must be observed even with no work");
            assert!(
                matches!(err, MiningError::DeadlineExceeded { .. }),
                "{miner:?} p={p}: got {err:?}"
            );
        }
    }
}

#[test]
fn empty_database_cancellation_returns_promptly() {
    let empty = empty_db();
    for miner in Miner::ALL {
        let token = CancelToken::new();
        token.cancel();
        let ctrl = RunControl::with_cancel(token);
        let err = miner.run(&empty, 2, Scheduling::Guided, &ctrl).unwrap_err();
        assert!(
            matches!(err, MiningError::Cancelled { .. }),
            "{miner:?}: got {err:?}"
        );
    }
}

#[test]
fn live_token_changes_nothing() {
    // A threaded-through but never-tripped token is inert: results are
    // bit-identical to the infallible entry points.
    let (want, _) = ccpd::mine(db(), &pcfg(4, Scheduling::Stealing));
    let ctrl = RunControl::with_cancel(CancelToken::deadline_in(Duration::from_secs(3600)));
    let (got, _) = ccpd::try_mine(db(), &pcfg(4, Scheduling::Stealing), &ctrl).unwrap();
    assert_eq!(got.all_itemsets(), want.all_itemsets());
    assert!(!ctrl.cancel.is_cancelled());
}
