//! Differential test for rule generation: `generate_rules` (the
//! ap-genrules consequent-growing strategy, `crates/core/src/rules.rs`)
//! against a naive all-subsets enumerator, across 20 seeded QUEST
//! databases.
//!
//! For every frequent itemset `X` and every non-empty proper subset `Y`,
//! the oracle emits `X − Y ⇒ Y` iff `support(X) / support(X − Y)` meets
//! the confidence bar. The optimized generator must produce exactly the
//! same rule *set* — same (antecedent, consequent) pairs, same supports,
//! same confidences — and the derived interest measures (lift, leverage)
//! must match their from-first-principles formulas.

use parallel_arm::dataset::Item;
use parallel_arm::prelude::*;
use std::collections::BTreeMap;

/// A rule keyed for set comparison: (antecedent, consequent) is unique.
type RuleKey = (Vec<Item>, Vec<Item>);

fn mined(seed: u64) -> (Database, MiningResult) {
    let mut p = QuestParams::paper(5, 2, 500).with_seed(seed);
    p.n_patterns = 40;
    let db = generate(&p);
    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.02),
        max_k: Some(5),
        ..AprioriConfig::default()
    };
    let result = parallel_arm::core::mine(&db, &cfg);
    (db, result)
}

/// The oracle: enumerate every non-empty proper subset of every frequent
/// itemset as a consequent, no pruning.
fn brute_force_rules(result: &MiningResult, min_confidence: f64) -> BTreeMap<RuleKey, (u32, f64)> {
    let mut out = BTreeMap::new();
    for (items, sup) in result.all_itemsets() {
        let n = items.len();
        if n < 2 {
            continue;
        }
        assert!(n < 31, "mask enumeration below assumes small itemsets");
        for mask in 1u32..(1 << n) - 1 {
            let mut ant = Vec::new();
            let mut con = Vec::new();
            for (b, &it) in items.iter().enumerate() {
                if mask & (1 << b) != 0 {
                    con.push(it);
                } else {
                    ant.push(it);
                }
            }
            let sup_ant = result
                .support_of(&ant)
                .expect("subset of a frequent itemset is frequent");
            let confidence = sup as f64 / sup_ant as f64;
            if confidence >= min_confidence {
                let prev = out.insert((ant, con), (sup, confidence));
                assert!(prev.is_none(), "oracle produced a duplicate rule");
            }
        }
    }
    out
}

#[test]
fn matches_all_subsets_oracle_on_20_seeded_databases() {
    for seed in 0..20u64 {
        let (_, result) = mined(seed);
        for min_conf in [0.5, 0.7, 0.9, 1.0] {
            let rules = generate_rules(&result, min_conf);
            let oracle = brute_force_rules(&result, min_conf);

            let mut got: BTreeMap<RuleKey, (u32, f64)> = BTreeMap::new();
            for r in &rules {
                let prev = got.insert(
                    (r.antecedent.clone(), r.consequent.clone()),
                    (r.support, r.confidence),
                );
                assert!(
                    prev.is_none(),
                    "seed={seed} conf={min_conf}: duplicate rule {r}"
                );
            }

            assert_eq!(
                got.len(),
                oracle.len(),
                "seed={seed} conf={min_conf}: rule count diverges"
            );
            for (key, &(sup, conf)) in &oracle {
                let &(gsup, gconf) = got
                    .get(key)
                    .unwrap_or_else(|| panic!("seed={seed} conf={min_conf}: missing rule {key:?}"));
                assert_eq!(gsup, sup, "seed={seed} conf={min_conf}: support of {key:?}");
                assert!(
                    (gconf - conf).abs() < 1e-12,
                    "seed={seed} conf={min_conf}: confidence of {key:?}: {gconf} vs {conf}"
                );
            }
        }
    }
}

#[test]
fn confidence_lift_leverage_match_first_principles() {
    for seed in 0..20u64 {
        let (db, result) = mined(seed);
        let n = db.len();
        for rule in generate_rules(&result, 0.5) {
            let mut x = rule.antecedent.clone();
            x.extend(&rule.consequent);
            x.sort_unstable();
            let sup_x = result.support_of(&x).expect("rule itemset is frequent");
            let sup_ant = result
                .support_of(&rule.antecedent)
                .expect("antecedent is frequent");
            let sup_con = result
                .support_of(&rule.consequent)
                .expect("consequent is frequent");

            assert_eq!(rule.support, sup_x, "seed={seed} rule {rule}");
            let conf = sup_x as f64 / sup_ant as f64;
            assert!(
                (rule.confidence - conf).abs() < 1e-12,
                "seed={seed} rule {rule}"
            );

            // lift = P(X) / (P(ant) · P(con)) = conf / P(con)
            let lift = conf / (sup_con as f64 / n as f64);
            assert!(
                (rule.lift(sup_con, n) - lift).abs() < 1e-12,
                "seed={seed} lift of {rule}"
            );

            // leverage = P(X) − P(ant) · P(con)
            let lev =
                sup_x as f64 / n as f64 - (sup_ant as f64 / n as f64) * (sup_con as f64 / n as f64);
            assert!(
                (rule.leverage(sup_ant, sup_con, n) - lev).abs() < 1e-12,
                "seed={seed} leverage of {rule}"
            );

            // Sanity on the measures' ranges.
            assert!(rule.confidence > 0.0 && rule.confidence <= 1.0 + 1e-12);
            assert!(rule.lift(sup_con, n).is_finite());
        }
    }
}

#[test]
fn rules_agree_across_sequential_and_parallel_mining() {
    // The rule generator consumes a MiningResult; CCPD's and the
    // sequential miner's results are interchangeable inputs.
    for seed in [3u64, 9] {
        let (db, sequential) = mined(seed);
        let cfg = AprioriConfig {
            min_support: Support::Fraction(0.02),
            max_k: Some(5),
            ..AprioriConfig::default()
        };
        let (par, _) = ccpd::mine(&db, &ParallelConfig::new(cfg, 4));
        for min_conf in [0.6, 0.9] {
            let a = generate_rules(&sequential, min_conf);
            let b = generate_rules(&par, min_conf);
            assert_eq!(a.len(), b.len(), "seed={seed} conf={min_conf}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.antecedent, y.antecedent);
                assert_eq!(x.consequent, y.consequent);
                assert_eq!(x.support, y.support);
                assert!((x.confidence - y.confidence).abs() < 1e-12);
            }
        }
    }
}
