//! Parallel ≡ sequential: CCPD and PCCD must produce byte-identical
//! frequent-itemset results for every thread count, placement policy,
//! balancing scheme, and counter mode.

use parallel_arm::prelude::*;

fn synthetic(seed: u64) -> Database {
    let mut p = QuestParams::paper(10, 4, 1_500).with_seed(seed);
    p.n_patterns = 80;
    generate(&p)
}

fn base_cfg() -> AprioriConfig {
    AprioriConfig {
        min_support: Support::Fraction(0.015),
        ..AprioriConfig::default()
    }
}

#[test]
fn ccpd_equals_sequential_across_thread_counts() {
    let db = synthetic(7);
    let expected = parallel_arm::core::mine(&db, &base_cfg()).all_itemsets();
    assert!(!expected.is_empty());
    for p in [1usize, 2, 3, 4, 7, 12] {
        let (r, stats) = ccpd::mine(&db, &ParallelConfig::new(base_cfg(), p));
        assert_eq!(r.all_itemsets(), expected, "P={p}");
        assert_eq!(stats.n_threads, p);
    }
}

#[test]
fn ccpd_equals_sequential_across_policies() {
    let db = synthetic(8);
    let expected = parallel_arm::core::mine(&db, &base_cfg()).all_itemsets();
    for policy in PlacementPolicy::ALL {
        let cfg = ParallelConfig::new(base_cfg().with_placement(policy), 4);
        let (r, _) = ccpd::mine(&db, &cfg);
        assert_eq!(r.all_itemsets(), expected, "{policy}");
    }
}

#[test]
fn ccpd_equals_sequential_across_candgen_schemes() {
    let db = synthetic(9);
    let expected = parallel_arm::core::mine(&db, &base_cfg()).all_itemsets();
    for scheme in [
        Scheme::Block,
        Scheme::Interleaved,
        Scheme::Bitonic,
        Scheme::Greedy,
    ] {
        let mut cfg = ParallelConfig::new(base_cfg(), 3).with_candgen(scheme);
        cfg.parallel_candgen_min = 1;
        let (r, _) = ccpd::mine(&db, &cfg);
        assert_eq!(r.all_itemsets(), expected, "{scheme:?}");
    }
}

#[test]
fn pccd_equals_sequential() {
    let db = synthetic(10);
    let expected = parallel_arm::core::mine(&db, &base_cfg()).all_itemsets();
    for p in [1usize, 2, 5] {
        let (r, _) = pccd::mine(&db, &ParallelConfig::new(base_cfg(), p));
        assert_eq!(r.all_itemsets(), expected, "P={p}");
    }
}

#[test]
fn hash_scheme_and_short_circuit_do_not_change_results() {
    let db = synthetic(11);
    let expected = parallel_arm::core::mine(&db, &base_cfg()).all_itemsets();
    for hash_scheme in [HashScheme::Interleaved, HashScheme::Bitonic] {
        for short_circuit in [false, true] {
            for adaptive in [false, true] {
                let base = AprioriConfig {
                    hash_scheme,
                    short_circuit,
                    adaptive_fanout: adaptive,
                    fixed_fanout: 5,
                    ..base_cfg()
                };
                let (r, _) = ccpd::mine(&db, &ParallelConfig::new(base, 2));
                assert_eq!(
                    r.all_itemsets(),
                    expected,
                    "{hash_scheme:?} sc={short_circuit} adaptive={adaptive}"
                );
            }
        }
    }
}

#[test]
fn db_partition_strategies_do_not_change_results() {
    use parallel_arm::parallel::DbPartition;
    let db = synthetic(12);
    let expected = parallel_arm::core::mine(&db, &base_cfg()).all_itemsets();
    for part in [
        DbPartition::Block,
        DbPartition::WeightedStatic { kmax: 6 },
        DbPartition::WeightedPerIteration,
    ] {
        let cfg = ParallelConfig::new(base_cfg(), 4).with_db_partition(part);
        let (r, _) = ccpd::mine(&db, &cfg);
        assert_eq!(r.all_itemsets(), expected, "{part:?}");
    }
}

#[test]
fn work_model_sanity() {
    let db = synthetic(13);
    let (_, s1) = ccpd::mine(&db, &ParallelConfig::new(base_cfg(), 1));
    let (_, s4) = ccpd::mine(&db, &ParallelConfig::new(base_cfg(), 4));
    // One thread: no parallel gain by definition.
    assert!((s1.simulated_speedup() - 1.0).abs() < 1e-9);
    // Four threads: some gain, bounded by the thread count.
    let sp = s4.simulated_speedup();
    assert!(sp > 1.0 && sp <= 4.0 + 1e-9, "speedup {sp}");
    // Counting work should dominate candgen work (paper: ~85%).
    assert!(s4.total_work("count") > s4.total_work("candgen"));
}
