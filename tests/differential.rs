//! Differential battery: four independent sequential miners and both
//! parallel drivers must agree, itemset-for-itemset and count-for-count,
//! on a population of randomized QUEST datasets.
//!
//! The miners share almost no code — Apriori (hash tree), the naive
//! levelwise reference (brute-force subset counting), Eclat (tid-list
//! intersection), and Partition (two-scan local/global) — so agreement
//! across 20 seeded datasets is strong evidence each one is correct.

use parallel_arm::core::{mine_eclat, mine_partition, naive::mine_levelwise};
use parallel_arm::prelude::*;
use parallel_arm::vertical::{mine_eclat_parallel, mine_vertical};

const N_SEEDS: u64 = 20;
const FRACTION: f64 = 0.02;

fn dataset(seed: u64) -> Database {
    let mut p = QuestParams::paper(5, 2, 500).with_seed(seed);
    p.n_patterns = 40;
    generate(&p)
}

fn cfg() -> AprioriConfig {
    AprioriConfig {
        min_support: Support::Fraction(FRACTION),
        ..AprioriConfig::default()
    }
}

#[test]
fn four_sequential_miners_agree_on_twenty_datasets() {
    for seed in 0..N_SEEDS {
        let db = dataset(seed);
        let minsup = db.absolute_support(FRACTION);
        let apriori = parallel_arm::core::mine(&db, &cfg()).all_itemsets();
        assert!(
            !apriori.is_empty(),
            "seed {seed}: degenerate dataset, nothing frequent"
        );
        let naive = mine_levelwise(&db, minsup, None);
        assert_eq!(apriori, naive, "seed {seed}: apriori vs naive");
        let eclat = mine_eclat(&db, minsup, None);
        assert_eq!(apriori, eclat, "seed {seed}: apriori vs eclat");
        for n_chunks in [1usize, 3] {
            let partition = mine_partition(&db, FRACTION, n_chunks, None);
            assert_eq!(
                apriori, partition,
                "seed {seed}: apriori vs partition({n_chunks})"
            );
        }
    }
}

#[test]
fn parallel_drivers_agree_with_sequential_on_twenty_datasets() {
    for seed in 0..N_SEEDS {
        let db = dataset(seed);
        let expected = parallel_arm::core::mine(&db, &cfg()).all_itemsets();
        for p in [1usize, 2, 4, 8] {
            let pc = ParallelConfig::new(cfg(), p);
            let (ccpd_r, _) = ccpd::mine(&db, &pc);
            assert_eq!(ccpd_r.all_itemsets(), expected, "seed {seed} CCPD P={p}");
            let (pccd_r, _) = pccd::mine(&db, &pc);
            assert_eq!(pccd_r.all_itemsets(), expected, "seed {seed} PCCD P={p}");
        }
    }
}

#[test]
fn vertical_miners_agree_with_apriori_on_twenty_datasets() {
    for seed in 0..N_SEEDS {
        let db = dataset(seed);
        let minsup = db.absolute_support(FRACTION);
        let expected = parallel_arm::core::mine(&db, &cfg()).all_itemsets();
        // Both tidset backends (and the density-adaptive default), each
        // sequentially and on every thread count.
        for backend in [TidBackend::Sorted, TidBackend::Bitmap, TidBackend::Auto] {
            let vc = VerticalConfig::default().with_backend(backend);
            let seq = mine_vertical(&db, minsup, None, &vc);
            assert_eq!(
                seq, expected,
                "seed {seed}: vertical {backend:?} vs apriori"
            );
            for p in [1usize, 2, 4, 8] {
                let (par, _) = mine_eclat_parallel(&db, minsup, None, &vc, p);
                assert_eq!(par, expected, "seed {seed}: parallel {backend:?} P={p}");
            }
        }
        // Unoptimized path (linear merge, static schedule, lists only).
        let un = mine_vertical(&db, minsup, None, &VerticalConfig::unoptimized());
        assert_eq!(un, expected, "seed {seed}: unoptimized vertical");
    }
}

#[test]
fn hybrid_driver_agrees_with_apriori_on_twenty_datasets() {
    for seed in 0..N_SEEDS {
        let db = dataset(seed);
        let expected = parallel_arm::core::mine(&db, &cfg()).all_itemsets();
        for switch_level in [1u32, 2, 3] {
            for p in [1usize, 2, 4, 8] {
                let vc = VerticalConfig::default().with_switch_level(switch_level);
                let (got, _) = mine_hybrid(&db, &ParallelConfig::new(cfg(), p), &vc);
                assert_eq!(got, expected, "seed {seed}: hybrid s={switch_level} P={p}");
            }
        }
    }
}
