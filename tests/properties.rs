//! Property-based tests over the whole stack (proptest).

use parallel_arm::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a small random database over `n_items` items.
fn db_strategy(n_items: u32, max_txns: usize) -> impl Strategy<Value = Database> {
    vec(vec(0..n_items, 0..8), 0..max_txns)
        .prop_map(move |txns| Database::from_transactions(n_items, txns).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full miner == exhaustive powerset miner on tiny universes.
    #[test]
    fn mining_matches_exhaustive(db in db_strategy(10, 30), minsup in 1u32..5) {
        let cfg = AprioriConfig {
            min_support: Support::Absolute(minsup),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let got = parallel_arm::core::mine(&db, &cfg).all_itemsets();
        let expected = parallel_arm::core::naive::mine_exhaustive(&db, minsup);
        prop_assert_eq!(got, expected);
    }

    /// Every placement policy and hash scheme yields identical results.
    #[test]
    fn policies_agree(db in db_strategy(12, 25), minsup in 1u32..4, policy_ix in 0usize..8) {
        let policy = PlacementPolicy::ALL[policy_ix];
        let reference = AprioriConfig {
            min_support: Support::Absolute(minsup),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let variant = AprioriConfig {
            placement: policy,
            hash_scheme: HashScheme::Interleaved,
            short_circuit: false,
            adaptive_fanout: false,
            fixed_fanout: 3,
            ..reference.clone()
        };
        let a = parallel_arm::core::mine(&db, &reference).all_itemsets();
        let b = parallel_arm::core::mine(&db, &variant).all_itemsets();
        prop_assert_eq!(a, b);
    }

    /// CCPD on random thread counts == sequential.
    #[test]
    fn ccpd_matches_sequential(db in db_strategy(12, 30), minsup in 1u32..4, p in 1usize..6) {
        let cfg = AprioriConfig {
            min_support: Support::Absolute(minsup),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let seq = parallel_arm::core::mine(&db, &cfg).all_itemsets();
        let mut pcfg = ParallelConfig::new(cfg, p);
        pcfg.parallel_candgen_min = 1;
        let (par, _) = ccpd::mine(&db, &pcfg);
        prop_assert_eq!(par.all_itemsets(), seq);
    }

    /// Rules: confidence bounds, disjointness, and support consistency.
    #[test]
    fn rules_are_well_formed(db in db_strategy(8, 25), conf in 0.3f64..1.0) {
        let cfg = AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let result = parallel_arm::core::mine(&db, &cfg);
        for rule in generate_rules(&result, conf) {
            prop_assert!(rule.confidence >= conf);
            prop_assert!(rule.confidence <= 1.0 + 1e-12);
            let mut x = rule.antecedent.clone();
            x.extend(&rule.consequent);
            x.sort_unstable();
            prop_assert_eq!(result.support_of(&x), Some(rule.support));
        }
    }

    /// Partitioning schemes always cover all items exactly once, and
    /// bitonic never does worse than block on triangular workloads.
    #[test]
    fn partition_schemes_cover(n in 1usize..120, parts in 1usize..10) {
        let weights = parallel_arm::balance::partition::triangular_weights(n);
        for scheme in [Scheme::Block, Scheme::Interleaved, Scheme::Bitonic, Scheme::Greedy] {
            let a = scheme.assign(&weights, parts);
            let mut all: Vec<usize> = a.bins.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
        let block = Scheme::Block.assign(&weights, parts);
        let bitonic = Scheme::Bitonic.assign(&weights, parts);
        prop_assert!(bitonic.max_load() <= block.max_load());
    }

    /// The quest generator is deterministic and respects its bounds.
    #[test]
    fn quest_is_deterministic(seed in 0u64..1000) {
        let mut p = QuestParams::paper(5, 2, 200).with_seed(seed);
        p.n_patterns = 20;
        let a = generate(&p);
        let b = generate(&p);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 200);
        for t in &a {
            prop_assert!(t.iter().all(|&i| i < p.n_items));
        }
    }

    /// Binary IO round-trips arbitrary databases.
    #[test]
    fn io_roundtrip(db in db_strategy(40, 40)) {
        let mut buf = Vec::new();
        parallel_arm::dataset::io::write_binary(&db, &mut buf).unwrap();
        let back = parallel_arm::dataset::io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(db, back);
    }

    /// Support monotonicity: every subset of a frequent itemset is
    /// frequent with at least the same support.
    #[test]
    fn support_is_anti_monotone(db in db_strategy(10, 30)) {
        let cfg = AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let r = parallel_arm::core::mine(&db, &cfg);
        for (items, sup) in r.all_itemsets() {
            if items.len() < 2 { continue; }
            for drop in 0..items.len() {
                let subset: Vec<u32> = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, &v)| v)
                    .collect();
                let sub_sup = r.support_of(&subset);
                prop_assert!(sub_sup.is_some(), "subset {subset:?} of {items:?} missing");
                prop_assert!(sub_sup.unwrap() >= sup);
            }
        }
    }
}
