//! Edge cases and failure injection across the stack.

use parallel_arm::prelude::*;

fn cfg_abs(minsup: u32) -> AprioriConfig {
    AprioriConfig {
        min_support: Support::Absolute(minsup),
        leaf_threshold: 2,
        ..AprioriConfig::default()
    }
}

#[test]
fn single_item_universe() {
    let db = Database::from_transactions(1, [vec![0u32], vec![0], vec![]]).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(2));
    assert_eq!(r.total_frequent(), 1);
    assert_eq!(r.support_of(&[0]), Some(2));
    assert!(
        generate_rules(&r, 0.5).is_empty(),
        "no rules from singletons"
    );
}

#[test]
fn identical_transactions_everything_frequent() {
    let txn: Vec<u32> = (0..6).collect();
    let db = Database::from_transactions(6, std::iter::repeat_n(txn, 10)).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(10));
    // 2^6 - 1 frequent itemsets, all with support 10.
    assert_eq!(r.total_frequent(), 63);
    assert!(r.all_itemsets().iter().all(|(_, s)| *s == 10));
    // Exactly one maximal itemset: the full transaction.
    let maximal = parallel_arm::core::maximal_itemsets(&r);
    assert_eq!(maximal.len(), 1);
    assert_eq!(maximal[0].0, (0..6).collect::<Vec<u32>>());
    // All rules have confidence 1.
    let rules = generate_rules(&r, 1.0);
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|ru| (ru.confidence - 1.0).abs() < 1e-12));
}

#[test]
fn support_above_database_size() {
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1]]).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(3));
    assert_eq!(r.total_frequent(), 0);
    assert!(parallel_arm::core::maximal_itemsets(&r).is_empty());
}

#[test]
fn max_k_zero_and_one_yield_only_singletons() {
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1], vec![0, 1]]).unwrap();
    for cap in [0u32, 1] {
        let cfg = AprioriConfig {
            max_k: Some(cap),
            ..cfg_abs(2)
        };
        let r = parallel_arm::core::mine(&db, &cfg);
        assert!(
            r.all_itemsets().iter().all(|(s, _)| s.len() == 1),
            "cap={cap}"
        );
    }
}

#[test]
fn more_threads_than_transactions() {
    let db = Database::from_transactions(6, [vec![0u32, 1, 2], vec![0, 1]]).unwrap();
    let expected = parallel_arm::core::mine(&db, &cfg_abs(2)).all_itemsets();
    let (r, stats) = ccpd::mine(&db, &ParallelConfig::new(cfg_abs(2), 16));
    assert_eq!(r.all_itemsets(), expected);
    assert_eq!(stats.n_threads, 16);
    let (r2, _) = pccd::mine(&db, &ParallelConfig::new(cfg_abs(2), 16));
    assert_eq!(r2.all_itemsets(), expected);
}

#[test]
fn extreme_leaf_threshold_and_fanout() {
    let db = Database::from_transactions(
        20,
        (0..30).map(|i| vec![i % 20, (i + 1) % 20, (i + 3) % 20]),
    )
    .unwrap();
    let reference = parallel_arm::core::mine(&db, &cfg_abs(2)).all_itemsets();
    for (threshold, fanout) in [(1usize, 2u32), (1, 64), (1000, 2), (1000, 64)] {
        let cfg = AprioriConfig {
            leaf_threshold: threshold,
            adaptive_fanout: false,
            fixed_fanout: fanout,
            ..cfg_abs(2)
        };
        let got = parallel_arm::core::mine(&db, &cfg).all_itemsets();
        assert_eq!(got, reference, "T={threshold} H={fanout}");
    }
}

#[test]
fn rule_confidence_extremes() {
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1], vec![0]]).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(2));
    // conf 0.0: every rule from every frequent itemset qualifies.
    let all = generate_rules(&r, 0.0);
    // {0,1} is the only multi-item frequent set → 2 rules.
    assert_eq!(all.len(), 2);
    // conf above 1.0: nothing qualifies.
    assert!(generate_rules(&r, 1.01).is_empty());
}

#[test]
fn transactions_shorter_than_k_are_ignored() {
    // Mix of long and very short transactions; short ones must simply not
    // contribute to deep iterations (and not crash the kernel).
    let mut txns: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4]; 5];
    txns.extend((0..10).map(|_| vec![0u32]));
    txns.push(vec![]);
    let db = Database::from_transactions(8, txns).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(5));
    assert_eq!(r.support_of(&[0, 1, 2, 3, 4]), Some(5));
    assert_eq!(r.support_of(&[0]), Some(15));
}

/// Runs the same config through the sequential, CCPD, and PCCD paths and
/// asserts all three agree; returns the sequential result for further
/// checks.
fn all_paths(db: &Database, cfg: &AprioriConfig) -> MiningResult {
    let seq = parallel_arm::core::mine(db, cfg);
    let expected = seq.all_itemsets();
    for p in [1usize, 4] {
        let (c, _) = ccpd::mine(db, &ParallelConfig::new(cfg.clone(), p));
        assert_eq!(c.all_itemsets(), expected, "CCPD P={p}");
        let (q, _) = pccd::mine(db, &ParallelConfig::new(cfg.clone(), p));
        assert_eq!(q.all_itemsets(), expected, "PCCD P={p}");
    }
    seq
}

#[test]
fn empty_database_all_paths() {
    let db = Database::from_transactions(8, Vec::<Vec<u32>>::new()).unwrap();
    let r = all_paths(&db, &cfg_abs(1));
    assert_eq!(r.total_frequent(), 0);
    assert_eq!(r.max_k(), 0);
}

#[test]
fn min_support_zero_clamps_to_one() {
    // `Support::Absolute(0)` resolves to 1 (documented clamp): every item
    // that appears at all is frequent, and all paths agree on that.
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![1, 2], vec![3]]).unwrap();
    let r = all_paths(&db, &cfg_abs(0));
    assert_eq!(r.min_support, 1);
    assert_eq!(r.support_of(&[3]), Some(1));
    assert_eq!(r.support_of(&[1, 2]), Some(1));
    // Fraction 0.0 clamps identically.
    let frac = AprioriConfig {
        min_support: Support::Fraction(0.0),
        ..cfg_abs(0)
    };
    assert_eq!(
        all_paths(&db, &frac).all_itemsets(),
        r.all_itemsets(),
        "Fraction(0.0) vs Absolute(0)"
    );
}

#[test]
fn min_support_equal_to_database_size() {
    // Only itemsets present in *every* transaction survive.
    let db = Database::from_transactions(
        5,
        [
            vec![0u32, 1, 2],
            vec![0, 1, 3],
            vec![0, 1, 2, 4],
            vec![0, 1],
        ],
    )
    .unwrap();
    let r = all_paths(&db, &cfg_abs(4));
    assert_eq!(r.min_support, 4);
    let sets: Vec<Vec<u32>> = r.all_itemsets().into_iter().map(|(s, _)| s).collect();
    assert_eq!(sets, vec![vec![0], vec![1], vec![0, 1]]);
    // One above |D|: nothing qualifies.
    assert_eq!(all_paths(&db, &cfg_abs(5)).total_frequent(), 0);
}

#[test]
fn single_item_transactions_never_reach_k2() {
    // Every transaction has exactly one item: F1 is non-empty but no pair
    // can be frequent, so mining must stop cleanly after candidate
    // generation at k = 2.
    let db = Database::from_transactions(4, (0..12).map(|i| vec![i % 4u32])).unwrap();
    let r = all_paths(&db, &cfg_abs(2));
    assert_eq!(r.levels.len(), 1);
    assert_eq!(r.total_frequent(), 4);
    assert!(r
        .all_itemsets()
        .iter()
        .all(|(s, c)| s.len() == 1 && *c == 3));
}

#[test]
fn transaction_longer_than_tree_depth() {
    // A 40-item transaction walked against a depth-2 tree: the k-subset
    // traversal must enumerate C(40,2) pairs without overflowing any
    // depth-bounded scratch, in all paths.
    let wide: Vec<u32> = (0..40).collect();
    let mut txns = vec![wide.clone(), wide];
    txns.push(vec![0, 1]);
    let db = Database::from_transactions(40, txns).unwrap();
    let cfg = AprioriConfig {
        max_k: Some(2),
        ..cfg_abs(2)
    };
    let r = all_paths(&db, &cfg);
    // All C(40,2) = 780 pairs occur in both wide transactions.
    assert_eq!(r.levels[1].len(), 780);
    assert_eq!(r.support_of(&[0, 1]), Some(3));
    assert_eq!(r.support_of(&[38, 39]), Some(2));
}

#[test]
fn quest_generator_edge_parameters() {
    // Tiny universes and degenerate pattern pools must still generate.
    let mut p = QuestParams::paper(2, 1, 100);
    p.n_items = 5;
    p.n_patterns = 1;
    let db = generate(&p);
    assert_eq!(db.len(), 100);
    for t in &db {
        assert!(t.iter().all(|&i| i < 5));
    }
}

#[test]
fn pccd_with_single_candidate() {
    // One candidate, many threads: most local trees are empty.
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1], vec![2]]).unwrap();
    let (r, _) = pccd::mine(&db, &ParallelConfig::new(cfg_abs(2), 6));
    assert_eq!(r.support_of(&[0, 1]), Some(2));
}
