//! Edge cases and failure injection across the stack.

use parallel_arm::prelude::*;

fn cfg_abs(minsup: u32) -> AprioriConfig {
    AprioriConfig {
        min_support: Support::Absolute(minsup),
        leaf_threshold: 2,
        ..AprioriConfig::default()
    }
}

#[test]
fn single_item_universe() {
    let db = Database::from_transactions(1, [vec![0u32], vec![0], vec![]]).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(2));
    assert_eq!(r.total_frequent(), 1);
    assert_eq!(r.support_of(&[0]), Some(2));
    assert!(
        generate_rules(&r, 0.5).is_empty(),
        "no rules from singletons"
    );
}

#[test]
fn identical_transactions_everything_frequent() {
    let txn: Vec<u32> = (0..6).collect();
    let db = Database::from_transactions(6, std::iter::repeat_n(txn, 10)).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(10));
    // 2^6 - 1 frequent itemsets, all with support 10.
    assert_eq!(r.total_frequent(), 63);
    assert!(r.all_itemsets().iter().all(|(_, s)| *s == 10));
    // Exactly one maximal itemset: the full transaction.
    let maximal = parallel_arm::core::maximal_itemsets(&r);
    assert_eq!(maximal.len(), 1);
    assert_eq!(maximal[0].0, (0..6).collect::<Vec<u32>>());
    // All rules have confidence 1.
    let rules = generate_rules(&r, 1.0);
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|ru| (ru.confidence - 1.0).abs() < 1e-12));
}

#[test]
fn support_above_database_size() {
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1]]).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(3));
    assert_eq!(r.total_frequent(), 0);
    assert!(parallel_arm::core::maximal_itemsets(&r).is_empty());
}

#[test]
fn max_k_zero_and_one_yield_only_singletons() {
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1], vec![0, 1]]).unwrap();
    for cap in [0u32, 1] {
        let cfg = AprioriConfig {
            max_k: Some(cap),
            ..cfg_abs(2)
        };
        let r = parallel_arm::core::mine(&db, &cfg);
        assert!(
            r.all_itemsets().iter().all(|(s, _)| s.len() == 1),
            "cap={cap}"
        );
    }
}

#[test]
fn more_threads_than_transactions() {
    let db = Database::from_transactions(6, [vec![0u32, 1, 2], vec![0, 1]]).unwrap();
    let expected = parallel_arm::core::mine(&db, &cfg_abs(2)).all_itemsets();
    let (r, stats) = ccpd::mine(&db, &ParallelConfig::new(cfg_abs(2), 16));
    assert_eq!(r.all_itemsets(), expected);
    assert_eq!(stats.n_threads, 16);
    let (r2, _) = pccd::mine(&db, &ParallelConfig::new(cfg_abs(2), 16));
    assert_eq!(r2.all_itemsets(), expected);
}

#[test]
fn extreme_leaf_threshold_and_fanout() {
    let db = Database::from_transactions(
        20,
        (0..30).map(|i| vec![i % 20, (i + 1) % 20, (i + 3) % 20]),
    )
    .unwrap();
    let reference = parallel_arm::core::mine(&db, &cfg_abs(2)).all_itemsets();
    for (threshold, fanout) in [(1usize, 2u32), (1, 64), (1000, 2), (1000, 64)] {
        let cfg = AprioriConfig {
            leaf_threshold: threshold,
            adaptive_fanout: false,
            fixed_fanout: fanout,
            ..cfg_abs(2)
        };
        let got = parallel_arm::core::mine(&db, &cfg).all_itemsets();
        assert_eq!(got, reference, "T={threshold} H={fanout}");
    }
}

#[test]
fn rule_confidence_extremes() {
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1], vec![0]]).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(2));
    // conf 0.0: every rule from every frequent itemset qualifies.
    let all = generate_rules(&r, 0.0);
    // {0,1} is the only multi-item frequent set → 2 rules.
    assert_eq!(all.len(), 2);
    // conf above 1.0: nothing qualifies.
    assert!(generate_rules(&r, 1.01).is_empty());
}

#[test]
fn transactions_shorter_than_k_are_ignored() {
    // Mix of long and very short transactions; short ones must simply not
    // contribute to deep iterations (and not crash the kernel).
    let mut txns: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4]; 5];
    txns.extend((0..10).map(|_| vec![0u32]));
    txns.push(vec![]);
    let db = Database::from_transactions(8, txns).unwrap();
    let r = parallel_arm::core::mine(&db, &cfg_abs(5));
    assert_eq!(r.support_of(&[0, 1, 2, 3, 4]), Some(5));
    assert_eq!(r.support_of(&[0]), Some(15));
}

#[test]
fn quest_generator_edge_parameters() {
    // Tiny universes and degenerate pattern pools must still generate.
    let mut p = QuestParams::paper(2, 1, 100);
    p.n_items = 5;
    p.n_patterns = 1;
    let db = generate(&p);
    assert_eq!(db.len(), 100);
    for t in &db {
        assert!(t.iter().all(|&i| i < 5));
    }
}

#[test]
fn pccd_with_single_candidate() {
    // One candidate, many threads: most local trees are empty.
    let db = Database::from_transactions(4, [vec![0u32, 1], vec![0, 1], vec![2]]).unwrap();
    let (r, _) = pccd::mine(&db, &ParallelConfig::new(cfg_abs(2), 6));
    assert_eq!(r.support_of(&[0, 1]), Some(2));
}
