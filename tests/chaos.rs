//! Chaos battery: deterministic fault injection against every parallel
//! miner (DESIGN.md §10).
//!
//! A [`FaultPlan`] arms panic or delay sites at each instrumented point
//! (CCPD's f1/build/count claims, PCCD's count, parallel Eclat's
//! transpose and class-mining loop, the hybrid's vertical stage); the
//! matrix below drives every miner × site × thread count × scheduling
//! mode and asserts the containment contract:
//!
//! * a panic site surfaces as a clean [`MiningError::WorkerPanicked`]
//!   naming the phase, with every worker joined (the process would abort
//!   otherwise — `std::thread::scope` cannot leak);
//! * a delay site perturbs the schedule but changes **nothing** in the
//!   result;
//! * a retry on the same inputs after a failed run is bit-identical to a
//!   run that never failed.
//!
//! `ARM_STRESS_THREADS` raises the top thread count (CI sets 16).

use parallel_arm::dataset::Item;
use parallel_arm::prelude::*;
use parallel_arm::vertical;
use std::sync::OnceLock;
use std::time::Duration;

type Itemsets = Vec<(Vec<Item>, u32)>;

fn max_threads() -> usize {
    std::env::var("ARM_STRESS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(2)
}

/// Suppresses the default panic-hook backtrace spam for *injected*
/// panics only; anything unexpected still prints.
fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut p = QuestParams::paper(8, 3, 250).with_seed(17);
        p.n_patterns = 40;
        generate(&p)
    })
}

fn base_cfg() -> AprioriConfig {
    AprioriConfig {
        min_support: Support::Fraction(0.02),
        max_k: Some(4),
        ..AprioriConfig::default()
    }
}

fn pcfg(p: usize, mode: Scheduling) -> ParallelConfig {
    ParallelConfig::new(base_cfg(), p).with_scheduling(mode)
}

fn vcfg(mode: Scheduling) -> VerticalConfig {
    VerticalConfig::default()
        .with_scheduling(mode)
        .with_switch_level(2)
}

const MODES: [Scheduling; 4] = [
    Scheduling::Static,
    Scheduling::Chunked { chunk: 2 },
    Scheduling::Guided,
    Scheduling::Stealing,
];

/// Every fallible miner, normalized to its sorted itemset list so the
/// whole matrix shares one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Miner {
    Ccpd,
    Pccd,
    Eclat,
    Hybrid,
}

impl Miner {
    const ALL: [Miner; 4] = [Miner::Ccpd, Miner::Pccd, Miner::Eclat, Miner::Hybrid];

    /// The fault sites instrumented in this miner's drivers.
    fn sites(self) -> &'static [&'static str] {
        match self {
            Miner::Ccpd => &["f1", "build", "count"],
            Miner::Pccd => &["count"],
            Miner::Eclat | Miner::Hybrid => &["transpose", "mine"],
        }
    }

    /// Phases in which this miner can legitimately observe an error.
    fn phases(self) -> &'static [&'static str] {
        match self {
            Miner::Ccpd => &["f1", "candgen", "build", "freeze", "count", "extract"],
            Miner::Pccd => &["f1", "candgen", "count", "extract"],
            Miner::Eclat => &["transpose", "classes", "mine"],
            Miner::Hybrid => &[
                "f1",
                "candgen",
                "build",
                "freeze",
                "count",
                "extract",
                "transpose",
                "classes",
                "mine",
            ],
        }
    }

    fn run(self, p: usize, mode: Scheduling, ctrl: &RunControl) -> Result<Itemsets, MiningError> {
        match self {
            Miner::Ccpd => {
                ccpd::try_mine(db(), &pcfg(p, mode), ctrl).map(|(r, _)| r.all_itemsets())
            }
            Miner::Pccd => {
                pccd::try_mine(db(), &pcfg(p, mode), ctrl).map(|(r, _)| r.all_itemsets())
            }
            Miner::Eclat => {
                let minsup = (db().len() as f64 * 0.02).ceil() as u32;
                vertical::try_mine_eclat_parallel(db(), minsup, Some(4), &vcfg(mode), p, ctrl)
                    .map(|(r, _)| r)
            }
            Miner::Hybrid => {
                try_mine_hybrid(db(), &pcfg(p, mode), &vcfg(mode), ctrl).map(|(r, _)| r)
            }
        }
    }

    /// The fault-free oracle for this miner at this thread count / mode.
    fn baseline(self, p: usize, mode: Scheduling) -> Itemsets {
        self.run(p, mode, &RunControl::default())
            .expect("fault-free run succeeds")
    }
}

fn thread_counts() -> Vec<usize> {
    let mut ps = vec![1, 2, 4, 8];
    let top = max_threads();
    if !ps.contains(&top) {
        ps.push(top);
    }
    ps
}

#[test]
fn panic_sites_surface_as_clean_errors() {
    quiet_panics();
    for miner in Miner::ALL {
        for &site in miner.sites() {
            for &p in &thread_counts() {
                for mode in MODES {
                    let ctrl = RunControl::with_faults(FaultPlan::new().panic_at(site, None, None));
                    let err = miner
                        .run(p, mode, &ctrl)
                        .expect_err("armed panic site must fail the run");
                    match err {
                        MiningError::WorkerPanicked {
                            thread,
                            phase,
                            ref payload,
                        } => {
                            assert_eq!(
                                phase, site,
                                "{miner:?} p={p} mode={mode:?}: panic reported in wrong phase"
                            );
                            assert!(thread < p.max(1));
                            assert!(
                                payload.contains("injected fault"),
                                "payload should name the site, got {payload:?}"
                            );
                        }
                        other => {
                            panic!("{miner:?} site={site} p={p} mode={mode:?}: expected WorkerPanicked, got {other:?}")
                        }
                    }
                    assert_eq!(ctrl.faults.injected(), 1, "exactly one site fired");
                    assert!(
                        ctrl.cancel.is_cancelled(),
                        "siblings were cancelled by the containment"
                    );
                }
            }
        }
    }
}

#[test]
fn delay_sites_never_change_results() {
    quiet_panics();
    for miner in Miner::ALL {
        for &site in miner.sites() {
            for &p in &[2usize, 4, max_threads()] {
                for mode in MODES {
                    let want = miner.baseline(p, mode);
                    let ctrl = RunControl::with_faults(FaultPlan::new().delay_at(
                        site,
                        None,
                        None,
                        Duration::from_millis(3),
                    ));
                    let got = miner
                        .run(p, mode, &ctrl)
                        .expect("a delay must not fail the run");
                    assert_eq!(
                        got, want,
                        "{miner:?} site={site} p={p} mode={mode:?}: delay changed the result"
                    );
                    assert_eq!(ctrl.faults.injected(), 1, "the delay site fired");
                }
            }
        }
    }
}

#[test]
fn retry_after_fault_is_bit_identical() {
    quiet_panics();
    for miner in Miner::ALL {
        for mode in [Scheduling::Static, Scheduling::Stealing] {
            let p = 4;
            let want = miner.baseline(p, mode);
            for &site in miner.sites() {
                let ctrl = RunControl::with_faults(FaultPlan::new().panic_at(site, None, None));
                assert!(miner.run(p, mode, &ctrl).is_err());
                // A fresh run on the same inputs sees no residue of the
                // failed one: no poisoned locks, no partial counters.
                let got = miner.baseline(p, mode);
                assert_eq!(
                    got, want,
                    "{miner:?} site={site} mode={mode:?}: retry diverged after a contained panic"
                );
            }
        }
    }
}

#[test]
fn seeded_plans_fail_cleanly_or_not_at_all() {
    quiet_panics();
    let p = 4;
    for miner in Miner::ALL {
        let want = miner.baseline(p, Scheduling::Stealing);
        for seed in 0..24u64 {
            let plan = FaultPlan::seeded(seed, miner.sites(), p, FaultKind::Panic);
            let ctrl = RunControl::with_faults(plan);
            match miner.run(p, Scheduling::Stealing, &ctrl) {
                Ok(got) => {
                    // The seeded site keyed a (thread, chunk) this run
                    // never claimed — nothing may have fired.
                    assert_eq!(ctrl.faults.injected(), 0, "{miner:?} seed={seed}");
                    assert_eq!(got, want, "{miner:?} seed={seed}");
                }
                Err(MiningError::WorkerPanicked { phase, .. }) => {
                    assert!(
                        miner.sites().contains(&phase),
                        "{miner:?} seed={seed}: phase {phase} not an armed site"
                    );
                    assert_eq!(ctrl.faults.injected(), 1);
                }
                Err(other) => panic!("{miner:?} seed={seed}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn panic_phase_is_always_a_known_phase() {
    quiet_panics();
    for miner in Miner::ALL {
        for &site in miner.sites() {
            let ctrl = RunControl::with_faults(FaultPlan::new().panic_at(site, None, None));
            let err = miner.run(2, Scheduling::Guided, &ctrl).unwrap_err();
            assert!(
                miner.phases().contains(&err.phase()),
                "{miner:?}: {} not in the miner's phase set",
                err.phase()
            );
        }
    }
}
