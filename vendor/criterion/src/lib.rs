//! Offline drop-in subset of the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`) backed by a simple wall-clock measurement
//! loop: per benchmark it warms up briefly, then reports the mean and
//! minimum time per iteration over `sample_size` samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&id.to_string(), 20, &mut f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name and/or parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` performs the measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` samples of a calibrated
    /// number of iterations each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~2ms (or we hit a cap), so cheap kernels aren't all timer
        // noise.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().div_f64(iters as f64));
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total.div_f64(self.samples.len() as f64);
        let min = self.samples.iter().min().unwrap();
        println!("  {label}: mean {mean:?}/iter, min {min:?}/iter");
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.report(label);
}

/// Declares a group function running each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u32) + 1));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }
}
