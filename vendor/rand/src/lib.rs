//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable generator
//! (`StdRng`, here xoshiro256++ seeded via splitmix64), the [`Rng`]
//! extension trait with `gen`/`gen_range`/`gen_bool`, and uniform
//! sampling over integer and float ranges. Streams are deterministic per
//! seed but are **not** bit-compatible with upstream `rand`; nothing in
//! the workspace depends on the exact stream, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is negligible for the test-scale spans used
                // in this workspace (all far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (including unsized ones, mirroring upstream).
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with splitmix64
    /// seed expansion. Fast, passes the statistical checks the Quest
    /// generator's tests apply, and fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&g));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
