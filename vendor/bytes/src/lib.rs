//! Offline drop-in subset of the `bytes` crate: the [`Buf`] / [`BufMut`]
//! traits for little-endian reads over `&[u8]` and writes into `Vec<u8>`,
//! which is all the workspace's binary IO uses.

/// Sequential little-endian reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    /// Panics when fewer bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writer into a growable sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(b"AB");
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        let mut r = &buf[..];
        assert_eq!(r.remaining(), 14);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"AB");
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
