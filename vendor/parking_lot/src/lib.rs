//! Offline drop-in subset of the `parking_lot` crate: `Mutex` and
//! `RwLock` with parking_lot's unpoisoned API, delegating to std's
//! primitives. Poisoning is translated to a panic propagation, matching
//! parking_lot's behavior of not poisoning.

use std::sync;
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's `lock() -> guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking, returning `None`
    /// when it is currently held (parking_lot's `try_lock` API).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's unpoisoned API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
