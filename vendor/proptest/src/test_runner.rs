//! Test-runner plumbing: configuration, the per-test RNG, and the case
//! outcome type the assertion macros return.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition unmet (`prop_assume!`); draw a fresh case.
    Reject(String),
    /// Assertion failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The deterministic generator driving one property's cases.
pub struct TestRng {
    rng: StdRng,
    seed: u64,
}

impl TestRng {
    /// Creates the RNG for `test_name`: seeded from `PROPTEST_SEED` when
    /// set, otherwise from a stable hash of the name, so runs reproduce.
    pub fn for_test(test_name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or_else(|_| fnv1a(test_name.as_bytes())),
            Err(_) => fnv1a(test_name.as_bytes()),
        };
        TestRng {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed in effect (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
