//! Sampling helpers: the `Index` type for picking into runtime-sized
//! collections.

use crate::strategy::{Arbitrary, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;

/// An abstract index, resolved against a concrete length at use time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Builds an index from raw entropy (mainly for tests).
    pub fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolves the index against a collection of `len` elements.
    /// Panics when `len` is zero, mirroring upstream.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Whole-domain strategy for [`Index`].
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn sample(&self, rng: &mut TestRng) -> Index {
        Index(rng.rng().gen())
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> Self::Strategy {
        IndexStrategy
    }
}
