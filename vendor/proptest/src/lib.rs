//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, `prop_assert*`
//! macros, range/collection/tuple strategies, `prop_map`, and
//! `sample::Index`. Cases are generated from a deterministic per-test
//! seed (derived from the test name, overridable with `PROPTEST_SEED`),
//! so failures reproduce exactly. Shrinking is not implemented — a
//! failing case reports its case number and seed instead.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::sample::Index` resolves as upstream.
    pub mod prop {
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (drawing a fresh one) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < 256 * config.cases + 1024,
                                "too many prop_assume rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property `{}` failed at case {} (seed {}): {}",
                                stringify!($name), accepted, rng.seed(), msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::{btree_set, vec};
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in vec(0u32..10, 2..6),
            s in btree_set(0u32..50, 3),
            pair in (0u8..4, any::<bool>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(s.len(), 3);
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0 && (2..10).contains(&n));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn index_maps_into_len() {
        let idx = crate::sample::Index::from_raw(11);
        assert_eq!(idx.index(4), 3);
        assert_eq!(idx.index(1), 0);
    }
}
