//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, re-drawing otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every draw: {}", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives, via the standard distribution.
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: rand::Standard> Strategy for AnyPrimitive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen()
    }
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_primitive!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);
