//! Collection strategies: `vec` and `btree_set` with size ranges.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A target size specification: exact, or uniform in a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            rng.rng().gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
/// If the element domain is too small to reach the target, the set stops
/// growing after a bounded number of attempts.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 64 * target + 64 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}
