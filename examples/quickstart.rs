//! Quickstart: generate a synthetic basket database, mine frequent
//! itemsets in parallel, and print the strongest association rules.
//!
//! Run with: `cargo run --release --example quickstart`

use parallel_arm::prelude::*;

fn main() {
    // A laptop-scale version of the paper's T10.I4 dataset.
    let params = QuestParams::paper(10, 4, 10_000);
    println!("generating {} ...", params.name());
    let db = generate(&params);
    let stats = DatasetStats::measure(params.name(), &db);
    println!(
        "  {} transactions, avg length {:.1}, {:.2} MB",
        stats.n_txns,
        stats.avg_txn_len,
        stats.total_mb()
    );

    // Mine at 0.5% support with every optimization the paper proposes:
    // bitonic tree balancing, adaptive fan-out, short-circuited subset
    // checking, GPP placement — on 4 worker threads (CCPD).
    let base = AprioriConfig {
        min_support: Support::Fraction(0.005),
        ..AprioriConfig::default()
    };
    let (result, run) = ccpd::mine(&db, &ParallelConfig::new(base, 4));

    println!(
        "\nmined {} frequent itemsets (longest: {}-itemsets) at support >= {}",
        result.total_frequent(),
        result.max_k(),
        result.min_support
    );
    for s in &result.iter_stats {
        println!(
            "  k={}: |C_k|={:<6} |F_k|={:<6} tree={:>8} B  fanout={}",
            s.k, s.n_candidates, s.n_frequent, s.tree_bytes, s.fanout
        );
    }
    println!(
        "\nparallel run: wall {:?}, simulated speedup on {} threads: {:.2}x",
        run.wall,
        run.n_threads,
        run.simulated_speedup()
    );

    // Rule generation (step 2 of the mining task).
    let mut rules = generate_rules(&result, 0.9);
    rules.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap());
    println!("\ntop rules at confidence >= 0.9:");
    for r in rules.iter().take(10) {
        println!("  {r}");
    }
    if rules.is_empty() {
        println!("  (none at this confidence; try a lower threshold)");
    }
}
