//! Placement-policy explorer: a miniature Fig. 12 on your machine.
//!
//! Mines the same synthetic database under every memory placement policy
//! of §5 and prints execution times normalized to the CCPD (standard
//! malloc) baseline, plus the tree image sizes.
//!
//! Run with: `cargo run --release --example placement_explorer`

use parallel_arm::prelude::*;
use std::time::Instant;

fn main() {
    let params = QuestParams::paper(10, 4, 20_000);
    println!("dataset: {} (in-memory)", params.name());
    let db = generate(&params);

    let mut rows = Vec::new();
    let mut baseline = None;
    for policy in PlacementPolicy::ALL {
        let cfg = AprioriConfig {
            min_support: Support::Fraction(0.005),
            placement: policy,
            ..AprioriConfig::default()
        };
        // Warm-up + best-of-3 to tame noise.
        let mut best = f64::MAX;
        let mut found = 0usize;
        let mut tree_bytes = 0usize;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = parallel_arm::core::mine(&db, &cfg);
            best = best.min(t0.elapsed().as_secs_f64());
            found = r.total_frequent();
            tree_bytes = r.iter_stats.iter().map(|s| s.tree_bytes).max().unwrap_or(0);
        }
        if policy == PlacementPolicy::Ccpd {
            baseline = Some(best);
        }
        rows.push((policy, best, found, tree_bytes));
    }

    let base = baseline.expect("CCPD baseline present");
    println!(
        "\n{:<8} {:>10} {:>12} {:>10} {:>12}",
        "policy", "time (s)", "normalized", "frequent", "max tree B"
    );
    for (policy, t, found, bytes) in rows {
        println!(
            "{:<8} {:>10.4} {:>12.3} {:>10} {:>12}",
            policy.name(),
            t,
            t / base,
            found,
            bytes
        );
    }
    println!("\nnormalized < 1.0 means faster than the standard-malloc baseline.");
}
