//! CCPD speedup curve — a miniature Fig. 11.
//!
//! Runs CCPD at increasing thread counts and prints measured wall time,
//! the work-model speedup (host-independent; see DESIGN.md), and the
//! load imbalance of the counting phase. Also contrasts CCPD with the
//! PCCD baseline's duplicated-scan pathology.
//!
//! Run with: `cargo run --release --example speedup`

use parallel_arm::prelude::*;

fn main() {
    let params = QuestParams::paper(10, 4, 20_000);
    println!("dataset: {}", params.name());
    let db = generate(&params);
    let base = AprioriConfig {
        min_support: Support::Fraction(0.005),
        ..AprioriConfig::default()
    };

    println!(
        "\n{:>3} {:>12} {:>16} {:>18}",
        "P", "wall (s)", "model speedup", "count imbalance"
    );
    for p in [1usize, 2, 4, 8, 12] {
        let cfg = ParallelConfig::new(base.clone(), p);
        let (result, stats) = ccpd::mine(&db, &cfg);
        println!(
            "{:>3} {:>12.4} {:>16.2} {:>18.3}",
            p,
            stats.wall.as_secs_f64(),
            stats.simulated_speedup(),
            stats.max_imbalance("count"),
        );
        debug_assert!(result.total_frequent() > 0);
    }

    // PCCD: every worker scans the whole database.
    println!("\nPCCD baseline (duplicated scans):");
    for p in [1usize, 4] {
        let cfg = ParallelConfig::new(base.clone(), p);
        let (_, stats) = pccd::mine(&db, &cfg);
        let total_txns: u64 = stats.count_meters.iter().map(|m| m.txns).sum();
        println!(
            "  P={p}: total transactions scanned across threads = {total_txns} \
             (CCPD scans each transaction once per iteration)"
        );
    }
    println!("\nOn a single-core host the wall column stays flat; the model");
    println!("column shows what the work distribution supports on real cores.");
}
