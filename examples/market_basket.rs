//! Market-basket analysis on a hand-built retail scenario — the paper's
//! §2.1.3 worked example scaled up with named products, demonstrating the
//! full pipeline on data you can eyeball.
//!
//! Run with: `cargo run --release --example market_basket`

use parallel_arm::prelude::*;

const PRODUCTS: [&str; 8] = [
    "bread", "milk", "butter", "beer", "chips", "salsa", "diapers", "wipes",
];

fn name(items: &[u32]) -> String {
    items
        .iter()
        .map(|&i| PRODUCTS[i as usize])
        .collect::<Vec<_>>()
        .join("+")
}

fn main() {
    // A few hundred receipts with deliberate co-purchase structure:
    //   bread+milk+butter (breakfast), beer+chips+salsa (game night),
    //   diapers+wipes (baby), plus noise.
    let mut txns: Vec<Vec<u32>> = Vec::new();
    for i in 0..300u32 {
        let mut t = Vec::new();
        match i % 10 {
            0..=3 => t.extend([0, 1, 2]), // breakfast trio
            4..=6 => t.extend([3, 4, 5]), // game night
            7..=8 => t.extend([6, 7]),    // baby run
            _ => t.extend([0, 4]),        // odd mix
        }
        // Noise item.
        if i % 7 == 0 {
            t.push(i % 8);
        }
        txns.push(t);
    }
    let db = Database::from_transactions(PRODUCTS.len() as u32, txns).unwrap();

    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.05),
        leaf_threshold: 4,
        ..AprioriConfig::default()
    };
    let result = parallel_arm::core::mine(&db, &cfg);

    println!("frequent itemsets (support >= {}):", result.min_support);
    for (items, sup) in result.all_itemsets() {
        println!("  {:<24} {:>4} receipts", name(&items), sup);
    }

    let mut rules = generate_rules(&result, 0.8);
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then(b.support.cmp(&a.support))
    });
    println!("\nrules at confidence >= 0.8:");
    for r in &rules {
        println!(
            "  {:<20} => {:<16} conf {:.2}  sup {}",
            name(&r.antecedent),
            name(&r.consequent),
            r.confidence,
            r.support
        );
    }

    // The expected structure must surface.
    assert!(result.support_of(&[0, 1, 2]).is_some(), "breakfast trio");
    assert!(result.support_of(&[3, 4, 5]).is_some(), "game night trio");
    assert!(result.support_of(&[6, 7]).is_some(), "baby pair");
    println!("\nall expected co-purchase patterns were found.");
}
