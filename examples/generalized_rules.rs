//! Multi-level (taxonomy) association mining — the paper's §8 claim that
//! its machinery extends to generalized rules, demonstrated end to end.
//!
//! Run with: `cargo run --release --example generalized_rules`

use parallel_arm::core::taxonomy::Taxonomy;
use parallel_arm::prelude::*;

const NAMES: [&str; 8] = [
    "clothes",      // 0
    "outerwear",    // 1  is-a clothes
    "shirts",       // 2  is-a clothes
    "jacket",       // 3  is-a outerwear
    "ski-pants",    // 4  is-a outerwear
    "footwear",     // 5
    "shoes",        // 6  is-a footwear
    "hiking-boots", // 7  is-a footwear
];

fn label(items: &[u32]) -> String {
    items
        .iter()
        .map(|&i| NAMES[i as usize])
        .collect::<Vec<_>>()
        .join("+")
}

fn main() {
    let mut taxonomy = Taxonomy::new(NAMES.len() as u32);
    for (child, parent) in [(1u32, 0u32), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
        taxonomy.add_edge(child, parent).unwrap();
    }

    // Receipts: jackets go with hiking boots, ski pants with shoes, and
    // a sprinkle of shirt-only baskets. No *leaf* pair is dominant, but
    // outerwear+footwear is.
    let mut txns = Vec::new();
    for i in 0..200u32 {
        match i % 5 {
            0 | 1 => txns.push(vec![3u32, 7]),
            2 | 3 => txns.push(vec![4u32, 6]),
            _ => txns.push(vec![2u32]),
        }
    }
    let db = Database::from_transactions(NAMES.len() as u32, txns).unwrap();

    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.5),
        leaf_threshold: 2,
        ..AprioriConfig::default()
    };

    let plain = parallel_arm::core::mine(&db, &cfg);
    println!("leaf-level mining at 50% support:");
    for (items, sup) in plain.all_itemsets() {
        println!("  {:<28} {sup}", label(&items));
    }
    println!("  (no pair crosses the bar — the co-purchase lives one level up)");

    let gen = parallel_arm::core::mine_generalized(&db, &taxonomy, &cfg);
    println!("\ngeneralized mining at 50% support:");
    for (items, sup) in gen.all_itemsets() {
        println!("  {:<28} {sup}", label(&items));
    }

    let rules = generate_rules(&gen, 0.9);
    println!("\ngeneralized rules at confidence >= 0.9:");
    for r in &rules {
        println!(
            "  {} => {}  (conf {:.2}, sup {})",
            label(&r.antecedent),
            label(&r.consequent),
            r.confidence,
            r.support
        );
    }
    assert!(
        gen.support_of(&[1, 5]).is_some(),
        "outerwear+footwear must be frequent"
    );
    println!("\nthe cross-category pattern is invisible at leaf level and plain at its own.");
}
