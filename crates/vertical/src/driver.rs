//! The shared vertical-mining machinery: database transposition, class
//! construction, and the prefix-class DFS — plus the sequential driver
//! [`mine_vertical`] built from them.
//!
//! The DFS is split into [`extend_one`] (grow one member of a class) and
//! [`extend_all`] (grow every member in order) so the sequential driver
//! and the parallel one in [`crate::parallel`] emit *identical* itemset
//! sets: a parallel task is exactly one `extend_one` call, and a class's
//! subtree never depends on any other class's traversal.

use crate::config::VerticalConfig;
use crate::tidset::{Backend, KernelStats, TidSet};
use arm_dataset::{partition::block_ranges, Database, Item, Tid};
use arm_faults::{try_run_threads, MiningError, RunControl};

/// One mined itemset with its support — the element type of every
/// miner's output buffer.
pub(crate) type Emitted = (Vec<Item>, u32);

/// A per-class output buffer tagged with the index of the first-level
/// class that produced it, so parallel results merge deterministically.
pub(crate) type ClassBuf = (usize, Vec<Emitted>);

/// A prefix-class member during the DFS: the extending item and the
/// tidset of `prefix ∪ {item}`.
#[derive(Debug, Clone)]
pub(crate) struct Member {
    pub item: Item,
    pub tids: TidSet,
}

/// Bitmap word count covering `n_txns` transactions.
pub(crate) fn n_words_for(n_txns: usize) -> usize {
    n_txns.div_ceil(64)
}

/// Transposes the database into per-item ascending tidlists using `p`
/// threads over contiguous transaction blocks. Blocks are merged in
/// thread (= tid) order, so the result is deterministic and each list
/// stays sorted. Returns the lists and the per-thread work tally
/// (items visited).
pub(crate) fn transpose(db: &Database, p: usize) -> (Vec<Vec<Tid>>, Vec<u64>) {
    try_transpose(db, p, &RunControl::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`transpose`]: each worker checkpoints the control's token
/// once before scanning its block (the block is one indivisible unit of
/// transposition work) and fires fault-plan sites in phase `transpose`.
/// A cancelled run's partial lists are discarded by the caller's phase
/// gate, never merged into results.
pub(crate) fn try_transpose(
    db: &Database,
    p: usize,
    ctrl: &RunControl,
) -> Result<(Vec<Vec<Tid>>, Vec<u64>), MiningError> {
    let p = p.max(1);
    let ranges = block_ranges(db.len(), p);
    let partials: Vec<(Vec<Vec<Tid>>, u64)> = try_run_threads(p, "transpose", &ctrl.cancel, |t| {
        ctrl.faults.fire("transpose", t, 0);
        let mut lists: Vec<Vec<Tid>> = vec![Vec::new(); db.n_items() as usize];
        let mut visited = 0u64;
        if !ctrl.cancel.checkpoint() {
            return (lists, visited);
        }
        for tid in ranges[t].clone() {
            let txn = db.transaction(tid);
            visited += txn.len() as u64;
            for &item in txn {
                lists[item as usize].push(tid as Tid);
            }
        }
        (lists, visited)
    })?;
    let work: Vec<u64> = partials.iter().map(|(_, w)| *w).collect();
    let mut merged: Vec<Vec<Tid>> = vec![Vec::new(); db.n_items() as usize];
    for (lists, _) in partials {
        for (dst, src) in merged.iter_mut().zip(lists) {
            if dst.is_empty() {
                *dst = src;
            } else {
                dst.extend_from_slice(&src);
            }
        }
    }
    Ok((merged, work))
}

/// Filters the transposed lists down to the frequent singletons — the
/// root equivalence class, always materialized as sorted lists first.
pub(crate) fn build_root(
    tidlists: Vec<Vec<Tid>>,
    min_support: u32,
    stats: &mut KernelStats,
) -> Vec<Member> {
    let mut root = Vec::new();
    for (i, tids) in tidlists.into_iter().enumerate() {
        if tids.len() >= min_support as usize {
            stats.tidset_bytes += 4 * tids.len() as u64;
            root.push(Member {
                item: i as Item,
                tids: TidSet::Sorted(tids),
            });
        }
    }
    root
}

/// Converts every member of a class to `target` (members already there
/// are untouched, so repeated calls are idempotent).
pub(crate) fn convert_members(
    members: &mut [Member],
    target: Backend,
    n_words: usize,
    stats: &mut KernelStats,
) {
    for m in members {
        if m.tids.backend() != target {
            let converted = match target {
                Backend::Bitmap => m.tids.to_bitmap(n_words),
                Backend::Sorted => m.tids.to_sorted(),
            };
            stats.tidset_bytes += converted.bytes();
            m.tids = converted;
        }
    }
}

/// Grows member `i` of `class`: joins it with every later member, emits
/// the surviving children (itemsets of length `prefix.len() + 2`), and
/// recurses while `max_k` allows. The child class re-decides its tidset
/// backend by its own density — deep classes are typically much sparser
/// than the root.
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_one(
    class: &[Member],
    i: usize,
    prefix: &mut Vec<Item>,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    n_txns: usize,
    stats: &mut KernelStats,
    out: &mut Vec<(Vec<Item>, u32)>,
) {
    let a = &class[i];
    let mut child: Vec<Member> = Vec::new();
    let mut total_support = 0u64;
    for b in &class[i + 1..] {
        let tids = a.tids.intersect(&b.tids, cfg.galloping, stats);
        if tids.support() >= min_support {
            total_support += tids.support() as u64;
            child.push(Member { item: b.item, tids });
        }
    }
    if child.is_empty() {
        return;
    }
    let target = cfg.choose(total_support, child.len(), n_txns);
    convert_members(&mut child, target, n_words_for(n_txns), stats);
    prefix.push(a.item);
    for m in &child {
        let mut items = prefix.clone();
        items.push(m.item);
        out.push((items, m.tids.support()));
    }
    let depth = prefix.len() as u32 + 1; // length of the emitted itemsets
    if max_k.is_none_or(|cap| depth < cap) {
        extend_all(&child, prefix, min_support, max_k, cfg, n_txns, stats, out);
    }
    prefix.pop();
}

/// [`extend_one`] over every member of `class`, in order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_all(
    class: &[Member],
    prefix: &mut Vec<Item>,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    n_txns: usize,
    stats: &mut KernelStats,
    out: &mut Vec<(Vec<Item>, u32)>,
) {
    for i in 0..class.len() {
        extend_one(
            class,
            i,
            prefix,
            min_support,
            max_k,
            cfg,
            n_txns,
            stats,
            out,
        );
    }
}

/// Sequential vertical miner. Bit-identical output (order included) to
/// [`arm_core::mine_eclat`]: length-then-lex over the same itemsets.
pub fn mine_vertical(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
) -> Vec<(Vec<Item>, u32)> {
    mine_vertical_stats(db, min_support, max_k, cfg).0
}

/// [`mine_vertical`] plus the run's [`KernelStats`].
pub fn mine_vertical_stats(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
) -> (Vec<(Vec<Item>, u32)>, KernelStats) {
    let mut stats = KernelStats::default();
    // `max_k = Some(0)` allows no itemset of any length — uniform across
    // every miner in the workspace (see the max_k edge-case suite).
    if max_k == Some(0) {
        return (Vec::new(), stats);
    }
    let min_support = min_support.max(1);
    let (tidlists, _) = transpose(db, 1);
    let mut root = build_root(tidlists, min_support, &mut stats);
    let mut out: Vec<(Vec<Item>, u32)> = root
        .iter()
        .map(|m| (vec![m.item], m.tids.support()))
        .collect();
    if max_k != Some(1) && !root.is_empty() {
        let total: u64 = root.iter().map(|m| m.tids.support() as u64).sum();
        let target = cfg.choose(total, root.len(), db.len());
        convert_members(&mut root, target, n_words_for(db.len()), &mut stats);
        let mut prefix = Vec::new();
        extend_all(
            &root,
            &mut prefix,
            min_support,
            max_k,
            cfg,
            db.len(),
            &mut stats,
            &mut out,
        );
    }
    out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TidBackend;
    use arm_core::mine_eclat;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn transpose_is_deterministic_across_thread_counts() {
        let db = paper_db();
        let (one, w1) = transpose(&db, 1);
        assert_eq!(w1, vec![db.total_items() as u64]);
        for p in [2, 3, 4, 8] {
            let (many, w) = transpose(&db, p);
            assert_eq!(many, one, "p={p}");
            assert_eq!(w.iter().sum::<u64>(), db.total_items() as u64);
            assert_eq!(w.len(), p);
        }
        assert_eq!(one[4], vec![0, 2, 3]);
        assert_eq!(one[0], Vec::<Tid>::new());
    }

    #[test]
    fn matches_core_eclat_bit_identical() {
        let db = paper_db();
        for backend in [TidBackend::Auto, TidBackend::Sorted, TidBackend::Bitmap] {
            for galloping in [false, true] {
                let cfg = VerticalConfig {
                    backend,
                    galloping,
                    ..VerticalConfig::default()
                };
                for minsup in 1..=4 {
                    for max_k in [None, Some(1), Some(2), Some(3), Some(10)] {
                        assert_eq!(
                            mine_vertical(&db, minsup, max_k, &cfg),
                            mine_eclat(&db, minsup, max_k),
                            "backend={backend:?} gallop={galloping} minsup={minsup} max_k={max_k:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn max_k_zero_is_empty() {
        let db = paper_db();
        assert!(mine_vertical(&db, 1, Some(0), &VerticalConfig::default()).is_empty());
    }

    #[test]
    fn stats_reflect_backend() {
        let db = paper_db();
        let (_, sorted) = mine_vertical_stats(
            &db,
            2,
            None,
            &VerticalConfig::default().with_backend(TidBackend::Sorted),
        );
        assert!(sorted.intersections > 0);
        assert_eq!(sorted.words_anded, 0, "no AND on the sorted backend");
        let (_, bitmap) = mine_vertical_stats(
            &db,
            2,
            None,
            &VerticalConfig::default().with_backend(TidBackend::Bitmap),
        );
        assert_eq!(bitmap.intersections, sorted.intersections);
        assert!(bitmap.words_anded > 0);
    }

    #[test]
    fn empty_database() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        assert!(mine_vertical(&db, 1, None, &VerticalConfig::default()).is_empty());
    }
}
