//! Parallel Eclat: first-level prefix equivalence classes scheduled as
//! weighted tasks on the `arm-exec` chunk pool.
//!
//! A task is one root-class member's entire DFS subtree
//! ([`crate::driver::extend_one`]), so tasks touch disjoint outputs and
//! need no locks. Threads append `(class_index, itemsets)` buffers;
//! the merge sorts by class index and applies the final length-then-lex
//! canonical order, which makes the result bit-identical to the
//! sequential [`crate::mine_vertical`] (and [`arm_core::mine_eclat`])
//! under *any* schedule — itemset order never depends on which thread
//! ran which class.
//!
//! Class weights for the initial split are the suffix sums of member
//! supports: member `i` joins with every later member, so the tidset
//! lengths it touches are `Σ_{j ≥ i} |tids_j|`. Dynamic modes (guided,
//! stealing) re-balance mis-estimates at run time.

use crate::config::VerticalConfig;
use crate::driver::{
    build_root, convert_members, extend_one, n_words_for, try_transpose, ClassBuf,
};
use crate::tidset::KernelStats;
use arm_dataset::{Database, Item};
use arm_exec::ChunkPool;
use arm_faults::{try_run_threads, MiningError, RunControl};
use arm_hashtree::WorkMeter;
use arm_metrics::{Counter, MetricsRegistry};
use arm_parallel::{record_exec, ParallelRunStats};
use std::ops::Range;
use std::time::Instant;

/// What every fallible driver in this crate produces: the canonical
/// itemset list plus run stats, or the error that ended the run.
pub type TryMineOutcome = Result<(Vec<(Vec<Item>, u32)>, ParallelRunStats), MiningError>;

/// Greedy contiguous split of class indices into `p` ranges of roughly
/// equal total weight — the pool's seed ranges. Exported for tests that
/// need to reproduce (or deliberately skew) the driver's split.
pub fn class_seeds(weights: &[u64], p: usize) -> Vec<Range<usize>> {
    let p = p.max(1);
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let target = (total as f64 / p as f64).max(1.0);
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    let mut acc: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let remaining = p - out.len();
        if remaining > 1 && acc as f64 >= target && n - (i + 1) >= remaining - 1 {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    out.push(start..n);
    while out.len() < p {
        out.push(n..n);
    }
    out
}

/// Parallel Eclat over `n_threads` workers. Returns the frequent
/// itemsets in canonical length-then-lex order (bit-identical to
/// [`crate::mine_vertical`]) and the run's phase/telemetry stats.
pub fn mine_eclat_parallel(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    n_threads: usize,
) -> (Vec<(Vec<Item>, u32)>, ParallelRunStats) {
    mine_parallel_impl(
        db,
        min_support,
        max_k,
        cfg,
        n_threads,
        None,
        &RunControl::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// [`mine_eclat_parallel`] under a [`RunControl`]: cancellation is
/// observed per transpose block and per class-range claim, worker panics
/// return as [`MiningError::WorkerPanicked`], and fault-plan sites fire
/// in phases `transpose` and `mine`.
pub fn try_mine_eclat_parallel(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    n_threads: usize,
    ctrl: &RunControl,
) -> TryMineOutcome {
    mine_parallel_impl(db, min_support, max_k, cfg, n_threads, None, ctrl)
}

/// [`mine_eclat_parallel`] with caller-provided seed ranges over the
/// root-class index space, replacing the weight-based split. The ranges
/// must tile `0..n_root_classes` (every first-level class exactly once);
/// the stress suite uses this to feed the pool adversarial splits.
pub fn mine_eclat_parallel_seeded(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    n_threads: usize,
    seeds: &[Range<usize>],
) -> (Vec<(Vec<Item>, u32)>, ParallelRunStats) {
    mine_parallel_impl(
        db,
        min_support,
        max_k,
        cfg,
        n_threads,
        Some(seeds),
        &RunControl::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Folds one task-local [`KernelStats`] into thread `t`'s metrics shard.
pub(crate) fn fold_kernel_stats(metrics: &MetricsRegistry, t: usize, s: &KernelStats) {
    let shard = metrics.shard(t);
    shard.add(Counter::TidsetIntersections, s.intersections);
    shard.add(Counter::TidsetWordsAnded, s.words_anded);
    shard.add(Counter::TidsetBytes, s.tidset_bytes);
}

#[allow(clippy::too_many_arguments)]
fn mine_parallel_impl(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    n_threads: usize,
    seeds: Option<&[Range<usize>]>,
    ctrl: &RunControl,
) -> TryMineOutcome {
    let run_start = Instant::now();
    let p = n_threads.max(1);
    let metrics = MetricsRegistry::new(p);
    let mut out: Vec<(Vec<Item>, u32)> = Vec::new();
    if max_k != Some(0) {
        let min_support = min_support.max(1);

        let span = metrics.phase("transpose", 1);
        let (tidlists, transpose_work) = try_transpose(db, p, ctrl)?;
        span.finish(transpose_work);
        ctrl.gate("transpose", run_start)?;

        // Root class, weights, and the class-level backend choice are
        // cheap and serial (one pass over the frequent singletons).
        let span = metrics.phase("classes", 1);
        let mut root_stats = KernelStats::default();
        let mut root = build_root(tidlists, min_support, &mut root_stats);
        for m in &root {
            out.push((vec![m.item], m.tids.support()));
        }
        let run_deep = max_k != Some(1) && !root.is_empty();
        let mut weights: Vec<u64> = Vec::new();
        if run_deep {
            let total: u64 = root.iter().map(|m| m.tids.support() as u64).sum();
            let target = cfg.choose(total, root.len(), db.len());
            convert_members(&mut root, target, n_words_for(db.len()), &mut root_stats);
            // Suffix sums: class i's DFS joins member i with every later
            // member, so its first-level cost tracks Σ_{j ≥ i} support_j.
            weights = vec![0u64; root.len()];
            let mut suffix = 0u64;
            for i in (0..root.len()).rev() {
                suffix += root[i].tids.support() as u64;
                weights[i] = suffix;
            }
        }
        span.finish_serial();
        fold_kernel_stats(&metrics, 0, &root_stats);
        ctrl.gate("classes", run_start)?;

        if run_deep {
            let owned_seeds;
            let seed_ranges: &[Range<usize>] = match seeds {
                Some(s) => s,
                None => {
                    owned_seeds = class_seeds(&weights, p);
                    &owned_seeds
                }
            };
            let mut covered = 0usize;
            for r in seed_ranges {
                assert!(r.end <= root.len(), "seed range {r:?} out of bounds");
                covered += r.len();
            }
            assert_eq!(
                covered,
                root.len(),
                "seed ranges must tile every first-level class exactly once"
            );
            // Floor 1: a class is already a coarse task, so chunks must
            // be allowed to shrink to single classes for stealing to
            // help on skewed weight distributions.
            let pool = ChunkPool::with_floor(seed_ranges, cfg.scheduling, 1)
                .with_cancel_token(ctrl.cancel.clone());
            let span = metrics.phase("mine", 1);
            let root_ref = &root;
            let results: Vec<(KernelStats, Vec<ClassBuf>)> =
                try_run_threads(p, "mine", &ctrl.cancel, |t| {
                    let mut stats = KernelStats::default();
                    let mut bufs = Vec::new();
                    let mut claim = 0u64;
                    while let Some(range) = pool.next(t) {
                        ctrl.faults.fire("mine", t, claim);
                        claim += 1;
                        for ci in range {
                            let mut class_out = Vec::new();
                            let mut prefix = Vec::new();
                            extend_one(
                                root_ref,
                                ci,
                                &mut prefix,
                                min_support,
                                max_k,
                                cfg,
                                db.len(),
                                &mut stats,
                                &mut class_out,
                            );
                            bufs.push((ci, class_out));
                        }
                    }
                    (stats, bufs)
                })?;
            record_exec(&metrics, &pool);
            span.finish(results.iter().map(|(s, _)| s.work_units).collect());
            for (t, (s, _)) in results.iter().enumerate() {
                fold_kernel_stats(&metrics, t, s);
            }
            ctrl.gate("mine", run_start)?;

            let span = metrics.phase("merge", 1);
            let mut by_class: Vec<ClassBuf> =
                results.into_iter().flat_map(|(_, bufs)| bufs).collect();
            by_class.sort_by_key(|(ci, _)| *ci);
            for (_, mut chunk) in by_class {
                out.append(&mut chunk);
            }
            out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
            span.finish_serial();
        }
    }
    metrics
        .shard(0)
        .add(Counter::FaultsInjected, ctrl.faults.injected());
    let stats = ParallelRunStats {
        n_threads: p,
        phases: metrics.take_phases(),
        wall: run_start.elapsed(),
        count_meters: vec![WorkMeter::default(); p],
        metrics: metrics.snapshot(),
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TidBackend;
    use crate::driver::mine_vertical;
    use arm_exec::Scheduling;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn class_seeds_tile_and_balance() {
        let w = [10u64, 1, 1, 1, 1, 10, 1, 1];
        for p in 1..=8 {
            let seeds = class_seeds(&w, p);
            assert_eq!(seeds.len(), p);
            assert_eq!(seeds[0].start, 0);
            assert_eq!(seeds.last().unwrap().end, w.len());
            for pair in seeds.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
        // Balanced two-way split puts the two heavy classes apart.
        let two = class_seeds(&w, 2);
        assert!(two[0].contains(&0) && two[1].contains(&5));
        // More parts than classes: trailing empties.
        let many = class_seeds(&[5u64], 4);
        assert_eq!(many[0], 0..1);
        assert!(many[1..].iter().all(|r| r.is_empty()));
        assert_eq!(class_seeds(&[], 3), vec![0..0, 0..0, 0..0]);
    }

    #[test]
    fn parallel_matches_sequential_all_backends_and_modes() {
        let db = paper_db();
        let modes = [
            Scheduling::Static,
            Scheduling::Guided,
            Scheduling::Stealing,
            Scheduling::Chunked { chunk: 1 },
        ];
        for backend in [TidBackend::Auto, TidBackend::Sorted, TidBackend::Bitmap] {
            for mode in modes {
                let cfg = VerticalConfig::default()
                    .with_backend(backend)
                    .with_scheduling(mode);
                let want = mine_vertical(&db, 2, None, &cfg);
                for p in [1, 2, 4, 8] {
                    let (got, stats) = mine_eclat_parallel(&db, 2, None, &cfg, p);
                    assert_eq!(got, want, "backend={backend:?} mode={mode:?} p={p}");
                    assert_eq!(stats.n_threads, p);
                    assert!(stats.phases.iter().any(|ph| ph.name == "mine"));
                }
            }
        }
    }

    #[test]
    fn max_k_edges() {
        let db = paper_db();
        let cfg = VerticalConfig::default();
        let (zero, _) = mine_eclat_parallel(&db, 1, Some(0), &cfg, 4);
        assert!(zero.is_empty());
        let (ones, _) = mine_eclat_parallel(&db, 2, Some(1), &cfg, 4);
        assert!(ones.iter().all(|(s, _)| s.len() == 1));
        assert_eq!(ones.len(), 4);
    }

    #[test]
    fn seeded_split_is_schedule_invariant() {
        let db = paper_db();
        let cfg = VerticalConfig::default();
        let want = mine_vertical(&db, 2, None, &cfg);
        // Root classes: items 1, 2, 4, 5 → 4 classes. Adversarial tiles.
        for seeds in [
            vec![0..4, 4..4, 4..4, 4..4],
            vec![0..0, 0..1, 1..1, 1..4],
            vec![0..2, 2..3, 3..4],
        ] {
            let (got, _) = mine_eclat_parallel_seeded(&db, 2, None, &cfg, seeds.len(), &seeds);
            assert_eq!(got, want, "seeds={seeds:?}");
        }
    }

    #[test]
    #[should_panic(expected = "tile every first-level class")]
    fn seeded_split_must_cover() {
        let db = paper_db();
        let seeds = vec![0..2, 2..3]; // misses class 3
        mine_eclat_parallel_seeded(&db, 2, None, &VerticalConfig::default(), 2, &seeds);
    }

    #[test]
    fn telemetry_lands_in_snapshot() {
        let db = paper_db();
        let (_, stats) = mine_eclat_parallel(&db, 2, None, &VerticalConfig::default(), 2);
        if stats.metrics.enabled {
            assert!(stats.metrics.total(Counter::TidsetIntersections) > 0);
            assert!(stats.metrics.total(Counter::TidsetBytes) > 0);
        }
    }
}
