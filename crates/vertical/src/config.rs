//! Knobs of the vertical mining subsystem.

use crate::tidset::Backend;
use arm_exec::Scheduling;

/// Tidset representation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TidBackend {
    /// Pick per equivalence class by density (see
    /// [`VerticalConfig::density_threshold`]). Root and child classes
    /// re-decide independently, so a run can start on bitmaps and fall
    /// back to lists as tidsets thin out with depth.
    #[default]
    Auto,
    /// Always sorted tid lists.
    Sorted,
    /// Always dense bitmaps.
    Bitmap,
}

/// Configuration of the vertical (Eclat) miners. Defaults are the fully
/// optimized settings; [`VerticalConfig::unoptimized`] turns every
/// fast-path off for A/B comparison, mirroring `AprioriConfig`.
#[derive(Debug, Clone)]
pub struct VerticalConfig {
    /// Tidset representation policy.
    pub backend: TidBackend,
    /// With [`TidBackend::Auto`], a class mines on bitmaps iff its
    /// members' average support is at least `density_threshold · n_txns`.
    /// Default `1/64`: one AND word covers 64 transactions, so that is
    /// the density where the bitmap's fixed `n/64`-word cost matches the
    /// sorted merge's length-proportional cost.
    pub density_threshold: f64,
    /// Use the galloping merge for sorted lists (off: two-pointer walk).
    pub galloping: bool,
    /// How the parallel driver distributes first-level classes.
    pub scheduling: Scheduling,
    /// Hybrid switch level `s`: [`crate::mine_hybrid`] counts levels
    /// `k ≤ s` with the CCPD hash tree, then transposes `F_s` and mines
    /// deeper levels vertically. Clamped to at least 1.
    pub switch_level: u32,
}

impl Default for VerticalConfig {
    fn default() -> Self {
        VerticalConfig {
            backend: TidBackend::Auto,
            density_threshold: 1.0 / 64.0,
            galloping: true,
            scheduling: Scheduling::default(),
            switch_level: 2,
        }
    }
}

impl VerticalConfig {
    /// Every fast path off: sorted lists only, linear merge, static
    /// scheduling. The A/B baseline for the bench gates.
    pub fn unoptimized() -> Self {
        VerticalConfig {
            backend: TidBackend::Sorted,
            galloping: false,
            scheduling: Scheduling::Static,
            ..VerticalConfig::default()
        }
    }

    /// Builder-style backend setter.
    pub fn with_backend(mut self, b: TidBackend) -> Self {
        self.backend = b;
        self
    }

    /// Builder-style scheduling setter.
    pub fn with_scheduling(mut self, s: Scheduling) -> Self {
        self.scheduling = s;
        self
    }

    /// Builder-style switch-level setter.
    pub fn with_switch_level(mut self, s: u32) -> Self {
        self.switch_level = s;
        self
    }

    /// Resolves the backend for a class whose members' supports sum to
    /// `total_support`, over a database of `n_txns` transactions.
    pub fn choose(&self, total_support: u64, n_members: usize, n_txns: usize) -> Backend {
        match self.backend {
            TidBackend::Sorted => Backend::Sorted,
            TidBackend::Bitmap => Backend::Bitmap,
            TidBackend::Auto => {
                if n_members == 0 || n_txns == 0 {
                    return Backend::Sorted;
                }
                let avg = total_support as f64 / n_members as f64;
                if avg >= self.density_threshold * n_txns as f64 {
                    Backend::Bitmap
                } else {
                    Backend::Sorted
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_optimized() {
        let c = VerticalConfig::default();
        assert_eq!(c.backend, TidBackend::Auto);
        assert!(c.galloping);
        assert_eq!(c.scheduling, Scheduling::Stealing);
        assert_eq!(c.switch_level, 2);
        assert!((c.density_threshold - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn unoptimized_turns_everything_off() {
        let c = VerticalConfig::unoptimized();
        assert_eq!(c.backend, TidBackend::Sorted);
        assert!(!c.galloping);
        assert_eq!(c.scheduling, Scheduling::Static);
        // choose() honors the forced backend regardless of density.
        assert_eq!(c.choose(1_000_000, 1, 10), Backend::Sorted);
    }

    #[test]
    fn auto_choice_follows_density() {
        let c = VerticalConfig::default();
        // 6400 txns, threshold density = 100 tids per member.
        assert_eq!(c.choose(400, 4, 6400), Backend::Bitmap); // avg 100
        assert_eq!(c.choose(396, 4, 6400), Backend::Sorted); // avg 99
        assert_eq!(c.choose(0, 0, 6400), Backend::Sorted);
        assert_eq!(c.choose(0, 4, 0), Backend::Sorted);
        let forced = c.with_backend(TidBackend::Bitmap);
        assert_eq!(forced.choose(1, 4, 6400), Backend::Bitmap);
    }

    #[test]
    fn builders() {
        let c = VerticalConfig::default()
            .with_backend(TidBackend::Sorted)
            .with_scheduling(Scheduling::Guided)
            .with_switch_level(3);
        assert_eq!(c.backend, TidBackend::Sorted);
        assert_eq!(c.scheduling, Scheduling::Guided);
        assert_eq!(c.switch_level, 3);
    }
}
