//! Hybrid Apriori → vertical mining (the authors' follow-up observation
//! that breadth-first counting wins on shallow, wide levels while
//! tidlist intersection wins on deep, narrow ones).
//!
//! Levels `k ≤ switch_level` run as plain CCPD: hash-tree counting over
//! the horizontal database, which amortizes beautifully while candidate
//! sets are huge. The surviving `F_s` itemsets are then *transposed*
//! into tidsets — one shared `(s-1)`-prefix intersection per equivalence
//! class plus one intersection per member — and the deep levels finish
//! vertically with the same weighted class scheduling as
//! [`crate::mine_eclat_parallel`].
//!
//! Output is bit-identical to full CCPD / sequential Eclat: the class
//! partition of `F_s` is exact (equivalence classes share their first
//! `s-1` items), every frequent `(s+1)`-itemset has both its generating
//! `s`-subsets in one class, and deeper levels follow inductively inside
//! the child classes.

use crate::config::VerticalConfig;
use crate::driver::{convert_members, extend_one, n_words_for, try_transpose, ClassBuf, Member};
use crate::parallel::{class_seeds, fold_kernel_stats, TryMineOutcome};
use crate::tidset::{intersect_sorted, KernelStats, TidSet};
use arm_core::{equivalence_classes, FrequentLevel};
use arm_dataset::{Database, Item, Tid};
use arm_exec::ChunkPool;
use arm_faults::{try_run_threads, RunControl};
use arm_hashtree::WorkMeter;
use arm_metrics::{Counter, MetricsRegistry, MetricsSnapshot, N_COUNTERS};
use arm_parallel::{ccpd, record_exec, ParallelConfig, ParallelRunStats};
use std::ops::Range;
use std::time::Instant;

/// Element-wise sum of two per-thread counter snapshots (padded to the
/// wider thread count).
fn merge_snapshots(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let n = a.per_thread.len().max(b.per_thread.len());
    let mut per_thread = vec![[0u64; N_COUNTERS]; n];
    for (t, row) in per_thread.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = a.per_thread.get(t).map_or(0, |r| r[c]) + b.per_thread.get(t).map_or(0, |r| r[c]);
        }
    }
    MetricsSnapshot {
        enabled: a.enabled || b.enabled,
        per_thread,
    }
}

/// Transposes one `F_s` equivalence class into tidset members and mines
/// its subtree. The class's shared `(s-1)`-prefix tidset is intersected
/// once; each member then costs a single extra intersection with its
/// distinguishing last item's singleton tidlist.
#[allow(clippy::too_many_arguments)]
fn mine_deep_class(
    fs: &FrequentLevel,
    class: Range<u32>,
    tidlists: &[Vec<Tid>],
    n_txns: usize,
    min_support: u32,
    max_k: Option<u32>,
    cfg: &VerticalConfig,
    stats: &mut KernelStats,
    out: &mut Vec<(Vec<Item>, u32)>,
) {
    let s = fs.k() as usize;
    let shared = &fs.get(class.start as usize)[..s - 1];
    // Tidset of the shared prefix; `None` at s == 1 (the full database).
    let prefix_tids: Option<Vec<Tid>> = shared.iter().fold(None, |acc, &item| {
        let list = &tidlists[item as usize];
        Some(match acc {
            None => list.clone(),
            Some(a) => intersect_sorted(&a, list, cfg.galloping, stats),
        })
    });
    let mut members: Vec<Member> = Vec::with_capacity(class.len());
    let mut total_support = 0u64;
    for i in class {
        let items = fs.get(i as usize);
        let last = items[s - 1];
        let tids = match &prefix_tids {
            None => tidlists[last as usize].clone(),
            Some(a) => intersect_sorted(a, &tidlists[last as usize], cfg.galloping, stats),
        };
        debug_assert_eq!(
            tids.len() as u32,
            fs.support(i as usize),
            "transposed tidset disagrees with the hash-tree count for {items:?}"
        );
        total_support += tids.len() as u64;
        members.push(Member {
            item: last,
            tids: TidSet::Sorted(tids),
        });
    }
    let target = cfg.choose(total_support, members.len(), n_txns);
    convert_members(&mut members, target, n_words_for(n_txns), stats);
    let mut prefix: Vec<Item> = shared.to_vec();
    for i in 0..members.len() {
        extend_one(
            &members,
            i,
            &mut prefix,
            min_support,
            max_k,
            cfg,
            n_txns,
            stats,
            out,
        );
    }
}

/// Hybrid miner: CCPD for levels `k ≤ vcfg.switch_level`, vertical DFS
/// beyond. Uses `pcfg.n_threads` workers throughout; `pcfg.base.max_k`
/// caps the overall depth exactly as in the other miners. Returns the
/// canonical length-then-lex itemsets (bit-identical to
/// `ccpd::mine(..).0.all_itemsets()` and [`crate::mine_vertical`]) and
/// the stitched stats of both regimes (CCPD phases followed by the
/// vertical transpose/classes/mine/merge phases).
pub fn mine_hybrid(
    db: &Database,
    pcfg: &ParallelConfig,
    vcfg: &VerticalConfig,
) -> (Vec<(Vec<Item>, u32)>, ParallelRunStats) {
    try_mine_hybrid(db, pcfg, vcfg, &RunControl::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`mine_hybrid`]: the horizontal stage inherits the control
/// through [`ccpd::try_mine`] (so its f1/build/count phases observe
/// cancellation and fault sites), and the vertical stage checkpoints on
/// every class-pool claim plus gates after `transpose` and `mine`. A run
/// that returns `Err` discards both regimes' partial results.
pub fn try_mine_hybrid(
    db: &Database,
    pcfg: &ParallelConfig,
    vcfg: &VerticalConfig,
    ctrl: &RunControl,
) -> TryMineOutcome {
    let run_start = Instant::now();
    let p = pcfg.n_threads.max(1);
    let user_max = pcfg.base.max_k;
    if user_max == Some(0) {
        return Ok((
            Vec::new(),
            ParallelRunStats {
                n_threads: p,
                phases: Vec::new(),
                wall: run_start.elapsed(),
                count_meters: vec![WorkMeter::default(); p],
                metrics: MetricsSnapshot::default(),
            },
        ));
    }
    let s = vcfg.switch_level.max(1);
    if user_max.is_some_and(|m| m <= s) {
        // The cap never reaches the vertical regime: plain CCPD.
        let (res, mut stats) = ccpd::try_mine(db, pcfg, ctrl)?;
        stats.wall = run_start.elapsed();
        return Ok((res.all_itemsets(), stats));
    }
    let mut capped = pcfg.clone();
    capped.base.max_k = Some(s);
    let (res, ccpd_stats) = ccpd::try_mine(db, &capped, ctrl)?;
    // Faults fired so far were already tallied into the CCPD registry;
    // only the vertical stage's delta goes into ours (the snapshots merge).
    let injected_at_switch = ctrl.faults.injected();
    let mut out = res.all_itemsets();
    let frontier = res.levels.last();
    let fs = match frontier {
        Some(level) if res.max_k() >= s => level,
        _ => {
            // The frontier died before the switch level; by downward
            // closure nothing deeper exists either.
            let mut stats = ccpd_stats;
            stats.wall = run_start.elapsed();
            return Ok((out, stats));
        }
    };
    debug_assert_eq!(fs.k(), s);

    let metrics = MetricsRegistry::new(p);
    let min_support = res.min_support.max(1);

    let span = metrics.phase("transpose", s + 1);
    let (tidlists, transpose_work) = try_transpose(db, p, ctrl)?;
    span.finish(transpose_work);
    ctrl.gate("transpose", run_start)?;

    let span = metrics.phase("classes", s + 1);
    let classes = equivalence_classes(fs);
    let weights: Vec<u64> = classes
        .iter()
        .map(|c| c.clone().map(|i| fs.support(i as usize) as u64).sum())
        .collect();
    let seeds = class_seeds(&weights, p);
    span.finish_serial();

    let pool =
        ChunkPool::with_floor(&seeds, vcfg.scheduling, 1).with_cancel_token(ctrl.cancel.clone());
    let span = metrics.phase("mine", s + 1);
    let tidlists_ref = &tidlists;
    let classes_ref = &classes;
    let results: Vec<(KernelStats, Vec<ClassBuf>)> =
        try_run_threads(p, "mine", &ctrl.cancel, |t| {
            let mut stats = KernelStats::default();
            let mut bufs = Vec::new();
            let mut claim = 0u64;
            while let Some(range) = pool.next(t) {
                ctrl.faults.fire("mine", t, claim);
                claim += 1;
                for ci in range {
                    let mut class_out = Vec::new();
                    mine_deep_class(
                        fs,
                        classes_ref[ci].clone(),
                        tidlists_ref,
                        db.len(),
                        min_support,
                        user_max,
                        vcfg,
                        &mut stats,
                        &mut class_out,
                    );
                    bufs.push((ci, class_out));
                }
            }
            (stats, bufs)
        })?;
    record_exec(&metrics, &pool);
    span.finish(results.iter().map(|(st, _)| st.work_units).collect());
    for (t, (st, _)) in results.iter().enumerate() {
        fold_kernel_stats(&metrics, t, st);
    }
    ctrl.gate("mine", run_start)?;

    let span = metrics.phase("merge", s + 1);
    let mut by_class: Vec<ClassBuf> = results.into_iter().flat_map(|(_, bufs)| bufs).collect();
    by_class.sort_by_key(|(ci, _)| *ci);
    for (_, mut chunk) in by_class {
        out.append(&mut chunk);
    }
    out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    span.finish_serial();

    metrics.shard(0).add(
        Counter::FaultsInjected,
        ctrl.faults.injected() - injected_at_switch,
    );
    let mut phases = ccpd_stats.phases;
    phases.extend(metrics.take_phases());
    let stats = ParallelRunStats {
        n_threads: p,
        phases,
        wall: run_start.elapsed(),
        count_meters: ccpd_stats.count_meters,
        metrics: merge_snapshots(&ccpd_stats.metrics, &metrics.snapshot()),
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TidBackend;
    use arm_core::{AprioriConfig, Support};

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    fn pcfg(minsup: u32, p: usize) -> ParallelConfig {
        let base = AprioriConfig {
            min_support: Support::Absolute(minsup),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        ParallelConfig::new(base, p)
    }

    #[test]
    fn hybrid_matches_ccpd_across_switch_levels() {
        let db = paper_db();
        for minsup in 1..=3 {
            let (res, _) = ccpd::mine(&db, &pcfg(minsup, 2));
            let want = res.all_itemsets();
            for s in 1..=4 {
                for backend in [TidBackend::Auto, TidBackend::Sorted, TidBackend::Bitmap] {
                    let vcfg = VerticalConfig::default()
                        .with_switch_level(s)
                        .with_backend(backend);
                    let (got, _) = mine_hybrid(&db, &pcfg(minsup, 2), &vcfg);
                    assert_eq!(got, want, "minsup={minsup} s={s} backend={backend:?}");
                }
            }
        }
    }

    #[test]
    fn hybrid_respects_max_k() {
        let db = paper_db();
        let vcfg = VerticalConfig::default().with_switch_level(1);
        for cap in [Some(0), Some(1), Some(2), Some(3), Some(10), None] {
            let mut cfg = pcfg(2, 2);
            cfg.base.max_k = cap;
            let (got, _) = mine_hybrid(&db, &cfg, &vcfg);
            let (res, _) = ccpd::mine(&db, &cfg);
            assert_eq!(got, res.all_itemsets(), "cap={cap:?}");
        }
    }

    #[test]
    fn hybrid_stats_cover_both_regimes() {
        let db = paper_db();
        let (_, stats) = mine_hybrid(&db, &pcfg(2, 2), &VerticalConfig::default());
        // CCPD phases first, vertical phases after.
        assert!(stats.phases.iter().any(|ph| ph.name == "count"));
        assert!(stats.phases.iter().any(|ph| ph.name == "mine"));
        assert_eq!(stats.n_threads, 2);
        assert_eq!(stats.count_meters.len(), 2);
    }

    #[test]
    fn snapshot_merge_pads_and_adds() {
        let a = MetricsSnapshot {
            enabled: true,
            per_thread: vec![[1u64; N_COUNTERS]],
        };
        let b = MetricsSnapshot {
            enabled: false,
            per_thread: vec![[2u64; N_COUNTERS], [3u64; N_COUNTERS]],
        };
        let m = merge_snapshots(&a, &b);
        assert!(m.enabled);
        assert_eq!(m.per_thread.len(), 2);
        assert_eq!(m.per_thread[0][0], 3);
        assert_eq!(m.per_thread[1][0], 3);
    }
}
