//! Parallel vertical mining: bitmap tidsets, word-AND intersection
//! kernels, and a hybrid Apriori→vertical driver.
//!
//! The paper's CCPD algorithm counts candidates against the horizontal
//! database every iteration. The authors' follow-up work replaces deep
//! iterations with *vertical* mining — each itemset carries its tidset,
//! and support is an intersection, not a scan (§7.1). This crate is that
//! subsystem:
//!
//! * [`tidset`] — the [`TidSet`] representations (sorted lists vs dense
//!   bitmaps) and their intersection kernels;
//! * [`config`] — the [`VerticalConfig`] knobs: backend policy, density
//!   threshold, galloping merge, class scheduling, hybrid switch level;
//! * [`driver`] — transposition, prefix-class DFS, and the sequential
//!   [`mine_vertical`] (bit-identical to [`arm_core::mine_eclat`]);
//! * [`parallel`] — [`mine_eclat_parallel`]: first-level equivalence
//!   classes as weighted tasks on the `arm-exec` chunk pool, with a
//!   deterministic merge;
//! * [`hybrid`] — [`mine_hybrid`]: CCPD hash-tree counting for the
//!   shallow levels, then transpose `F_s` and finish vertically.
//!
//! ```
//! use arm_dataset::Database;
//! use arm_vertical::{mine_eclat_parallel, VerticalConfig};
//!
//! let db = Database::from_transactions(
//!     8,
//!     [vec![1u32, 4, 5], vec![1, 2], vec![3, 4, 5], vec![1, 2, 4, 5]],
//! )
//! .unwrap();
//! let (itemsets, stats) = mine_eclat_parallel(&db, 2, None, &VerticalConfig::default(), 2);
//! assert!(itemsets.contains(&(vec![1, 4, 5], 2)));
//! assert_eq!(stats.n_threads, 2);
//! ```

pub mod config;
pub mod driver;
pub mod hybrid;
pub mod parallel;
pub mod tidset;

pub use arm_faults::{CancelToken, FaultKind, FaultPlan, MiningError, RunControl};
pub use config::{TidBackend, VerticalConfig};
pub use driver::{mine_vertical, mine_vertical_stats};
pub use hybrid::{mine_hybrid, try_mine_hybrid};
pub use parallel::{
    class_seeds, mine_eclat_parallel, mine_eclat_parallel_seeded, try_mine_eclat_parallel,
    TryMineOutcome,
};
pub use tidset::{
    and_words, intersect_galloping, intersect_linear, intersect_sorted, Backend, KernelStats,
    TidSet,
};
