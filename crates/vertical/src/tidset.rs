//! Tidset representations and their intersection kernels.
//!
//! A *tidset* is the set of transaction ids containing an itemset; its
//! cardinality is the itemset's support. Two physical layouts coexist:
//!
//! * [`TidSet::Sorted`] — an ascending `Vec<Tid>`. Intersection is a
//!   merge: the linear two-pointer walk (`O(|a| + |b|)`), or galloping
//!   (exponential + binary search, `O(|small| · log |large|)`) which wins
//!   when the operands' lengths are very different.
//! * [`TidSet::Bitmap`] — one bit per transaction packed into `u64`
//!   words. Intersection is a word-wise AND with a fused `count_ones`
//!   popcount; cost is `n_txns / 64` words regardless of density, so it
//!   beats the sorted merge once the operands are denser than about one
//!   tid in 64 (the break-even ratio behind
//!   [`crate::VerticalConfig::density_threshold`]).
//!
//! The raw kernels ([`intersect_linear`], [`intersect_galloping`],
//! [`and_words`]) are exported for the criterion `intersection` bench;
//! the drivers go through [`TidSet::intersect`], which also books
//! [`KernelStats`] telemetry.

use arm_dataset::Tid;

/// Per-task kernel telemetry. Accumulated locally (no atomics on the hot
/// path) and folded into the `arm-metrics` shards by the drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Tidset intersections performed.
    pub intersections: u64,
    /// `u64` words ANDed by the bitmap kernel.
    pub words_anded: u64,
    /// Bytes of tidset storage materialized (outputs and conversions).
    pub tidset_bytes: u64,
    /// Abstract work units (merge: `|a| + |b|`; AND: words touched) —
    /// the quantity the scheduling work model weighs.
    pub work_units: u64,
}

impl KernelStats {
    /// Adds `other`'s tallies into `self`.
    pub fn merge(&mut self, other: &KernelStats) {
        self.intersections += other.intersections;
        self.words_anded += other.words_anded;
        self.tidset_bytes += other.tidset_bytes;
        self.work_units += other.work_units;
    }
}

/// Which physical layout a [`TidSet`] uses. The *resolved* form of the
/// [`crate::TidBackend`] knob (which adds an `Auto` mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Ascending tid list.
    Sorted,
    /// Packed bit-per-transaction words.
    Bitmap,
}

/// A transaction-id set in one of two physical representations.
///
/// All members of one equivalence class share a representation, so
/// [`TidSet::intersect`] never sees mixed operands (it panics if it
/// does — that would be a driver bug, not an input condition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TidSet {
    /// Ascending list of transaction ids.
    Sorted(Vec<Tid>),
    /// Dense bitmap over the transaction space plus its cached popcount.
    Bitmap {
        /// Bit `t` of `words[t / 64]` is set iff transaction `t` is in
        /// the set. All bitmaps of one run share the same word count.
        words: Vec<u64>,
        /// Number of set bits (the support), cached at construction.
        count: u32,
    },
}

impl TidSet {
    /// The set's cardinality — the itemset's support.
    pub fn support(&self) -> u32 {
        match self {
            TidSet::Sorted(tids) => tids.len() as u32,
            TidSet::Bitmap { count, .. } => *count,
        }
    }

    /// Bytes of backing storage (4 per tid, 8 per bitmap word).
    pub fn bytes(&self) -> u64 {
        match self {
            TidSet::Sorted(tids) => 4 * tids.len() as u64,
            TidSet::Bitmap { words, .. } => 8 * words.len() as u64,
        }
    }

    /// Which layout this set uses.
    pub fn backend(&self) -> Backend {
        match self {
            TidSet::Sorted(_) => Backend::Sorted,
            TidSet::Bitmap { .. } => Backend::Bitmap,
        }
    }

    /// Converts to a bitmap over `n_words` words (no-op copy if already
    /// a bitmap).
    pub fn to_bitmap(&self, n_words: usize) -> TidSet {
        match self {
            TidSet::Bitmap { words, count } => TidSet::Bitmap {
                words: words.clone(),
                count: *count,
            },
            TidSet::Sorted(tids) => {
                let mut words = vec![0u64; n_words];
                for &t in tids {
                    words[t as usize / 64] |= 1u64 << (t % 64);
                }
                TidSet::Bitmap {
                    words,
                    count: tids.len() as u32,
                }
            }
        }
    }

    /// Converts to a sorted list (no-op copy if already sorted).
    pub fn to_sorted(&self) -> TidSet {
        match self {
            TidSet::Sorted(tids) => TidSet::Sorted(tids.clone()),
            TidSet::Bitmap { words, count } => {
                let mut tids = Vec::with_capacity(*count as usize);
                for (w, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        tids.push((w as u32) * 64 + b);
                        bits &= bits - 1;
                    }
                }
                TidSet::Sorted(tids)
            }
        }
    }

    /// Intersects two same-backend sets, booking telemetry into `stats`.
    ///
    /// `galloping` selects the sorted-list merge kernel; it is ignored
    /// for bitmaps (there is only one AND kernel).
    pub fn intersect(&self, other: &TidSet, galloping: bool, stats: &mut KernelStats) -> TidSet {
        match (self, other) {
            (TidSet::Sorted(a), TidSet::Sorted(b)) => {
                TidSet::Sorted(intersect_sorted(a, b, galloping, stats))
            }
            (TidSet::Bitmap { words: a, .. }, TidSet::Bitmap { words: b, .. }) => {
                stats.intersections += 1;
                let n = a.len().min(b.len()) as u64;
                stats.words_anded += n;
                stats.work_units += n.max(1);
                let mut words = Vec::new();
                let count = and_words(a, b, &mut words);
                stats.tidset_bytes += 8 * words.len() as u64;
                TidSet::Bitmap { words, count }
            }
            _ => panic!("mixed tidset backends within one equivalence class"),
        }
    }
}

/// Sorted-slice intersection dispatching on the `galloping` knob, with
/// [`KernelStats`] bookkeeping. The slice-level entry point used where a
/// full [`TidSet`] wrapper would force a copy (hybrid transposition).
pub fn intersect_sorted(
    a: &[Tid],
    b: &[Tid],
    galloping: bool,
    stats: &mut KernelStats,
) -> Vec<Tid> {
    stats.intersections += 1;
    stats.work_units += (a.len() + b.len()).max(1) as u64;
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    if galloping {
        intersect_galloping(a, b, &mut out);
    } else {
        intersect_linear(a, b, &mut out);
    }
    stats.tidset_bytes += 4 * out.len() as u64;
    out
}

/// Two-pointer merge intersection of ascending slices into `out`.
pub fn intersect_linear(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping (exponential + binary search) intersection of ascending
/// slices into `out`. Walks the smaller operand, galloping through the
/// larger one — `O(|small| · log(|large| / |small|))`, a large win when
/// a short deep-prefix tidset meets a long singleton tidset.
pub fn intersect_galloping(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            break;
        }
        // Exponential probe: double the window until it passes `x` (or
        // the end), then binary-search the first element `>= x` in it.
        let mut offset = 1usize;
        while base + offset < large.len() && large[base + offset] < x {
            offset <<= 1;
        }
        let hi = (base + offset + 1).min(large.len());
        let idx = base + large[base..hi].partition_point(|&y| y < x);
        if idx < large.len() && large[idx] == x {
            out.push(x);
            base = idx + 1;
        } else {
            base = idx;
        }
    }
}

/// Word-wise AND of two equal-universe bitmaps into `out`, returning the
/// popcount of the result. The popcount folds into the AND loop so the
/// support needs no second pass.
pub fn and_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u32 {
    out.clear();
    out.reserve(a.len().min(b.len()));
    let mut count = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let w = x & y;
        count += w.count_ones();
        out.push(w);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
        let mut out = Vec::new();
        intersect_linear(a, b, &mut out);
        out
    }

    fn gal(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
        let mut out = Vec::new();
        intersect_galloping(a, b, &mut out);
        out
    }

    #[test]
    fn kernels_agree_on_basics() {
        let cases: &[(&[Tid], &[Tid], &[Tid])] = &[
            (&[1, 3, 5], &[2, 3, 5, 7], &[3, 5]),
            (&[], &[1], &[]),
            (&[1, 2], &[3, 4], &[]),
            (&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]),
            (&[0], &[0], &[0]),
            (&[7], &[0, 1, 2, 3, 4, 5, 6, 7, 8], &[7]),
        ];
        for (a, b, want) in cases {
            assert_eq!(lin(a, b), *want);
            assert_eq!(gal(a, b), *want, "gallop a={a:?} b={b:?}");
            assert_eq!(gal(b, a), *want, "gallop swapped");
        }
    }

    #[test]
    fn galloping_matches_linear_randomized() {
        // Deterministic LCG — no rand dependency needed here.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for _ in 0..200 {
            let la = next(40) as usize;
            let lb = next(400) as usize;
            let mut a: Vec<Tid> = (0..la).map(|_| next(500)).collect();
            let mut b: Vec<Tid> = (0..lb).map(|_| next(500)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(gal(&a, &b), lin(&a, &b));
        }
    }

    #[test]
    fn and_words_counts_ones() {
        let a = vec![0b1011u64, u64::MAX];
        let b = vec![0b0110u64, 1u64 << 63];
        let mut out = Vec::new();
        let c = and_words(&a, &b, &mut out);
        assert_eq!(out, vec![0b0010, 1u64 << 63]);
        assert_eq!(c, 2);
    }

    #[test]
    fn bitmap_roundtrip_preserves_set() {
        let tids: Vec<Tid> = vec![0, 1, 63, 64, 65, 200, 511];
        let s = TidSet::Sorted(tids.clone());
        let bm = s.to_bitmap(8);
        assert_eq!(bm.support(), tids.len() as u32);
        assert_eq!(bm.backend(), Backend::Bitmap);
        assert_eq!(bm.to_sorted(), s);
        assert_eq!(bm.bytes(), 64);
        assert_eq!(s.bytes(), 4 * tids.len() as u64);
    }

    #[test]
    fn intersect_consistent_across_backends() {
        let a = TidSet::Sorted(vec![1, 3, 5, 64, 100]);
        let b = TidSet::Sorted(vec![3, 64, 99, 100]);
        let mut st = KernelStats::default();
        let sorted = a.intersect(&b, true, &mut st);
        assert_eq!(sorted, TidSet::Sorted(vec![3, 64, 100]));
        let bm = a.to_bitmap(2).intersect(&b.to_bitmap(2), false, &mut st);
        assert_eq!(bm.support(), 3);
        assert_eq!(bm.to_sorted(), sorted);
        assert_eq!(st.intersections, 2);
        assert_eq!(st.words_anded, 2);
        assert!(st.tidset_bytes > 0 && st.work_units > 0);
    }

    #[test]
    #[should_panic(expected = "mixed tidset backends")]
    fn mixed_backends_panic() {
        let a = TidSet::Sorted(vec![1]);
        let b = a.to_bitmap(1);
        a.intersect(&b, false, &mut KernelStats::default());
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = KernelStats {
            intersections: 1,
            words_anded: 2,
            tidset_bytes: 3,
            work_units: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.intersections, 2);
        assert_eq!(a.work_units, 8);
    }
}
