//! Property tests for the skewed transaction-length mode: the Zipf rank
//! sampler honors its configured support and mass, and `LengthDist::ZipfTail`
//! databases actually grow the long tail that the scheduling benchmarks
//! rely on.

use arm_quest::dist::zipf;
use arm_quest::{generate, LengthDist, QuestParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn harmonic(exponent: f64, max: u32) -> f64 {
    (1..=max).map(|k| (k as f64).powf(-exponent)).sum()
}

proptest! {
    /// Every sample lands in `[1, max_factor]`, whatever the parameters.
    #[test]
    fn zipf_stays_in_support(
        seed in any::<u64>(),
        exponent in 0.5f64..3.0,
        max in 1u32..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let k = zipf(&mut rng, exponent, max);
            prop_assert!((1..=max).contains(&k), "k={k} out of [1, {max}]");
        }
    }

    /// The sampler honors the configured tail: rank 1 carries mass
    /// `1/H_s(max)` and the empirical mean matches the analytic mean, so
    /// the distribution is neither uniform nor degenerate.
    #[test]
    fn zipf_honors_configured_mass(
        seed in any::<u64>(),
        exponent in 1.2f64..2.2,
        max in 4u32..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000u32;
        let mut ones = 0u32;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = zipf(&mut rng, exponent, max);
            sum += k as u64;
            ones += (k == 1) as u32;
        }
        let h = harmonic(exponent, max);
        let p1 = ones as f64 / n as f64;
        prop_assert!(
            (p1 - 1.0 / h).abs() < 0.03,
            "P(1)={p1:.4}, expected {:.4}", 1.0 / h
        );
        let mean = sum as f64 / n as f64;
        let expected: f64 =
            (1..=max).map(|k| k as f64 * (k as f64).powf(-exponent)).sum::<f64>() / h;
        prop_assert!(
            (mean - expected).abs() < 0.15 * expected + 0.05,
            "mean={mean:.3}, expected {expected:.3}"
        );
    }

    /// A ZipfTail database keeps the same item universe and determinism
    /// guarantees as the Poisson one.
    #[test]
    fn skewed_generation_is_deterministic_and_well_formed(seed in any::<u64>()) {
        let params = QuestParams::paper(10, 4, 300)
            .with_seed(seed)
            .with_length_dist(LengthDist::ZipfTail { exponent: 1.6, max_factor: 8 });
        let a = generate(&params);
        let b = generate(&params);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 300);
        for t in &a {
            prop_assert!(!t.is_empty());
            prop_assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

fn max_len(db: &arm_dataset::Database) -> usize {
    db.into_iter().map(|t| t.len()).max().unwrap_or(0)
}

/// The headline property: with a Zipf tail the longest transactions dwarf
/// the mean in a way Poisson lengths never do. Checked over several seeds
/// so it reflects the distribution, not one lucky draw.
#[test]
fn zipf_tail_produces_long_tail() {
    for seed in [3u64, 17, 99] {
        let uniform = generate(&QuestParams::paper(10, 4, 800).with_seed(seed));
        let skewed = generate(
            &QuestParams::paper(10, 4, 800)
                .with_seed(seed)
                .with_length_dist(LengthDist::ZipfTail {
                    exponent: 1.6,
                    max_factor: 16,
                }),
        );
        let (u_max, u_avg) = (max_len(&uniform) as f64, uniform.avg_len());
        let (s_max, s_avg) = (max_len(&skewed) as f64, skewed.avg_len());
        // The tail raises the mean somewhat and the max a lot.
        assert!(
            s_avg > u_avg,
            "seed {seed}: skewed mean {s_avg} <= uniform {u_avg}"
        );
        assert!(
            s_max / s_avg > 2.0 * (u_max / u_avg),
            "seed {seed}: skew ratio {:.2} not ≫ uniform ratio {:.2}",
            s_max / s_avg,
            u_max / u_avg
        );
    }
}
