//! IBM Quest-style synthetic basket-data generator.
//!
//! Re-implements the procedure of Agrawal & Srikant (VLDB'94, §2.4.3),
//! which all datasets of the paper's Table 2 come from:
//!
//! 1. Draw `L` *maximal potentially frequent itemsets* ("patterns") with
//!    Poisson-distributed sizes of mean `I`; successive patterns share an
//!    exponentially distributed fraction of items with their predecessor
//!    (mean = correlation level). Each pattern carries an exponentially
//!    distributed weight (normalized to a probability) and a normally
//!    distributed *corruption level*.
//! 2. Build `D` transactions with Poisson-distributed sizes of mean `T`
//!    by repeatedly sampling patterns by weight, dropping items from the
//!    pattern while `uniform(0,1) < corruption`, and inserting the
//!    remainder. An overflowing pattern is kept anyway in half the cases
//!    and deferred to the next transaction otherwise.
//!
//! The paper fixes `N = 1000` items and `L = 2000` patterns.

pub mod dist;

use arm_dataset::{Database, DatabaseBuilder, Item};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How target transaction lengths are drawn in step 2.
///
/// The paper's Table 2 datasets all use [`LengthDist::Poisson`] (the AS'94
/// procedure). [`LengthDist::ZipfTail`] layers a Zipf-distributed length
/// multiplier on top, producing the long-tailed ("a few giant baskets")
/// databases used to stress dynamic scheduling: a static equal-transaction
/// split then assigns some threads several-fold more counting work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDist {
    /// AS'94 default: `Poisson(T)`, clamped to at least 1.
    Poisson,
    /// `Poisson(T).max(1) * m` with `m ~ Zipf(exponent)` on
    /// `[1, max_factor]`. Most transactions keep `m = 1` (probability
    /// `1/H_s(max_factor)`), a heavy tail grows up to `max_factor`×.
    ZipfTail {
        /// Zipf exponent `s` (larger ⇒ thinner tail; 1.5–2 is typical).
        exponent: f64,
        /// Largest length multiplier in the support.
        max_factor: u32,
    },
}

/// Parameters of a synthetic dataset (`T{T}.I{I}.D{D}` in paper naming).
#[derive(Debug, Clone, PartialEq)]
pub struct QuestParams {
    /// Number of transactions (`D`).
    pub n_txns: usize,
    /// Average transaction size (`T`).
    pub avg_txn_len: f64,
    /// Average maximal-pattern size (`I`).
    pub avg_pattern_len: f64,
    /// Number of maximal potentially frequent itemsets (`L`, paper: 2000).
    pub n_patterns: usize,
    /// Number of items (`N`, paper: 1000).
    pub n_items: u32,
    /// Mean fraction of items shared with the previous pattern.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level (AS'94: variance 0.1).
    pub corruption_sd: f64,
    /// RNG seed (generation is fully deterministic given the params).
    pub seed: u64,
    /// Transaction-length distribution (paper datasets: `Poisson`).
    pub length_dist: LengthDist,
}

impl QuestParams {
    /// A `T{t}.I{i}.D{d}` dataset with the paper's fixed `N`/`L` and
    /// AS'94 default correlation/corruption.
    pub fn paper(t: u32, i: u32, d: usize) -> Self {
        QuestParams {
            n_txns: d,
            avg_txn_len: t as f64,
            avg_pattern_len: i as f64,
            n_patterns: 2000,
            n_items: 1000,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed: 0x5EED_0000 | ((t as u64) << 8) | i as u64,
            length_dist: LengthDist::Poisson,
        }
    }

    /// Canonical paper-style name.
    pub fn name(&self) -> String {
        arm_dataset::DatasetStats::dataset_name(
            self.avg_txn_len.round() as usize,
            self.avg_pattern_len.round() as usize,
            self.n_txns,
        )
    }

    /// Scales the transaction count (used to run paper datasets at
    /// laptop-friendly sizes while keeping their structure).
    pub fn with_txns(mut self, d: usize) -> Self {
        self.n_txns = d;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the transaction-length distribution.
    pub fn with_length_dist(mut self, dist: LengthDist) -> Self {
        self.length_dist = dist;
        self
    }
}

/// The pattern pool of step 1.
#[derive(Debug)]
struct PatternPool {
    patterns: Vec<Vec<Item>>,
    /// Cumulative weights for O(log L) weighted sampling.
    cumulative: Vec<f64>,
    corruption: Vec<f64>,
}

impl PatternPool {
    fn generate(p: &QuestParams, rng: &mut StdRng) -> Self {
        let mut patterns = Vec::with_capacity(p.n_patterns);
        let mut weights = Vec::with_capacity(p.n_patterns);
        let mut corruption = Vec::with_capacity(p.n_patterns);
        for idx in 0..p.n_patterns {
            let size =
                (dist::poisson(rng, p.avg_pattern_len).max(1) as usize).min(p.n_items as usize);
            let mut items: Vec<Item> = Vec::with_capacity(size);
            // Fraction of items carried over from the previous pattern.
            if idx > 0 {
                let prev: &Vec<Item> = &patterns[idx - 1];
                let frac = dist::exponential(rng, p.correlation).min(1.0);
                let carry = ((frac * size as f64).round() as usize).min(prev.len());
                // Reservoir-style distinct draw from the previous pattern.
                let mut pool = prev.clone();
                for _ in 0..carry {
                    let j = rng.gen_range(0..pool.len());
                    items.push(pool.swap_remove(j));
                }
            }
            // Fill the rest with random fresh items.
            while items.len() < size {
                let candidate = rng.gen_range(0..p.n_items);
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            items.sort_unstable();
            patterns.push(items);
            weights.push(dist::exponential(rng, 1.0));
            corruption.push(dist::normal(rng, p.corruption_mean, p.corruption_sd).clamp(0.0, 0.99));
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        PatternPool {
            patterns,
            cumulative,
            corruption,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.patterns.len() - 1),
        }
    }
}

/// Generates a database from `params`.
pub fn generate(params: &QuestParams) -> Database {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let pool = PatternPool::generate(params, &mut rng);
    let mut b = DatabaseBuilder::with_capacity(
        params.n_items,
        params.n_txns,
        params.avg_txn_len.ceil() as usize,
    );

    let mut deferred: Option<Vec<Item>> = None;
    let mut txn: Vec<Item> = Vec::new();
    for _ in 0..params.n_txns {
        let base = dist::poisson(&mut rng, params.avg_txn_len).max(1) as usize;
        let target = match params.length_dist {
            LengthDist::Poisson => base,
            LengthDist::ZipfTail {
                exponent,
                max_factor,
            } => base * dist::zipf(&mut rng, exponent, max_factor) as usize,
        };
        txn.clear();
        // A pattern deferred from the previous transaction goes in first.
        if let Some(items) = deferred.take() {
            txn.extend(items);
        }
        // Cap the number of pattern draws so pathological corruption
        // levels can't spin forever.
        let mut attempts = 0usize;
        while txn.len() < target && attempts < 4 * target + 8 {
            attempts += 1;
            let pi = pool.sample(&mut rng);
            let mut items = pool.patterns[pi].clone();
            // Corrupt: drop random items while the coin keeps landing
            // below the pattern's corruption level.
            let c = pool.corruption[pi];
            while !items.is_empty() && rng.gen::<f64>() < c {
                let j = rng.gen_range(0..items.len());
                items.swap_remove(j);
            }
            if items.is_empty() {
                continue;
            }
            if txn.len() + items.len() > target && !txn.is_empty() {
                if rng.gen_bool(0.5) {
                    txn.extend(items); // put it in anyway
                } else {
                    deferred = Some(items); // move to the next transaction
                }
                break;
            }
            txn.extend(items);
        }
        b.push(txn.iter().copied())
            .expect("generator items are always < n_items");
    }
    b.finish()
}

/// The eight Table 2 parameter sets, at full paper scale.
pub fn table2_params() -> Vec<QuestParams> {
    vec![
        QuestParams::paper(5, 2, 100_000),
        QuestParams::paper(10, 4, 100_000),
        QuestParams::paper(15, 4, 100_000),
        QuestParams::paper(20, 6, 100_000),
        QuestParams::paper(10, 6, 400_000),
        QuestParams::paper(10, 6, 800_000),
        QuestParams::paper(10, 6, 1_600_000),
        QuestParams::paper(10, 6, 3_200_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(t: u32, i: u32, d: usize) -> Database {
        generate(&QuestParams::paper(t, i, d))
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small(10, 4, 500);
        let b = small(10, 4, 500);
        assert_eq!(a, b);
        let c = generate(&QuestParams::paper(10, 4, 500).with_seed(99));
        assert_ne!(a, c);
    }

    #[test]
    fn transaction_count_and_range() {
        let db = small(10, 4, 1000);
        assert_eq!(db.len(), 1000);
        assert_eq!(db.n_items(), 1000);
        for t in &db {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(t.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn average_length_tracks_t() {
        for t in [5u32, 10, 20] {
            let db = small(t, 4, 2000);
            let avg = db.avg_len();
            // Sort/dedup and the overflow rule bias the mean a little; the
            // paper's labels are nominal means, so allow a generous band.
            assert!(
                avg > 0.6 * t as f64 && avg < 1.5 * t as f64,
                "T={t} avg={avg}"
            );
        }
    }

    #[test]
    fn has_correlated_structure() {
        // A pattern-based database must contain frequent 2-itemsets well
        // above the independence baseline: with N=1000 items and T=10,
        // independent items would give pair supports around
        // D * (10/1000)^2 = 0.0001*D; patterns push some pairs far higher.
        let db = small(10, 4, 2000);
        let mut counts = std::collections::HashMap::<(u32, u32), u32>::new();
        for t in &db {
            for (ai, &a) in t.iter().enumerate() {
                for &b in &t[ai + 1..] {
                    *counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let best = counts.values().copied().max().unwrap_or(0);
        assert!(
            best as f64 > 0.005 * db.len() as f64,
            "max pair support {best} too low for pattern data"
        );
    }

    #[test]
    fn pattern_pool_is_well_formed() {
        let p = QuestParams::paper(10, 4, 10);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let pool = PatternPool::generate(&p, &mut rng);
        assert_eq!(pool.patterns.len(), 2000);
        for pat in &pool.patterns {
            assert!(!pat.is_empty());
            assert!(pat.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(pool.corruption.iter().all(|&c| (0.0..1.0).contains(&c)));
        let last = *pool.cumulative.last().unwrap();
        assert!((last - 1.0).abs() < 1e-9);
        // Weighted sampling hits a spread of patterns.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(pool.sample(&mut rng));
        }
        assert!(seen.len() > 200);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(QuestParams::paper(10, 6, 800_000).name(), "T10.I6.D800K");
        assert_eq!(table2_params().len(), 8);
        assert_eq!(table2_params()[0].name(), "T5.I2.D100K");
    }
}
