//! Minimal distribution samplers for the Quest generator.
//!
//! `rand_distr` is deliberately not a dependency; the three distributions
//! the AS'94 procedure needs (Poisson, Normal, Exponential) are small and
//! implemented here: Knuth's product method for Poisson (the means involved
//! are 2–20), Box–Muller for Normal, and inverse transform for Exponential.

use rand::Rng;

/// Samples `Poisson(lambda)` via Knuth's product method. Suitable for the
/// small means (≤ ~30) used by transaction and pattern sizes.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda > 0.0 && lambda < 100.0, "poisson mean out of range");
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples `Exponential(mean)` by inverse transform.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0);
    let u: f64 = rng.gen::<f64>();
    // 1 - u ∈ (0, 1]; ln is finite.
    -(1.0 - u).ln() * mean
}

/// Samples a Zipf-distributed rank on `[1, max]`: `P(k) ∝ k^-exponent`,
/// by inverse transform over the finite support. Used for the skewed
/// transaction-length mode, where the rank multiplies a base length —
/// small means are amortized by callers caching nothing here because
/// `max` stays tiny (≤ a few dozen).
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, exponent: f64, max: u32) -> u32 {
    assert!(max >= 1, "zipf needs non-empty support");
    assert!(exponent > 0.0, "zipf exponent must be positive");
    let total: f64 = (1..=max).map(|k| (k as f64).powf(-exponent)).sum();
    let mut u = rng.gen::<f64>() * total;
    for k in 1..max {
        u -= (k as f64).powf(-exponent);
        if u < 0.0 {
            return k;
        }
    }
    max
}

/// Samples `Normal(mean, sd)` via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0);
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng();
        for lambda in [2.0f64, 5.0, 10.0, 20.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 0.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        // Always non-negative.
        assert!((0..1000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 0.5, 0.3)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        assert!((var.sqrt() - 0.3).abs() < 0.01, "sd={}", var.sqrt());
    }

    #[test]
    fn zipf_is_monotone_and_in_range() {
        let mut r = rng();
        let max = 16;
        let mut hist = vec![0u32; max as usize + 1];
        for _ in 0..40_000 {
            let k = zipf(&mut r, 1.6, max);
            assert!((1..=max).contains(&k));
            hist[k as usize] += 1;
        }
        // Rank 1 dominates and frequencies decay (compare rank 1 vs 4 vs 16
        // rather than adjacent ranks, which sampling noise could flip).
        assert!(hist[1] > hist[4] && hist[4] > hist[16]);
        // Mass of rank 1 ≈ 1 / H_{1.6}(16).
        let h: f64 = (1..=max).map(|k| (k as f64).powf(-1.6)).sum();
        let p1 = hist[1] as f64 / 40_000.0;
        assert!((p1 - 1.0 / h).abs() < 0.02, "p1={p1} expected {}", 1.0 / h);
    }

    #[test]
    fn zipf_degenerate_support_is_constant() {
        let mut r = rng();
        assert!((0..100).all(|_| zipf(&mut r, 2.0, 1) == 1));
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<u64> = {
            let mut r = rng();
            (0..50).map(|_| poisson(&mut r, 7.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..50).map(|_| poisson(&mut r, 7.0)).collect()
        };
        assert_eq!(a, b);
    }
}
