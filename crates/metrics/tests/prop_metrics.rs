//! Property tests for the report layer: a `RunReport` populated with
//! arbitrary (bounded) numbers and adversarial strings must survive the
//! JSON round trip exactly, and the serializer must be a fixed point of
//! the parser (parse → pretty → parse is the identity).

use arm_metrics::{
    json::parse, reports_from_json, reports_to_json, FaultReport, IterReport, Json, LockReport,
    MemReport, PhaseReport, RunReport, SchedReport, ThreadReport, VerticalReport,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strings that stress every escaping path: quotes, backslashes, control
/// characters, multi-byte UTF-8, and astral-plane code points (which the
/// parser must reassemble from surrogate pairs).
const PALETTE: &[&str] = &[
    "",
    "a",
    "T10.I4.D100K",
    "\"",
    "\\",
    "\n",
    "\t",
    "\r",
    "\u{1}",
    "\u{1f}",
    "é",
    "→",
    "𝄞",
    "quote\"inside",
    "back\\slash",
    "mixed \"\\\n\t 𝄞",
];

fn compose(idxs: &[usize]) -> String {
    idxs.iter().map(|&i| PALETTE[i]).collect()
}

/// The integer ceiling the report serializer represents exactly (values
/// above saturate to `i64::MAX` by design).
const MAX_INT: u64 = i64::MAX as u64;

/// The canonical phase names plus a hostile one.
const NAMES: &[&str] = &[
    "f1", "candgen", "build", "freeze", "count", "extract", "\"\\",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any bounded-value report round-trips through its JSON text exactly.
    #[test]
    fn run_report_roundtrips_exactly(
        algo in vec(0usize..PALETTE.len(), 0..6),
        dataset in vec(0usize..PALETTE.len(), 0..6),
        scalars in (0usize..64, 0u32..1_000_000, any::<bool>()),
        floats in vec(0.0f64..1.0e9, 3),
        phases in vec((0usize..NAMES.len(), 1u32..16, vec(0u64..MAX_INT, 0..5)), 0..6),
        threads in vec(vec(0u64..MAX_INT, 15), 0..5),
        lock_mem in vec(0u64..MAX_INT, 19),
        iters in vec((1u32..16, vec(0u64..MAX_INT, 4)), 0..6),
        phase_floats in vec(0.0f64..1.0e6, 12),
    ) {
        let (n_threads, min_support, metrics_enabled) = scalars;
        let report = RunReport {
            algorithm: compose(&algo),
            dataset: compose(&dataset),
            n_threads,
            min_support,
            metrics_enabled,
            wall_seconds: floats[0],
            simulated_speedup: floats[1],
            simulated_seconds: floats[2],
            phases: phases
                .iter()
                .enumerate()
                .map(|(i, (name, k, work))| PhaseReport {
                    name: NAMES[*name].to_string(),
                    k: *k,
                    wall_seconds: phase_floats[2 * i],
                    thread_work: work.clone(),
                    imbalance: phase_floats[2 * i + 1],
                })
                .collect(),
            threads: threads
                .iter()
                .enumerate()
                .map(|(id, v)| ThreadReport {
                    id,
                    work_units: v[0],
                    txns: v[1],
                    node_visits: v[2],
                    leaf_scans: v[3],
                    subset_checks: v[4],
                    hits: v[5],
                    lock_acquires: v[6],
                    lock_contended: v[7],
                    lock_wait_ns: v[8],
                    ctr_increments: v[9],
                    ctr_cas_retries: v[10],
                    chunks_executed: v[11],
                    chunks_stolen: v[12],
                    steal_attempts: v[13],
                    cursor_cas_retries: v[14],
                })
                .collect(),
            locks: LockReport {
                leaf_acquires: lock_mem[0],
                leaf_contended: lock_mem[1],
                leaf_wait_ns: lock_mem[2],
                ctr_increments: lock_mem[3],
                ctr_cas_retries: lock_mem[4],
            },
            sched: SchedReport {
                chunks_executed: lock_mem[10],
                chunks_stolen: lock_mem[11],
                steal_attempts: lock_mem[12],
                cursor_cas_retries: lock_mem[13],
            },
            vertical: VerticalReport {
                intersections: lock_mem[14],
                words_anded: lock_mem[15],
                tidset_bytes: lock_mem[16],
            },
            faults: FaultReport {
                cancel_checks: lock_mem[17],
                faults_injected: lock_mem[18],
            },
            mem: MemReport {
                tree_bytes: lock_mem[5],
                tree_nodes: lock_mem[6],
                scratch_allocs: lock_mem[7],
                scratch_retargets: lock_mem[8],
                scratch_stamp_bytes: lock_mem[9],
            },
            iters: iters
                .iter()
                .map(|(k, v)| IterReport {
                    k: *k,
                    n_candidates: v[0],
                    n_frequent: v[1],
                    tree_bytes: v[2],
                    tree_nodes: v[3],
                })
                .collect(),
        };

        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        prop_assert_eq!(&back, &report);

        // Multi-report documents round-trip too, preserving order.
        let doc = reports_to_json(&[report.clone(), back]);
        let reports = reports_from_json(&doc).unwrap();
        prop_assert_eq!(reports.len(), 2);
        prop_assert_eq!(&reports[0], &report);
        prop_assert_eq!(&reports[1], &report);

        // The serializer is a fixed point of the parser: parsing and
        // re-serializing reproduces the bytes exactly.
        let value = parse(&text).unwrap();
        prop_assert_eq!(value.pretty(), text);
    }

    /// Arbitrary strings (from the adversarial palette) survive the
    /// string escape/unescape path exactly.
    #[test]
    fn json_strings_roundtrip(idxs in vec(0usize..PALETTE.len(), 0..20)) {
        let s = compose(&idxs);
        let v = Json::Str(s.clone());
        let text = v.pretty();
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Integers and finite floats keep their exact values and their
    /// Int/Float distinction through the round trip.
    #[test]
    fn json_numbers_roundtrip(i in any::<i64>(), f in -1.0e12f64..1.0e12) {
        let v = Json::Arr(vec![Json::Int(i), Json::Float(f)]);
        let back = parse(&v.pretty()).unwrap();
        prop_assert_eq!(back, v);
    }
}
