//! `RunReport` — the one machine-readable schema every benchmark binary
//! emits (JSON and CSV), covering phase timers, per-thread work, lock
//! telemetry, and memory counters.
//!
//! The schema maps onto the paper's evaluation (see DESIGN.md §6):
//! `phases` carries the per-phase timing breakdowns behind Figs. 8–10,
//! `threads`/`phases[].imbalance` the per-processor work distributions,
//! `locks` the §3.1.4 contention discussion, and `iters` the hash-tree
//! profile of Figs. 6–7.

use crate::json::{parse, Json};
use crate::registry::{Counter, MetricsSnapshot, PhaseRecord};

/// Schema tag written into every report file.
pub const SCHEMA: &str = "arm-run-report/v1";

/// One phase entry of a report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    /// Phase label (`"f1"`, `"candgen"`, `"build"`, `"freeze"`, `"count"`,
    /// `"extract"`, ...).
    pub name: String,
    /// Iteration `k` (0 for run-global phases).
    pub k: u32,
    /// Wall time in seconds.
    pub wall_seconds: f64,
    /// Per-thread work units; empty for serial phases.
    pub thread_work: Vec<u64>,
    /// `max/mean` of `thread_work` (1.0 = balanced or serial).
    pub imbalance: f64,
}

/// Per-thread section: counting work plus this thread's telemetry shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadReport {
    /// Worker index.
    pub id: usize,
    /// Counting work units (`WorkMeter::work_units`), all iterations.
    pub work_units: u64,
    /// Transactions scanned.
    pub txns: u64,
    /// Hash-tree nodes visited.
    pub node_visits: u64,
    /// Leaves scanned.
    pub leaf_scans: u64,
    /// Candidate subset checks.
    pub subset_checks: u64,
    /// Successful candidate hits.
    pub hits: u64,
    /// Per-leaf build-lock acquisitions.
    pub lock_acquires: u64,
    /// Contended build-lock acquisitions.
    pub lock_contended: u64,
    /// Nanoseconds waited on contended build locks.
    pub lock_wait_ns: u64,
    /// Shared support-counter increments.
    pub ctr_increments: u64,
    /// CAS retries across those increments.
    pub ctr_cas_retries: u64,
    /// Scheduler chunks this thread claimed and executed.
    pub chunks_executed: u64,
    /// Chunks migrated onto this thread by a successful steal.
    pub chunks_stolen: u64,
    /// Steal probes this thread issued, successful or not.
    pub steal_attempts: u64,
    /// Failed CAS iterations on the shared scheduling cursor.
    pub cursor_cas_retries: u64,
}

/// Lock/contention totals across threads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LockReport {
    /// Total per-leaf build-lock acquisitions.
    pub leaf_acquires: u64,
    /// Acquisitions that found the lock held.
    pub leaf_contended: u64,
    /// Total nanoseconds waited on held leaf locks.
    pub leaf_wait_ns: u64,
    /// Total shared support-counter increments.
    pub ctr_increments: u64,
    /// Total CAS retries on shared counters.
    pub ctr_cas_retries: u64,
}

/// Scheduling totals across threads (arm-exec chunk pools).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedReport {
    /// Total chunks claimed and executed.
    pub chunks_executed: u64,
    /// Chunks that migrated between threads via stealing.
    pub chunks_stolen: u64,
    /// Steal probes issued, successful or not.
    pub steal_attempts: u64,
    /// Failed CAS iterations on shared scheduling cursors.
    pub cursor_cas_retries: u64,
}

/// Vertical-mining totals across threads (arm-vertical tidset kernels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerticalReport {
    /// Tidset intersections performed.
    pub intersections: u64,
    /// `u64` words ANDed by the bitmap kernel.
    pub words_anded: u64,
    /// Bytes of tidset storage materialized (lists and bitmaps).
    pub tidset_bytes: u64,
}

/// Fault-layer totals across threads (arm-faults cancellation and
/// injection instrumentation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Cancellation checkpoints passed at chunk claims.
    pub cancel_checks: u64,
    /// Fault-plan injections that fired (nonzero only under chaos tests).
    pub faults_injected: u64,
}

/// Allocator/scratch/tree memory totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemReport {
    /// Bytes of frozen hash trees summed over iterations.
    pub tree_bytes: u64,
    /// Reachable frozen-tree nodes summed over iterations.
    pub tree_nodes: u64,
    /// Counting scratches allocated fresh.
    pub scratch_allocs: u64,
    /// Pooled scratch re-targets (allocation-free reuse).
    pub scratch_retargets: u64,
    /// Stamp-table bytes sized across iterations.
    pub scratch_stamp_bytes: u64,
}

/// One per-iteration entry (mirrors `IterStats`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterReport {
    /// Iteration `k`.
    pub k: u32,
    /// `|C_k|`.
    pub n_candidates: u64,
    /// `|F_k|`.
    pub n_frequent: u64,
    /// Bytes of the frozen hash tree.
    pub tree_bytes: u64,
    /// Reachable tree nodes.
    pub tree_nodes: u64,
}

/// The full machine-readable record of one mining run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Algorithm label (`"ccpd"`, `"pccd"`, `"sequential"`).
    pub algorithm: String,
    /// Dataset label, e.g. `"T10.I4.D100K"`.
    pub dataset: String,
    /// Worker thread count.
    pub n_threads: usize,
    /// Resolved absolute minimum support.
    pub min_support: u32,
    /// Whether the producing build had per-event telemetry compiled in.
    pub metrics_enabled: bool,
    /// End-to-end wall time in seconds.
    pub wall_seconds: f64,
    /// Work-model speedup (see `ParallelRunStats::simulated_speedup`).
    pub simulated_speedup: f64,
    /// Work-model run time on dedicated cores, in seconds.
    pub simulated_seconds: f64,
    /// Phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Per-thread work and telemetry.
    pub threads: Vec<ThreadReport>,
    /// Lock/contention totals.
    pub locks: LockReport,
    /// Scheduling totals.
    pub sched: SchedReport,
    /// Vertical-mining kernel totals.
    pub vertical: VerticalReport,
    /// Fault-layer totals.
    pub faults: FaultReport,
    /// Memory totals.
    pub mem: MemReport,
    /// Per-iteration tree/candidate profile.
    pub iters: Vec<IterReport>,
}

/// Header row matching [`RunReport::phase_csv_rows`].
pub const PHASE_CSV_HEADER: &str =
    "algorithm,dataset,n_threads,phase,k,wall_seconds,imbalance,total_work";

/// Header row matching [`RunReport::summary_csv_row`].
pub const SUMMARY_CSV_HEADER: &str = "algorithm,dataset,n_threads,min_support,wall_seconds,\
simulated_speedup,leaf_lock_acquires,leaf_lock_contended,leaf_lock_wait_ns,ctr_increments,\
ctr_cas_retries,tree_bytes";

impl RunReport {
    /// An empty report carrying only identity fields.
    pub fn new(algorithm: &str, dataset: &str, n_threads: usize, min_support: u32) -> Self {
        RunReport {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            n_threads,
            min_support,
            metrics_enabled: false,
            ..RunReport::default()
        }
    }

    /// Fills `phases` from recorded [`PhaseRecord`]s.
    pub fn set_phases(&mut self, records: &[PhaseRecord]) {
        self.phases = records
            .iter()
            .map(|r| PhaseReport {
                name: r.name.to_string(),
                k: r.k,
                wall_seconds: r.wall.as_secs_f64(),
                thread_work: r.thread_work.clone().unwrap_or_default(),
                imbalance: r.imbalance(),
            })
            .collect();
    }

    /// Merges a registry snapshot: sets `metrics_enabled`, fills each
    /// thread's telemetry fields (growing `threads` if needed), and the
    /// `locks`/`mem` totals. Work fields in `threads` are left untouched.
    pub fn apply_snapshot(&mut self, snap: &MetricsSnapshot) {
        self.metrics_enabled = snap.enabled;
        while self.threads.len() < snap.per_thread.len() {
            self.threads.push(ThreadReport {
                id: self.threads.len(),
                ..ThreadReport::default()
            });
        }
        for (t, row) in self.threads.iter_mut().enumerate() {
            row.lock_acquires = snap.get(t, Counter::LeafLockAcquires);
            row.lock_contended = snap.get(t, Counter::LeafLockContended);
            row.lock_wait_ns = snap.get(t, Counter::LeafLockWaitNs);
            row.ctr_increments = snap.get(t, Counter::CtrIncrements);
            row.ctr_cas_retries = snap.get(t, Counter::CtrCasRetries);
            row.chunks_executed = snap.get(t, Counter::ChunksExecuted);
            row.chunks_stolen = snap.get(t, Counter::ChunksStolen);
            row.steal_attempts = snap.get(t, Counter::StealAttempts);
            row.cursor_cas_retries = snap.get(t, Counter::CursorCasRetries);
        }
        self.locks = LockReport {
            leaf_acquires: snap.total(Counter::LeafLockAcquires),
            leaf_contended: snap.total(Counter::LeafLockContended),
            leaf_wait_ns: snap.total(Counter::LeafLockWaitNs),
            ctr_increments: snap.total(Counter::CtrIncrements),
            ctr_cas_retries: snap.total(Counter::CtrCasRetries),
        };
        self.sched = SchedReport {
            chunks_executed: snap.total(Counter::ChunksExecuted),
            chunks_stolen: snap.total(Counter::ChunksStolen),
            steal_attempts: snap.total(Counter::StealAttempts),
            cursor_cas_retries: snap.total(Counter::CursorCasRetries),
        };
        self.vertical = VerticalReport {
            intersections: snap.total(Counter::TidsetIntersections),
            words_anded: snap.total(Counter::TidsetWordsAnded),
            tidset_bytes: snap.total(Counter::TidsetBytes),
        };
        self.faults = FaultReport {
            cancel_checks: snap.total(Counter::CancelChecks),
            faults_injected: snap.total(Counter::FaultsInjected),
        };
        self.mem = MemReport {
            tree_bytes: snap.total(Counter::TreeBytes),
            tree_nodes: snap.total(Counter::TreeNodes),
            scratch_allocs: snap.total(Counter::ScratchAllocs),
            scratch_retargets: snap.total(Counter::ScratchRetargets),
            scratch_stamp_bytes: snap.total(Counter::ScratchStampBytes),
        };
    }

    /// The report as a [`Json`] value.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("algorithm".into(), Json::Str(self.algorithm.clone())),
            ("dataset".into(), Json::Str(self.dataset.clone())),
            ("n_threads".into(), int(self.n_threads as u64)),
            ("min_support".into(), int(self.min_support as u64)),
            ("metrics_enabled".into(), Json::Bool(self.metrics_enabled)),
            ("wall_seconds".into(), Json::Float(self.wall_seconds)),
            (
                "simulated_speedup".into(),
                Json::Float(self.simulated_speedup),
            ),
            (
                "simulated_seconds".into(),
                Json::Float(self.simulated_seconds),
            ),
            (
                "phases".into(),
                Json::Arr(self.phases.iter().map(phase_value).collect()),
            ),
            (
                "threads".into(),
                Json::Arr(self.threads.iter().map(thread_value).collect()),
            ),
            (
                "locks".into(),
                Json::Obj(vec![
                    ("leaf_acquires".into(), int(self.locks.leaf_acquires)),
                    ("leaf_contended".into(), int(self.locks.leaf_contended)),
                    ("leaf_wait_ns".into(), int(self.locks.leaf_wait_ns)),
                    ("ctr_increments".into(), int(self.locks.ctr_increments)),
                    ("ctr_cas_retries".into(), int(self.locks.ctr_cas_retries)),
                ]),
            ),
            (
                "sched".into(),
                Json::Obj(vec![
                    ("chunks_executed".into(), int(self.sched.chunks_executed)),
                    ("chunks_stolen".into(), int(self.sched.chunks_stolen)),
                    ("steal_attempts".into(), int(self.sched.steal_attempts)),
                    (
                        "cursor_cas_retries".into(),
                        int(self.sched.cursor_cas_retries),
                    ),
                ]),
            ),
            (
                "vertical".into(),
                Json::Obj(vec![
                    ("intersections".into(), int(self.vertical.intersections)),
                    ("words_anded".into(), int(self.vertical.words_anded)),
                    ("tidset_bytes".into(), int(self.vertical.tidset_bytes)),
                ]),
            ),
            (
                "faults".into(),
                Json::Obj(vec![
                    ("cancel_checks".into(), int(self.faults.cancel_checks)),
                    ("faults_injected".into(), int(self.faults.faults_injected)),
                ]),
            ),
            (
                "mem".into(),
                Json::Obj(vec![
                    ("tree_bytes".into(), int(self.mem.tree_bytes)),
                    ("tree_nodes".into(), int(self.mem.tree_nodes)),
                    ("scratch_allocs".into(), int(self.mem.scratch_allocs)),
                    ("scratch_retargets".into(), int(self.mem.scratch_retargets)),
                    (
                        "scratch_stamp_bytes".into(),
                        int(self.mem.scratch_stamp_bytes),
                    ),
                ]),
            ),
            (
                "iters".into(),
                Json::Arr(self.iters.iter().map(iter_value).collect()),
            ),
        ])
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Reconstructs a report from a [`Json`] value.
    pub fn from_value(v: &Json) -> Result<RunReport, String> {
        let mut r = RunReport {
            algorithm: str_field(v, "algorithm")?,
            dataset: str_field(v, "dataset")?,
            n_threads: u64_field(v, "n_threads")? as usize,
            min_support: u64_field(v, "min_support")? as u32,
            metrics_enabled: v
                .get("metrics_enabled")
                .and_then(Json::as_bool)
                .ok_or("missing metrics_enabled")?,
            wall_seconds: f64_field(v, "wall_seconds")?,
            simulated_speedup: f64_field(v, "simulated_speedup")?,
            simulated_seconds: f64_field(v, "simulated_seconds")?,
            ..RunReport::default()
        };
        for p in arr_field(v, "phases")? {
            r.phases.push(PhaseReport {
                name: str_field(p, "name")?,
                k: u64_field(p, "k")? as u32,
                wall_seconds: f64_field(p, "wall_seconds")?,
                thread_work: u64_arr_field(p, "thread_work")?,
                imbalance: f64_field(p, "imbalance")?,
            });
        }
        for t in arr_field(v, "threads")? {
            r.threads.push(ThreadReport {
                id: u64_field(t, "id")? as usize,
                work_units: u64_field(t, "work_units")?,
                txns: u64_field(t, "txns")?,
                node_visits: u64_field(t, "node_visits")?,
                leaf_scans: u64_field(t, "leaf_scans")?,
                subset_checks: u64_field(t, "subset_checks")?,
                hits: u64_field(t, "hits")?,
                lock_acquires: u64_field(t, "lock_acquires")?,
                lock_contended: u64_field(t, "lock_contended")?,
                lock_wait_ns: u64_field(t, "lock_wait_ns")?,
                ctr_increments: u64_field(t, "ctr_increments")?,
                ctr_cas_retries: u64_field(t, "ctr_cas_retries")?,
                // Scheduling fields arrived after v1 reports were first
                // written; absent means zero so older files still parse.
                chunks_executed: u64_field_or(t, "chunks_executed", 0)?,
                chunks_stolen: u64_field_or(t, "chunks_stolen", 0)?,
                steal_attempts: u64_field_or(t, "steal_attempts", 0)?,
                cursor_cas_retries: u64_field_or(t, "cursor_cas_retries", 0)?,
            });
        }
        let l = v.get("locks").ok_or("missing locks")?;
        r.locks = LockReport {
            leaf_acquires: u64_field(l, "leaf_acquires")?,
            leaf_contended: u64_field(l, "leaf_contended")?,
            leaf_wait_ns: u64_field(l, "leaf_wait_ns")?,
            ctr_increments: u64_field(l, "ctr_increments")?,
            ctr_cas_retries: u64_field(l, "ctr_cas_retries")?,
        };
        // Like the per-thread chunk fields, "sched" postdates the first v1
        // reports: a missing section (or missing keys) reads as zeros.
        if let Some(s) = v.get("sched") {
            r.sched = SchedReport {
                chunks_executed: u64_field_or(s, "chunks_executed", 0)?,
                chunks_stolen: u64_field_or(s, "chunks_stolen", 0)?,
                steal_attempts: u64_field_or(s, "steal_attempts", 0)?,
                cursor_cas_retries: u64_field_or(s, "cursor_cas_retries", 0)?,
            };
        }
        // "vertical" postdates "sched": absent reads as zeros too.
        if let Some(s) = v.get("vertical") {
            r.vertical = VerticalReport {
                intersections: u64_field_or(s, "intersections", 0)?,
                words_anded: u64_field_or(s, "words_anded", 0)?,
                tidset_bytes: u64_field_or(s, "tidset_bytes", 0)?,
            };
        }
        // "faults" postdates "vertical": absent reads as zeros too.
        if let Some(s) = v.get("faults") {
            r.faults = FaultReport {
                cancel_checks: u64_field_or(s, "cancel_checks", 0)?,
                faults_injected: u64_field_or(s, "faults_injected", 0)?,
            };
        }
        let m = v.get("mem").ok_or("missing mem")?;
        r.mem = MemReport {
            tree_bytes: u64_field(m, "tree_bytes")?,
            tree_nodes: u64_field(m, "tree_nodes")?,
            scratch_allocs: u64_field(m, "scratch_allocs")?,
            scratch_retargets: u64_field(m, "scratch_retargets")?,
            scratch_stamp_bytes: u64_field(m, "scratch_stamp_bytes")?,
        };
        for it in arr_field(v, "iters")? {
            r.iters.push(IterReport {
                k: u64_field(it, "k")? as u32,
                n_candidates: u64_field(it, "n_candidates")?,
                n_frequent: u64_field(it, "n_frequent")?,
                tree_bytes: u64_field(it, "tree_bytes")?,
                tree_nodes: u64_field(it, "tree_nodes")?,
            });
        }
        Ok(r)
    }

    /// Parses a single-report JSON document.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        RunReport::from_value(&parse(text)?)
    }

    /// One CSV row per phase ([`PHASE_CSV_HEADER`]).
    pub fn phase_csv_rows(&self) -> Vec<String> {
        self.phases
            .iter()
            .map(|p| {
                format!(
                    "{},{},{},{},{},{:.6},{:.4},{}",
                    self.algorithm,
                    self.dataset,
                    self.n_threads,
                    p.name,
                    p.k,
                    p.wall_seconds,
                    p.imbalance,
                    p.thread_work.iter().sum::<u64>()
                )
            })
            .collect()
    }

    /// One CSV row summarizing the run ([`SUMMARY_CSV_HEADER`]).
    pub fn summary_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.6},{:.4},{},{},{},{},{},{}",
            self.algorithm,
            self.dataset,
            self.n_threads,
            self.min_support,
            self.wall_seconds,
            self.simulated_speedup,
            self.locks.leaf_acquires,
            self.locks.leaf_contended,
            self.locks.leaf_wait_ns,
            self.locks.ctr_increments,
            self.locks.ctr_cas_retries,
            self.mem.tree_bytes
        )
    }
}

/// Serializes a report collection as `{"schema": ..., "reports": [...]}`.
pub fn reports_to_json(reports: &[RunReport]) -> String {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "reports".into(),
            Json::Arr(reports.iter().map(RunReport::to_value).collect()),
        ),
    ])
    .pretty()
}

/// Parses a report collection: the wrapped `{"schema", "reports"}` form,
/// a bare array, or a single report object.
pub fn reports_from_json(text: &str) -> Result<Vec<RunReport>, String> {
    let v = parse(text)?;
    let items: Vec<&Json> = if let Some(reports) = v.get("reports") {
        reports
            .as_arr()
            .ok_or("reports must be an array")?
            .iter()
            .collect()
    } else if let Some(arr) = v.as_arr() {
        arr.iter().collect()
    } else {
        vec![&v]
    };
    items.into_iter().map(RunReport::from_value).collect()
}

fn int(v: u64) -> Json {
    // Counters fit comfortably in i64; saturate rather than wrap if a
    // pathological value ever appears.
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn phase_value(p: &PhaseReport) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(p.name.clone())),
        ("k".into(), int(p.k as u64)),
        ("wall_seconds".into(), Json::Float(p.wall_seconds)),
        (
            "thread_work".into(),
            Json::Arr(p.thread_work.iter().map(|&w| int(w)).collect()),
        ),
        ("imbalance".into(), Json::Float(p.imbalance)),
    ])
}

fn thread_value(t: &ThreadReport) -> Json {
    Json::Obj(vec![
        ("id".into(), int(t.id as u64)),
        ("work_units".into(), int(t.work_units)),
        ("txns".into(), int(t.txns)),
        ("node_visits".into(), int(t.node_visits)),
        ("leaf_scans".into(), int(t.leaf_scans)),
        ("subset_checks".into(), int(t.subset_checks)),
        ("hits".into(), int(t.hits)),
        ("lock_acquires".into(), int(t.lock_acquires)),
        ("lock_contended".into(), int(t.lock_contended)),
        ("lock_wait_ns".into(), int(t.lock_wait_ns)),
        ("ctr_increments".into(), int(t.ctr_increments)),
        ("ctr_cas_retries".into(), int(t.ctr_cas_retries)),
        ("chunks_executed".into(), int(t.chunks_executed)),
        ("chunks_stolen".into(), int(t.chunks_stolen)),
        ("steal_attempts".into(), int(t.steal_attempts)),
        ("cursor_cas_retries".into(), int(t.cursor_cas_retries)),
    ])
}

fn iter_value(it: &IterReport) -> Json {
    Json::Obj(vec![
        ("k".into(), int(it.k as u64)),
        ("n_candidates".into(), int(it.n_candidates)),
        ("n_frequent".into(), int(it.n_frequent)),
        ("tree_bytes".into(), int(it.tree_bytes)),
        ("tree_nodes".into(), int(it.tree_nodes)),
    ])
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key}"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key}"))
}

/// Like [`u64_field`] but an absent key yields `default` (a present
/// non-integer value is still an error). Used for fields added after the
/// first v1 reports were written.
fn u64_field_or(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_u64().ok_or_else(|| format!("non-integer field {key}")),
    }
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field {key}"))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key}"))
}

fn u64_arr_field(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    arr_field(v, key)?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("non-integer in {key}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> RunReport {
        let mut r = RunReport::new("ccpd", "T10.I4.D100K", 2, 50);
        r.wall_seconds = 1.25;
        r.simulated_speedup = 1.8;
        r.simulated_seconds = 0.7;
        r.set_phases(&[
            PhaseRecord {
                name: "count",
                k: 2,
                wall: Duration::from_millis(100),
                thread_work: Some(vec![90, 10]),
            },
            PhaseRecord {
                name: "freeze",
                k: 2,
                wall: Duration::from_millis(5),
                thread_work: None,
            },
        ]);
        r.threads = vec![
            ThreadReport {
                id: 0,
                work_units: 90,
                txns: 40,
                hits: 7,
                ..ThreadReport::default()
            },
            ThreadReport {
                id: 1,
                work_units: 10,
                txns: 10,
                ..ThreadReport::default()
            },
        ];
        r.locks.leaf_acquires = 123;
        r.locks.leaf_contended = 4;
        r.threads[0].chunks_executed = 5;
        r.threads[1].chunks_stolen = 2;
        r.sched = SchedReport {
            chunks_executed: 9,
            chunks_stolen: 2,
            steal_attempts: 6,
            cursor_cas_retries: 1,
        };
        r.vertical = VerticalReport {
            intersections: 17,
            words_anded: 340,
            tidset_bytes: 2048,
        };
        r.faults = FaultReport {
            cancel_checks: 42,
            faults_injected: 1,
        };
        r.mem.tree_bytes = 4096;
        r.iters = vec![IterReport {
            k: 2,
            n_candidates: 6,
            n_frequent: 4,
            tree_bytes: 4096,
            tree_nodes: 3,
        }];
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let text = r.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn collection_round_trips_and_carries_schema() {
        let rs = vec![sample(), RunReport::new("pccd", "x", 1, 1)];
        let text = reports_to_json(&rs);
        assert!(text.contains(SCHEMA));
        assert_eq!(reports_from_json(&text).unwrap(), rs);
        // Single-object and bare-array forms parse too.
        assert_eq!(
            reports_from_json(&rs[0].to_json()).unwrap(),
            vec![rs[0].clone()]
        );
    }

    #[test]
    fn set_phases_computes_imbalance() {
        let r = sample();
        assert_eq!(r.phases[0].thread_work, vec![90, 10]);
        assert!((r.phases[0].imbalance - 1.8).abs() < 1e-12);
        assert!(r.phases[1].thread_work.is_empty());
        assert_eq!(r.phases[1].imbalance, 1.0);
    }

    #[test]
    fn apply_snapshot_fills_threads_and_totals() {
        let mut snap = MetricsSnapshot {
            enabled: true,
            per_thread: vec![[0; crate::registry::N_COUNTERS]; 2],
        };
        snap.per_thread[0][Counter::LeafLockAcquires as usize] = 10;
        snap.per_thread[1][Counter::LeafLockAcquires as usize] = 20;
        snap.per_thread[1][Counter::LeafLockContended as usize] = 3;
        snap.per_thread[0][Counter::TreeBytes as usize] = 100;
        let mut r = RunReport::new("ccpd", "d", 2, 1);
        r.apply_snapshot(&snap);
        assert!(r.metrics_enabled);
        assert_eq!(r.threads.len(), 2);
        assert_eq!(r.threads[0].lock_acquires, 10);
        assert_eq!(r.threads[1].lock_acquires, 20);
        assert_eq!(r.locks.leaf_acquires, 30);
        assert_eq!(r.locks.leaf_contended, 3);
        assert_eq!(r.mem.tree_bytes, 100);
        // Pre-existing work fields survive.
        let mut r2 = sample();
        r2.apply_snapshot(&snap);
        assert_eq!(r2.threads[0].work_units, 90);
        assert_eq!(r2.threads[0].lock_acquires, 10);
    }

    #[test]
    fn csv_rows_match_headers() {
        let r = sample();
        let header_cols = PHASE_CSV_HEADER.split(',').count();
        for row in r.phase_csv_rows() {
            assert_eq!(row.split(',').count(), header_cols, "{row}");
        }
        assert_eq!(
            r.summary_csv_row().split(',').count(),
            SUMMARY_CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn parses_reports_predating_sched_fields() {
        // A v1 report written before the scheduling layer existed: thread
        // objects lack the chunk/steal fields and there is no "sched"
        // section. It must parse with those values defaulting to zero.
        let mut old = sample();
        old.threads.iter_mut().for_each(|t| {
            t.chunks_executed = 0;
            t.chunks_stolen = 0;
            t.steal_attempts = 0;
            t.cursor_cas_retries = 0;
        });
        old.sched = SchedReport::default();
        fn strip(v: Json) -> Json {
            const NEW_KEYS: &[&str] = &[
                "sched",
                "chunks_executed",
                "chunks_stolen",
                "steal_attempts",
                "cursor_cas_retries",
            ];
            match v {
                Json::Obj(fields) => Json::Obj(
                    fields
                        .into_iter()
                        .filter(|(k, _)| !NEW_KEYS.contains(&k.as_str()))
                        .map(|(k, x)| (k, strip(x)))
                        .collect(),
                ),
                Json::Arr(items) => Json::Arr(items.into_iter().map(strip).collect()),
                other => other,
            }
        }
        let text = strip(old.to_value()).pretty();
        assert!(!text.contains("chunks_executed") && !text.contains("sched"));
        let back = RunReport::from_json(&text).expect("old report must parse");
        assert_eq!(back, old);
    }

    #[test]
    fn parses_reports_predating_vertical_section() {
        // Reports written before the vertical-mining subsystem have no
        // "vertical" section; it must read back as all-zero totals.
        let mut old = sample();
        old.vertical = VerticalReport::default();
        let stripped: Vec<(String, Json)> = match old.to_value() {
            Json::Obj(fields) => fields
                .into_iter()
                .filter(|(k, _)| k != "vertical")
                .collect(),
            _ => unreachable!(),
        };
        let text = Json::Obj(stripped).pretty();
        assert!(!text.contains("vertical"));
        let back = RunReport::from_json(&text).expect("pre-vertical report must parse");
        assert_eq!(back, old);
    }

    #[test]
    fn parses_reports_predating_faults_section() {
        // Reports written before the fault layer have no "faults" section;
        // it must read back as all-zero totals.
        let mut old = sample();
        old.faults = FaultReport::default();
        let stripped: Vec<(String, Json)> = match old.to_value() {
            Json::Obj(fields) => fields.into_iter().filter(|(k, _)| k != "faults").collect(),
            _ => unreachable!(),
        };
        let text = Json::Obj(stripped).pretty();
        assert!(!text.contains("cancel_checks"));
        let back = RunReport::from_json(&text).expect("pre-faults report must parse");
        assert_eq!(back, old);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("[1, 2]").is_err());
        assert!(reports_from_json("{\"reports\": 5}").is_err());
    }
}
