//! The metrics registry: one cache-line-aligned shard of event counters
//! per worker thread, plus a run-global phase-span recorder.
//!
//! Recording is lock-cheap by construction: every hot-path event lands in
//! the calling thread's own shard with a relaxed atomic add (or, with the
//! `enabled` feature off, in a no-op on a zero-sized shard). The only
//! lock in the registry guards the phase list, which is touched once per
//! phase by the coordinating thread, never by workers.

use arm_mem::CacheAligned;
use parking_lot::Mutex;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Identifiers of the per-thread event counters.
///
/// The discriminant doubles as the shard slot index; `name()` is the
/// field name used in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Per-leaf build-lock acquisitions (§3.1.4 tree formation).
    LeafLockAcquires = 0,
    /// Acquisitions that found the leaf lock held by another thread.
    LeafLockContended = 1,
    /// Nanoseconds spent waiting on contended leaf locks.
    LeafLockWaitNs = 2,
    /// Atomic increments applied to shared (striped) support counters.
    CtrIncrements = 3,
    /// CAS retries those increments needed (direct contention measure).
    CtrCasRetries = 4,
    /// Counting-scratch structures allocated from scratch.
    ScratchAllocs = 5,
    /// Counting-scratch re-targets (pooled reuse instead of allocation).
    ScratchRetargets = 6,
    /// Bytes of stamp tables sized across all iterations.
    ScratchStampBytes = 7,
    /// Bytes of frozen hash trees across all iterations.
    TreeBytes = 8,
    /// Reachable nodes of frozen hash trees across all iterations.
    TreeNodes = 9,
    /// Scheduler chunks this thread claimed and executed (arm-exec).
    ChunksExecuted = 10,
    /// Chunks migrated onto this thread by a successful steal.
    ChunksStolen = 11,
    /// Steal probes this thread issued, successful or not.
    StealAttempts = 12,
    /// Failed CAS iterations on the shared scheduling cursor.
    CursorCasRetries = 13,
    /// Tidset intersections performed by the vertical miner (arm-vertical).
    TidsetIntersections = 14,
    /// `u64` words ANDed by the bitmap intersection kernel.
    TidsetWordsAnded = 15,
    /// Bytes of tidset storage materialized (lists and bitmaps).
    TidsetBytes = 16,
    /// Cancellation checkpoints passed at chunk claims (arm-faults).
    CancelChecks = 17,
    /// Fault-plan injections that fired during the run (arm-faults).
    FaultsInjected = 18,
}

/// Number of distinct counters (shard slot count).
pub const N_COUNTERS: usize = 19;

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::LeafLockAcquires,
        Counter::LeafLockContended,
        Counter::LeafLockWaitNs,
        Counter::CtrIncrements,
        Counter::CtrCasRetries,
        Counter::ScratchAllocs,
        Counter::ScratchRetargets,
        Counter::ScratchStampBytes,
        Counter::TreeBytes,
        Counter::TreeNodes,
        Counter::ChunksExecuted,
        Counter::ChunksStolen,
        Counter::StealAttempts,
        Counter::CursorCasRetries,
        Counter::TidsetIntersections,
        Counter::TidsetWordsAnded,
        Counter::TidsetBytes,
        Counter::CancelChecks,
        Counter::FaultsInjected,
    ];

    /// The report field name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::LeafLockAcquires => "leaf_lock_acquires",
            Counter::LeafLockContended => "leaf_lock_contended",
            Counter::LeafLockWaitNs => "leaf_lock_wait_ns",
            Counter::CtrIncrements => "ctr_increments",
            Counter::CtrCasRetries => "ctr_cas_retries",
            Counter::ScratchAllocs => "scratch_allocs",
            Counter::ScratchRetargets => "scratch_retargets",
            Counter::ScratchStampBytes => "scratch_stamp_bytes",
            Counter::TreeBytes => "tree_bytes",
            Counter::TreeNodes => "tree_nodes",
            Counter::ChunksExecuted => "chunks_executed",
            Counter::ChunksStolen => "chunks_stolen",
            Counter::StealAttempts => "steal_attempts",
            Counter::CursorCasRetries => "cursor_cas_retries",
            Counter::TidsetIntersections => "tidset_intersections",
            Counter::TidsetWordsAnded => "tidset_words_anded",
            Counter::TidsetBytes => "tidset_bytes",
            Counter::CancelChecks => "cancel_checks",
            Counter::FaultsInjected => "faults_injected",
        }
    }
}

/// One thread's counter shard. With the `enabled` feature off this is a
/// zero-sized type and every method compiles to nothing.
#[derive(Debug, Default)]
pub struct Shard {
    #[cfg(feature = "enabled")]
    slots: [AtomicU64; N_COUNTERS],
}

impl Shard {
    /// Adds `v` to counter `c` (relaxed; the shard belongs to one thread).
    #[inline(always)]
    pub fn add(&self, c: Counter, v: u64) {
        #[cfg(feature = "enabled")]
        self.slots[c as usize].fetch_add(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = (c, v);
    }

    /// Increments counter `c`.
    #[inline(always)]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Reads counter `c` (0 with metrics disabled).
    pub fn get(&self, c: Counter) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.slots[c as usize].load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = c;
            0
        }
    }

    /// Acquires `m`, recording the acquisition under the leaf-lock
    /// telemetry triple: every call bumps [`Counter::LeafLockAcquires`];
    /// calls that find the lock held additionally bump
    /// [`Counter::LeafLockContended`] and accumulate their wait in
    /// [`Counter::LeafLockWaitNs`]. Disabled builds are a plain `lock()`.
    #[inline]
    pub fn lock_timed<'m, T: ?Sized>(&self, m: &'m Mutex<T>) -> parking_lot::MutexGuard<'m, T> {
        #[cfg(feature = "enabled")]
        {
            self.incr(Counter::LeafLockAcquires);
            if let Some(g) = m.try_lock() {
                return g;
            }
            self.incr(Counter::LeafLockContended);
            let t0 = Instant::now();
            let g = m.lock();
            self.add(Counter::LeafLockWaitNs, t0.elapsed().as_nanos() as u64);
            g
        }
        #[cfg(not(feature = "enabled"))]
        m.lock()
    }
}

/// One recorded phase of a mining run.
///
/// This is the record type behind `arm-parallel`'s `PhaseStat`: wall time
/// plus (for phases that ran on multiple threads) a per-thread work tally
/// in abstract units.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase label, e.g. `"count"`, `"candgen"`, `"freeze"`.
    pub name: &'static str,
    /// Iteration the phase belongs to (`k`), 0 for run-global phases.
    pub k: u32,
    /// Measured wall time of the phase.
    pub wall: Duration,
    /// Per-thread work units; `None` marks a serial phase.
    pub thread_work: Option<Vec<u64>>,
}

impl PhaseRecord {
    /// `max(work) / mean(work)` — 1.0 is perfect balance. Serial phases
    /// report 1.0.
    pub fn imbalance(&self) -> f64 {
        match &self.thread_work {
            None => 1.0,
            Some(w) => {
                let sum: u64 = w.iter().sum();
                if sum == 0 || w.is_empty() {
                    return 1.0;
                }
                let max = *w.iter().max().unwrap();
                max as f64 / (sum as f64 / w.len() as f64)
            }
        }
    }
}

/// An in-flight phase timer. Obtained from [`MetricsRegistry::phase`];
/// closing it records a [`PhaseRecord`].
#[must_use = "a span only records when finished"]
pub struct PhaseSpan<'a> {
    registry: &'a MetricsRegistry,
    name: &'static str,
    k: u32,
    start: Instant,
}

impl PhaseSpan<'_> {
    /// Ends a serial phase (no per-thread work distribution).
    pub fn finish_serial(self) {
        self.close(None);
    }

    /// Ends a parallel phase with one work tally per thread.
    pub fn finish(self, thread_work: Vec<u64>) {
        self.close(Some(thread_work));
    }

    fn close(self, thread_work: Option<Vec<u64>>) {
        self.registry.record_phase(PhaseRecord {
            name: self.name,
            k: self.k,
            wall: self.start.elapsed(),
            thread_work,
        });
    }
}

/// Per-run metrics: one aligned [`Shard`] per worker thread plus the
/// ordered phase list.
pub struct MetricsRegistry {
    shards: Box<[CacheAligned<Shard>]>,
    phases: Mutex<Vec<PhaseRecord>>,
}

impl MetricsRegistry {
    /// Creates a registry for `n_threads` workers (at least one shard).
    pub fn new(n_threads: usize) -> Self {
        MetricsRegistry {
            shards: (0..n_threads.max(1))
                .map(|_| CacheAligned::default())
                .collect(),
            phases: Mutex::new(Vec::new()),
        }
    }

    /// Whether per-event telemetry is compiled in (the `enabled` feature).
    pub const fn enabled() -> bool {
        cfg!(feature = "enabled")
    }

    /// Number of shards.
    pub fn n_threads(&self) -> usize {
        self.shards.len()
    }

    /// Thread `t`'s shard (indices wrap, so oversubscribed callers fold).
    pub fn shard(&self, t: usize) -> &Shard {
        &self.shards[t % self.shards.len()]
    }

    /// Starts a phase timer; finishing the span records the phase.
    pub fn phase(&self, name: &'static str, k: u32) -> PhaseSpan<'_> {
        PhaseSpan {
            registry: self,
            name,
            k,
            start: Instant::now(),
        }
    }

    /// Appends an externally built phase record.
    pub fn record_phase(&self, record: PhaseRecord) {
        self.phases.lock().push(record);
    }

    /// Drains the recorded phases in execution order.
    pub fn take_phases(&self) -> Vec<PhaseRecord> {
        std::mem::take(&mut *self.phases.lock())
    }

    /// Copies every shard's counters out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: Self::enabled(),
            per_thread: self
                .shards
                .iter()
                .map(|s| {
                    let mut row = [0u64; N_COUNTERS];
                    for c in Counter::ALL {
                        row[c as usize] = s.get(c);
                    }
                    row
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of every shard. `Default` is the empty (disabled)
/// snapshot, used where no registry ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Whether the producing build had per-event telemetry compiled in.
    pub enabled: bool,
    /// One counter row per thread, indexed by `Counter as usize`.
    pub per_thread: Vec<[u64; N_COUNTERS]>,
}

impl MetricsSnapshot {
    /// Thread `t`'s value of counter `c` (0 when out of range).
    pub fn get(&self, t: usize, c: Counter) -> u64 {
        self.per_thread.get(t).map_or(0, |row| row[c as usize])
    }

    /// Sum of counter `c` across threads.
    pub fn total(&self, c: Counter) -> u64 {
        self.per_thread.iter().map(|row| row[c as usize]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_per_thread_and_exact() {
        let reg = MetricsRegistry::new(4);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let reg = &reg;
                s.spawn(move || {
                    let shard = reg.shard(t);
                    for _ in 0..(t + 1) * 100 {
                        shard.incr(Counter::CtrIncrements);
                    }
                    shard.add(Counter::TreeBytes, 64);
                });
            }
        });
        let snap = reg.snapshot();
        if MetricsRegistry::enabled() {
            for t in 0..4 {
                assert_eq!(snap.get(t, Counter::CtrIncrements), (t as u64 + 1) * 100);
            }
            assert_eq!(snap.total(Counter::CtrIncrements), 1000);
            assert_eq!(snap.total(Counter::TreeBytes), 256);
            assert!(snap.enabled);
        } else {
            assert_eq!(snap.total(Counter::CtrIncrements), 0);
            assert!(!snap.enabled);
        }
    }

    #[test]
    fn shard_index_wraps() {
        let reg = MetricsRegistry::new(2);
        reg.shard(5).incr(Counter::ScratchAllocs);
        assert_eq!(
            reg.snapshot().get(1, Counter::ScratchAllocs),
            if MetricsRegistry::enabled() { 1 } else { 0 }
        );
    }

    #[test]
    fn zero_threads_still_has_a_shard() {
        let reg = MetricsRegistry::new(0);
        assert_eq!(reg.n_threads(), 1);
        reg.shard(0).incr(Counter::ScratchAllocs);
    }

    #[test]
    fn phase_spans_record_in_order() {
        let reg = MetricsRegistry::new(2);
        reg.phase("f1", 1).finish(vec![10, 20]);
        reg.phase("freeze", 2).finish_serial();
        let phases = reg.take_phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "f1");
        assert_eq!(phases[0].thread_work, Some(vec![10, 20]));
        assert_eq!(phases[1].name, "freeze");
        assert_eq!(phases[1].thread_work, None);
        assert!(reg.take_phases().is_empty(), "drained");
    }

    #[test]
    fn lock_timed_counts_uncontended_acquisition() {
        let reg = MetricsRegistry::new(1);
        let m = Mutex::new(0u32);
        for _ in 0..3 {
            *reg.shard(0).lock_timed(&m) += 1;
        }
        assert_eq!(*m.lock(), 3);
        let snap = reg.snapshot();
        if MetricsRegistry::enabled() {
            assert_eq!(snap.get(0, Counter::LeafLockAcquires), 3);
            assert_eq!(snap.get(0, Counter::LeafLockContended), 0);
        }
    }

    #[test]
    fn lock_timed_detects_contention() {
        let reg = MetricsRegistry::new(2);
        let m = Mutex::new(());
        let held = m.lock();
        std::thread::scope(|s| {
            let reg = &reg;
            let m = &m;
            s.spawn(move || {
                let _g = reg.shard(1).lock_timed(m);
            });
            // Hold long enough for the worker to hit try_lock failure.
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
        });
        let snap = reg.snapshot();
        if MetricsRegistry::enabled() {
            assert_eq!(snap.get(1, Counter::LeafLockAcquires), 1);
            assert_eq!(snap.get(1, Counter::LeafLockContended), 1);
            assert!(snap.get(1, Counter::LeafLockWaitNs) > 0);
        }
    }

    #[test]
    fn imbalance_of_records() {
        let rec = |work: Option<Vec<u64>>| PhaseRecord {
            name: "count",
            k: 2,
            wall: Duration::from_millis(10),
            thread_work: work,
        };
        assert_eq!(rec(None).imbalance(), 1.0);
        assert_eq!(rec(Some(vec![5, 5])).imbalance(), 1.0);
        assert_eq!(rec(Some(vec![0, 0])).imbalance(), 1.0);
        assert!((rec(Some(vec![90, 10])).imbalance() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_COUNTERS);
    }
}
