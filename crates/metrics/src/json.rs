//! Minimal JSON value model, serializer, and parser.
//!
//! The workspace deliberately carries no serde (see DESIGN.md §5): report
//! serialization goes through this hand-rolled module instead. Integers
//! and floats are distinct variants so `u64` counters round-trip exactly
//! and floats round-trip through Rust's shortest-representation `{:?}`
//! formatting (which is itself exact for finite `f64`).

use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order, so serializing a
/// parsed document reproduces it byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, within `i64` range.
    Int(i64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered field list).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer value as `u64`, if this is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The numeric value (either variant) as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip formatting; it
                    // always contains '.' or 'e', so the parser keeps the
                    // variant distinction.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset they occurred at.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // The scanned stretch is valid UTF-8: it came from a &str and
            // we only stopped on ASCII bytes, which never split a char.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let Some(b) = self.peek() else {
            return Err(format!("unterminated escape at byte {}", self.pos));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if !self.eat_keyword("\\u") {
                        return Err(format!("lone surrogate at byte {}", self.pos));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(format!("invalid low surrogate at byte {}", self.pos));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(format!("invalid codepoint at byte {}", self.pos)),
                }
            }
            _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        };
        let s = std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'+' | b'-' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(0.1),
            Json::Float(-1.5e300),
            Json::Float(3.0),
            Json::Str(String::new()),
            Json::Str("with \"quotes\" \\ and \n tabs\t".into()),
            Json::Str("unicode: caffè ∀x 🦀".into()),
        ] {
            assert_eq!(parse(&v.pretty()).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn int_float_variants_are_preserved() {
        // 3 and 3.0 are equal as f64 but must stay distinct values.
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(parse("3e0").unwrap(), Json::Float(3.0));
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "mixed".into(),
                Json::Arr(vec![Json::Int(1), Json::Float(2.5), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Str("v".into()))]),
            ),
        ]);
        let text = v.pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, v);
        // Serializing the parse reproduces the text exactly.
        assert_eq!(parsed.pretty(), text);
    }

    #[test]
    fn parses_external_json() {
        let v = parse("  {\"a\": [1, 2.0, \"x\\u0041\\ud83e\\udd80\"], \"b\": null}  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str().unwrap(),
            "xA🦀"
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "nul", "+5"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn accessors() {
        let v = parse("{\"i\": 7, \"f\": 1.5, \"s\": \"x\", \"b\": true}").unwrap();
        assert_eq!(v.get("i").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
