//! A telemetry wrapper around the shared support-counter array.
//!
//! CCPD's shared-counter placement policies increment one
//! [`FlatCounters`] array from every thread. [`TalliedCounters`] wraps
//! that array behind the same [`SharedCounters`] trait the counting
//! kernel already dispatches on, tallying each increment — and the CAS
//! retries it needed, the direct measure of counter contention — into the
//! calling thread's [`Shard`]. With metrics disabled it degenerates to a
//! plain delegation.

use crate::registry::{Counter, Shard};
use arm_mem::{FlatCounters, SharedCounters};

/// Shared counters + the calling thread's telemetry shard.
pub struct TalliedCounters<'a> {
    inner: &'a FlatCounters,
    shard: &'a Shard,
}

impl<'a> TalliedCounters<'a> {
    /// Wraps `inner`, attributing events to `shard`.
    pub fn new(inner: &'a FlatCounters, shard: &'a Shard) -> Self {
        TalliedCounters { inner, shard }
    }
}

impl SharedCounters for TalliedCounters<'_> {
    #[inline]
    fn increment(&self, id: u32) {
        if !cfg!(feature = "enabled") {
            self.inner.increment(id);
            return;
        }
        let retries = self.inner.increment_counting_retries(id);
        self.shard.incr(Counter::CtrIncrements);
        if retries > 0 {
            self.shard.add(Counter::CtrCasRetries, retries as u64);
        }
    }

    #[inline]
    fn get(&self, id: u32) -> u32 {
        self.inner.get(id)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn footprint_bytes(&self) -> usize {
        self.inner.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn increments_are_exact_and_tallied() {
        let reg = MetricsRegistry::new(4);
        let flat = FlatCounters::new(8);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let flat = &flat;
                let reg = &reg;
                s.spawn(move || {
                    let tallied = TalliedCounters::new(flat, reg.shard(t));
                    for i in 0..8_000u32 {
                        tallied.increment(i % 8);
                    }
                });
            }
        });
        for i in 0..8 {
            assert_eq!(flat.get(i), 4_000);
        }
        let snap = reg.snapshot();
        if MetricsRegistry::enabled() {
            assert_eq!(snap.total(Counter::CtrIncrements), 32_000);
            for t in 0..4 {
                assert_eq!(snap.get(t, Counter::CtrIncrements), 8_000);
            }
        } else {
            assert_eq!(snap.total(Counter::CtrIncrements), 0);
        }
    }

    #[test]
    fn delegates_reads() {
        let reg = MetricsRegistry::new(1);
        let flat = FlatCounters::new(3);
        let tallied = TalliedCounters::new(&flat, reg.shard(0));
        tallied.increment(1);
        assert_eq!(tallied.get(1), 1);
        assert_eq!(tallied.len(), 3);
        assert!(!tallied.is_empty());
        assert_eq!(tallied.footprint_bytes(), 12);
    }
}
