//! Run-wide observability for the mining stack (DESIGN.md §6).
//!
//! The paper's whole evaluation (§5, Figs. 6–13) rests on per-phase
//! timing breakdowns, per-processor work distributions, and
//! lock-contention measurements. This crate makes those first-class:
//!
//! * [`registry`] — [`MetricsRegistry`]: one cache-line-aligned counter
//!   shard per worker thread (relaxed adds, no cross-thread sharing),
//!   scoped [`PhaseSpan`] timers, and [`MetricsSnapshot`] extraction;
//! * [`tally`] — [`TalliedCounters`], the shared-support-counter wrapper
//!   that measures striped-counter contention (increments + CAS retries);
//! * [`report`] — [`RunReport`], the one JSON/CSV schema every benchmark
//!   binary emits;
//! * [`json`] — the minimal serializer/parser behind it (the workspace
//!   deliberately has no serde).
//!
//! Everything behaves with the `enabled` cargo feature off: phase timers,
//! snapshots, and reports still work (telemetry fields read as zero), and
//! every per-event recording call compiles to a no-op on a zero-sized
//! shard, so hot kernels pay nothing.
//!
//! ```
//! use arm_metrics::{Counter, MetricsRegistry, RunReport};
//!
//! let reg = MetricsRegistry::new(2);
//! let span = reg.phase("count", 2);
//! reg.shard(0).incr(Counter::CtrIncrements);
//! span.finish(vec![40, 60]);
//!
//! let mut report = RunReport::new("ccpd", "T10.I4.D100K", 2, 25);
//! report.set_phases(&reg.take_phases());
//! report.apply_snapshot(&reg.snapshot());
//! let text = report.to_json();
//! assert_eq!(RunReport::from_json(&text).unwrap(), report);
//! ```

pub mod json;
pub mod registry;
pub mod report;
pub mod tally;

pub use json::Json;
pub use registry::{
    Counter, MetricsRegistry, MetricsSnapshot, PhaseRecord, PhaseSpan, Shard, N_COUNTERS,
};
pub use report::{
    reports_from_json, reports_to_json, FaultReport, IterReport, LockReport, MemReport,
    PhaseReport, RunReport, SchedReport, ThreadReport, VerticalReport, PHASE_CSV_HEADER, SCHEMA,
    SUMMARY_CSV_HEADER,
};
pub use tally::TalliedCounters;
