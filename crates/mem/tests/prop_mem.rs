//! Property tests for the memory substrate: the concurrent arena against
//! a `Vec` model, word stores against a map model, and counter schemes
//! against plain addition.

use arm_mem::counters::{reduce, LocalCounters};
use arm_mem::{
    ContiguousBuilder, FlatCounters, PaddedCounters, ScatterBuilder, SharedCounters, StableVec,
    WordStore, WordStoreBuilder,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// StableVec behaves exactly like Vec for push/get/iter.
    #[test]
    fn stable_vec_models_vec(values in vec(any::<u64>(), 0..300)) {
        let sv = StableVec::new();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(sv.push(v), i);
        }
        prop_assert_eq!(sv.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(*sv.index(i), v);
        }
        prop_assert_eq!(sv.get(values.len()), None);
        let collected: Vec<u64> = sv.iter().copied().collect();
        prop_assert_eq!(collected, values);
    }

    /// Both word-store backends implement the same (block, word) map.
    #[test]
    fn word_stores_agree(
        blocks in vec(vec(any::<u32>(), 1..12), 1..40),
        probes in vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..50),
    ) {
        let mut cb = ContiguousBuilder::new();
        let mut sb = ScatterBuilder::new();
        let mut handles = Vec::new();
        for b in &blocks {
            let hc = cb.alloc(b.len() as u32);
            let hs = sb.alloc(b.len() as u32);
            for (i, &w) in b.iter().enumerate() {
                cb.set(hc, i as u32, w);
                sb.set(hs, i as u32, w);
            }
            handles.push((hc, hs));
        }
        let cs = cb.finish();
        let ss = sb.finish();
        prop_assert_eq!(cs.total_words(), ss.total_words());
        for (bi, wi) in probes {
            let b = bi.index(blocks.len());
            let w = wi.index(blocks[b].len()) as u32;
            let (hc, hs) = handles[b];
            prop_assert_eq!(cs.load(hc, w), blocks[b][w as usize]);
            prop_assert_eq!(ss.load(hs, w), blocks[b][w as usize]);
        }
    }

    /// Counter schemes all implement plain addition.
    #[test]
    fn counters_model_addition(increments in vec(0u32..16, 0..400)) {
        let n = 16usize;
        let mut model = vec![0u32; n];
        let flat = FlatCounters::new(n);
        let padded = PaddedCounters::new(n);
        let mut local = LocalCounters::new(n);
        for &id in &increments {
            model[id as usize] += 1;
            flat.increment(id);
            padded.increment(id);
            local.increment(id);
        }
        for id in 0..n as u32 {
            prop_assert_eq!(flat.get(id), model[id as usize]);
            prop_assert_eq!(padded.get(id), model[id as usize]);
            prop_assert_eq!(local.get(id), model[id as usize]);
        }
        prop_assert_eq!(reduce(&[local]), model);
    }

    /// Splitting increments across per-thread arrays and reducing equals
    /// a single shared array.
    #[test]
    fn reduction_equals_shared(
        increments in vec((0u32..8, 0usize..4), 0..300),
    ) {
        let n = 8usize;
        let shared = FlatCounters::new(n);
        let mut locals = vec![LocalCounters::new(n); 4];
        for &(id, t) in &increments {
            shared.increment(id);
            locals[t].increment(id);
        }
        prop_assert_eq!(reduce(&locals), shared.snapshot());
    }
}
