//! An append-only, chunked arena with lock-free reads and stable addresses.
//!
//! The parallel hash-tree build (§3.1.4 of the paper) creates nodes while
//! other threads are descending through existing nodes. `Vec<T>` cannot be
//! used for this (growth moves elements); a lock around every read would
//! serialize the build. [`StableVec`] stores elements in geometrically
//! growing chunks that are never moved or freed until drop, so:
//!
//! * `get`/indexed reads are lock-free (`Acquire` load of the length);
//! * `push` takes a short internal lock (node creation is rare compared to
//!   node traversal, so this is off the hot path);
//! * references returned by `get` stay valid for the arena's lifetime.
//!
//! # Safety model
//!
//! All `unsafe` is confined to this module. Invariants:
//!
//! 1. `len` is only increased, and only *after* the slot at `len` has been
//!    fully initialized (`Release` store; readers `Acquire`-load `len`).
//! 2. A chunk pointer is published (`Release` store to `chunks[c]`) before
//!    any index inside it becomes visible through `len`.
//! 3. Slots `< len` are never written again, so `&T` handed to readers can
//!    never alias a mutation.
//! 4. Chunks are deallocated only in `Drop`, which requires `&mut self`.

use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Base (first-chunk) capacity. Chunk `c` holds `BASE << c` elements, so 26
/// chunks cover `BASE * (2^26 - 1)` ≈ 4.3e9 elements.
const BASE_LOG2: u32 = 6;
const BASE: usize = 1 << BASE_LOG2;
const CHUNKS: usize = 26;

/// Append-only concurrent arena. See module docs.
pub struct StableVec<T> {
    chunks: [AtomicPtr<MaybeUninit<T>>; CHUNKS],
    len: AtomicUsize,
    push_lock: Mutex<()>,
}

// SAFETY: `StableVec` hands out `&T` across threads and moves `T` in via
// `push`, so both `Send` and `Sync` on `T` are required; with them, the
// publication protocol above makes the container safe to share.
unsafe impl<T: Send + Sync> Send for StableVec<T> {}
unsafe impl<T: Send + Sync> Sync for StableVec<T> {}

/// Maps a global index to `(chunk, offset, chunk_capacity)`.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    // Chunk c spans indices [BASE*(2^c - 1), BASE*(2^(c+1) - 1)).
    let adjusted = (index >> BASE_LOG2) + 1;
    let c = (usize::BITS - 1 - adjusted.leading_zeros()) as usize;
    let chunk_start = BASE * ((1 << c) - 1);
    (c, index - chunk_start)
}

#[inline]
fn chunk_cap(c: usize) -> usize {
    BASE << c
}

impl<T> StableVec<T> {
    /// Creates an empty arena. No allocation happens until the first push.
    pub fn new() -> Self {
        StableVec {
            chunks: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            len: AtomicUsize::new(0),
            push_lock: Mutex::new(()),
        }
    }

    /// Number of initialized elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no elements have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value`, returning its index. Pushes are serialized by an
    /// internal lock; reads are never blocked.
    pub fn push(&self, value: T) -> usize {
        let _guard = self.push_lock.lock().expect("StableVec push lock poisoned");
        let i = self.len.load(Ordering::Relaxed);
        let (c, off) = locate(i);
        assert!(c < CHUNKS, "StableVec capacity exhausted");
        let mut chunk = self.chunks[c].load(Ordering::Relaxed);
        if chunk.is_null() {
            let boxed: Box<[MaybeUninit<T>]> =
                (0..chunk_cap(c)).map(|_| MaybeUninit::uninit()).collect();
            chunk = Box::into_raw(boxed) as *mut MaybeUninit<T>;
            // Publish the chunk before the new length becomes visible.
            self.chunks[c].store(chunk, Ordering::Release);
        }
        // SAFETY: slot `off` is within the chunk (invariant of `locate`) and
        // has never been initialized (len has never exceeded `i`).
        unsafe {
            (*chunk.add(off)).write(value);
        }
        // Release pairs with the Acquire in `len()`/`get()`: the slot write
        // happens-before any reader that observes `len > i`.
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// Returns the element at `index`, or `None` past the end. Lock-free.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len() {
            return None;
        }
        let (c, off) = locate(index);
        let chunk = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null());
        // SAFETY: index < len implies the slot was initialized and published
        // (invariants 1-3); initialized slots are never mutated.
        unsafe { Some((*chunk.add(off)).assume_init_ref()) }
    }

    /// Indexed access that panics past the end.
    #[inline]
    #[allow(clippy::should_implement_trait)] // Index::index cannot be used: it must not take locks
    pub fn index(&self, index: usize) -> &T {
        self.get(index).expect("StableVec index out of bounds")
    }

    /// Iterates over all elements pushed before the call.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        let snapshot = self.len();
        (0..snapshot).map(move |i| self.index(i))
    }
}

impl<T> Default for StableVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for StableVec<T> {
    fn drop(&mut self) {
        let len = *self.len.get_mut();
        for c in 0..CHUNKS {
            let chunk = *self.chunks[c].get_mut();
            if chunk.is_null() {
                continue;
            }
            let cap = chunk_cap(c);
            let chunk_start = BASE * ((1 << c) - 1);
            let init = len.saturating_sub(chunk_start).min(cap);
            // SAFETY: the first `init` slots of this chunk were initialized;
            // reconstruct the box to free the allocation.
            unsafe {
                for off in 0..init {
                    (*chunk.add(off)).assume_init_drop();
                }
                drop(Box::from_raw(ptr::slice_from_raw_parts_mut(chunk, cap)));
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for StableVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn locate_is_consistent() {
        let mut expected_start = 0usize;
        for c in 0..8 {
            let cap = chunk_cap(c);
            assert_eq!(locate(expected_start), (c, 0));
            assert_eq!(locate(expected_start + cap - 1), (c, cap - 1));
            expected_start += cap;
        }
    }

    #[test]
    fn push_and_get() {
        let v = StableVec::new();
        assert!(v.is_empty());
        for i in 0..1000usize {
            assert_eq!(v.push(i * 3), i);
        }
        assert_eq!(v.len(), 1000);
        for i in 0..1000 {
            assert_eq!(*v.index(i), i * 3);
        }
        assert_eq!(v.get(1000), None);
    }

    #[test]
    fn references_stay_stable_across_growth() {
        let v = StableVec::new();
        v.push(42u64);
        let first = v.index(0) as *const u64;
        for i in 0..10_000u64 {
            v.push(i);
        }
        // The address of element 0 must not have changed.
        assert_eq!(first, v.index(0) as *const u64);
        assert_eq!(*v.index(0), 42);
    }

    #[test]
    fn iter_sees_snapshot() {
        let v = StableVec::new();
        for i in 0..100 {
            v.push(i);
        }
        let collected: Vec<i32> = v.iter().copied().collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drops_elements_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let v = StableVec::new();
            for _ in 0..500 {
                v.push(D);
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn concurrent_push_and_read() {
        let v = Arc::new(StableVec::<usize>::new());
        let stop = Arc::new(AtomicUsize::new(0));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for i in 0..2_000 {
                        v.push(i);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let v = Arc::clone(&v);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checks = 0usize;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let n = v.len();
                        if n > 0 {
                            // Every visible element must be fully initialized.
                            let x = *v.index(n - 1);
                            assert!(x < 2_000);
                            checks += 1;
                        }
                    }
                    checks
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(v.len(), 8_000);
    }

    #[test]
    fn debug_format() {
        let v = StableVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(format!("{v:?}"), "[1, 2]");
    }
}
