//! Double-ended chunk queue for work distribution.
//!
//! [`ChunkDeque`] is the storage primitive behind the stealing scheduler in
//! `arm-exec`: each worker owns one deque of pending chunks. The owner pops
//! from the *front* (the large, cache-local chunks seeded first), while
//! thieves pop from the *back* (the small tail chunks), which bounds how much
//! data migrates across threads on a steal.
//!
//! The implementation deliberately uses a `parking_lot::Mutex<VecDeque>`
//! rather than a lock-free Chase-Lev deque: chunks here are coarse (hundreds
//! of transactions each), so a deque operation happens at most a few thousand
//! times per mining pass and the uncontended `parking_lot` fast path (one
//! CAS) is already far below measurement noise. Correctness stays trivially
//! auditable, which matters because the differential suite demands
//! bit-identical counts under every interleaving.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// A mutex-protected double-ended queue of work chunks.
///
/// Front = owner end (pop next sequential chunk), back = thief end (steal
/// the smallest remaining chunk).
#[derive(Debug, Default)]
pub struct ChunkDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> ChunkDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        ChunkDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Creates an empty deque with room for `cap` chunks.
    pub fn with_capacity(cap: usize) -> Self {
        ChunkDeque {
            inner: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// Appends a chunk at the thief end. Used only while seeding.
    pub fn push_back(&self, v: T) {
        self.inner.lock().push_back(v);
    }

    /// Owner path: takes the next sequential chunk from the front.
    pub fn pop_front(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Thief path: takes the last (smallest) chunk from the back.
    pub fn pop_back(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// Number of chunks currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no chunks remain.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_from_front_lifo_from_back() {
        let d = ChunkDeque::new();
        for i in 0..4 {
            d.push_back(i);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.pop_front(), Some(0));
        assert_eq!(d.pop_back(), Some(3));
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_back(), Some(2));
        assert!(d.is_empty());
        assert_eq!(d.pop_front(), None);
        assert_eq!(d.pop_back(), None);
    }

    #[test]
    fn shared_across_threads() {
        let d = std::sync::Arc::new(ChunkDeque::with_capacity(64));
        for i in 0..1000u32 {
            d.push_back(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = d.pop_back() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Every chunk taken exactly once.
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
