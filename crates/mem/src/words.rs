//! Word-block storage backends — the heart of the placement policies.
//!
//! The frozen candidate hash tree is a collection of *blocks*, each a short
//! sequence of `u32` words (a node header plus its hash table, a list of
//! itemset references, an itemset's items, an inline counter cell). The
//! paper's placement policies differ only in **where those blocks live**:
//!
//! * [`ContiguousStore`]: every block is carved out of one bump-allocated
//!   region, adjacent in exactly the order the policy emitted them — this is
//!   the paper's custom placement library (SPP/LPP/GPP depending on emit
//!   order). A handle is the block's word offset; dereferencing is a single
//!   indexed load.
//! * [`ScatterStore`]: every block is its own heap allocation (`Box`), the
//!   *standard malloc* baseline of the original CCPD code. A handle is an
//!   index into a pointer table, so every block access chases a pointer into
//!   allocator-placed memory, with a malloc header between any two blocks.
//!
//! All words are stored as `AtomicU32` so that inline support counters can
//! be incremented concurrently during the counting phase while structure
//! words are read. `Relaxed` loads of structure words compile to plain
//! `mov`s on x86-64 and plain `ldr`s on AArch64, so both backends pay zero
//! synchronization cost for traversal.

use std::sync::atomic::{AtomicU32, Ordering};

/// Reference to a block inside a [`WordStore`].
pub type Handle = u32;

/// The distinguished "no block" handle (used for empty hash-table slots).
pub const NULL_HANDLE: Handle = u32::MAX;

/// Read/update access to frozen tree blocks. Implementations must make
/// `load`/`fetch_add` safe to call from many threads concurrently.
pub trait WordStore: Sync + Send {
    /// Loads word `i` of block `h` (relaxed).
    fn load(&self, h: Handle, i: u32) -> u32;

    /// Atomically adds `v` to word `i` of block `h` (relaxed), returning the
    /// previous value. Used for inline support counters.
    fn fetch_add(&self, h: Handle, i: u32, v: u32) -> u32;

    /// Total words allocated (for the hash-tree-size accounting of Fig. 6).
    fn total_words(&self) -> usize;

    /// Total bytes occupied including per-block bookkeeping overhead
    /// (pointer table and malloc headers for the scatter store).
    fn total_bytes(&self) -> usize;
}

/// Allocation interface used while freezing a tree. Blocks are allocated in
/// the order the placement policy dictates; content may be patched
/// afterwards (children handles become known only once every block has an
/// address).
pub trait WordStoreBuilder {
    /// The store produced by [`WordStoreBuilder::finish`].
    type Store: WordStore;

    /// Allocates a zero-initialized block of `len` words.
    fn alloc(&mut self, len: u32) -> Handle;

    /// Writes word `i` of block `h`.
    fn set(&mut self, h: Handle, i: u32, v: u32);

    /// Reads word `i` of block `h` back (for tests and assertions).
    fn get(&self, h: Handle, i: u32) -> u32;

    /// Finalizes into an immutable-structure store.
    fn finish(self) -> Self::Store;
}

// ---------------------------------------------------------------------------
// Contiguous (region) backend
// ---------------------------------------------------------------------------

/// Bump-region builder: blocks are adjacent `u32` runs in emission order.
#[derive(Debug, Default)]
pub struct ContiguousBuilder {
    words: Vec<u32>,
    blocks: usize,
}

impl ContiguousBuilder {
    /// Creates an empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a region with reserved capacity (placement policies know the
    /// final size up front, making the build a single allocation).
    pub fn with_capacity(words: usize) -> Self {
        ContiguousBuilder {
            words: Vec::with_capacity(words),
            blocks: 0,
        }
    }
}

impl WordStoreBuilder for ContiguousBuilder {
    type Store = ContiguousStore;

    fn alloc(&mut self, len: u32) -> Handle {
        let h = self.words.len();
        assert!(
            h + len as usize <= NULL_HANDLE as usize,
            "region exceeds u32 addressing"
        );
        self.words.resize(h + len as usize, 0);
        self.blocks += 1;
        h as Handle
    }

    fn set(&mut self, h: Handle, i: u32, v: u32) {
        self.words[h as usize + i as usize] = v;
    }

    fn get(&self, h: Handle, i: u32) -> u32 {
        self.words[h as usize + i as usize]
    }

    fn finish(self) -> ContiguousStore {
        ContiguousStore {
            words: self.words.into_iter().map(AtomicU32::new).collect(),
        }
    }
}

/// One flat region; a handle is a word offset. See module docs.
pub struct ContiguousStore {
    words: Box<[AtomicU32]>,
}

impl WordStore for ContiguousStore {
    #[inline(always)]
    fn load(&self, h: Handle, i: u32) -> u32 {
        self.words[h as usize + i as usize].load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn fetch_add(&self, h: Handle, i: u32, v: u32) -> u32 {
        self.words[h as usize + i as usize].fetch_add(v, Ordering::Relaxed)
    }

    fn total_words(&self) -> usize {
        self.words.len()
    }

    fn total_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

// ---------------------------------------------------------------------------
// Scatter (standard-malloc baseline) backend
// ---------------------------------------------------------------------------

/// Per-block heap allocation builder (the CCPD standard-malloc baseline).
#[derive(Debug, Default)]
pub struct ScatterBuilder {
    blocks: Vec<Box<[AtomicU32]>>,
}

impl ScatterBuilder {
    /// Creates an empty scatter arena.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WordStoreBuilder for ScatterBuilder {
    type Store = ScatterStore;

    fn alloc(&mut self, len: u32) -> Handle {
        let h = self.blocks.len();
        assert!(h < NULL_HANDLE as usize, "too many scatter blocks");
        let block: Box<[AtomicU32]> = (0..len).map(|_| AtomicU32::new(0)).collect();
        self.blocks.push(block);
        h as Handle
    }

    fn set(&mut self, h: Handle, i: u32, v: u32) {
        self.blocks[h as usize][i as usize].store(v, Ordering::Relaxed);
    }

    fn get(&self, h: Handle, i: u32) -> u32 {
        self.blocks[h as usize][i as usize].load(Ordering::Relaxed)
    }

    fn finish(self) -> ScatterStore {
        ScatterStore {
            blocks: self.blocks,
        }
    }
}

/// One heap allocation per block; a handle indexes a pointer table.
pub struct ScatterStore {
    blocks: Vec<Box<[AtomicU32]>>,
}

impl WordStore for ScatterStore {
    #[inline(always)]
    fn load(&self, h: Handle, i: u32) -> u32 {
        self.blocks[h as usize][i as usize].load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn fetch_add(&self, h: Handle, i: u32, v: u32) -> u32 {
        self.blocks[h as usize][i as usize].fetch_add(v, Ordering::Relaxed)
    }

    fn total_words(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    fn total_bytes(&self) -> usize {
        // Words + fat pointer table entry + typical 16-byte malloc header
        // per block, mirroring the overhead the paper's custom library
        // avoids.
        self.blocks
            .iter()
            .map(|b| b.len() * 4 + size_of::<Box<[AtomicU32]>>() + 16)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_builder<B: WordStoreBuilder>(mut b: B) -> B::Store {
        let h1 = b.alloc(3);
        let h2 = b.alloc(1);
        b.set(h1, 0, 10);
        b.set(h1, 2, 30);
        b.set(h2, 0, 99);
        assert_eq!(b.get(h1, 0), 10);
        assert_eq!(b.get(h1, 1), 0);
        assert_eq!(b.get(h1, 2), 30);
        assert_eq!(b.get(h2, 0), 99);
        b.finish()
    }

    #[test]
    fn contiguous_roundtrip() {
        let s = exercise_builder(ContiguousBuilder::new());
        assert_eq!(s.load(0, 0), 10);
        assert_eq!(s.load(0, 2), 30);
        assert_eq!(s.load(3, 0), 99); // handle = offset in region
        assert_eq!(s.total_words(), 4);
        assert_eq!(s.total_bytes(), 16);
    }

    #[test]
    fn scatter_roundtrip() {
        let s = exercise_builder(ScatterBuilder::new());
        assert_eq!(s.load(0, 0), 10);
        assert_eq!(s.load(0, 2), 30);
        assert_eq!(s.load(1, 0), 99); // handle = block index
        assert_eq!(s.total_words(), 4);
        assert!(s.total_bytes() > s.total_words() * 4); // bookkeeping overhead
    }

    #[test]
    fn contiguous_blocks_are_adjacent() {
        let mut b = ContiguousBuilder::new();
        let h1 = b.alloc(2);
        let h2 = b.alloc(5);
        let h3 = b.alloc(1);
        assert_eq!((h1, h2, h3), (0, 2, 7));
    }

    #[test]
    fn fetch_add_accumulates() {
        for store in [
            {
                let mut b = ContiguousBuilder::new();
                b.alloc(1);
                Box::new(b.finish()) as Box<dyn WordStore>
            },
            {
                let mut b = ScatterBuilder::new();
                b.alloc(1);
                Box::new(b.finish()) as Box<dyn WordStore>
            },
        ] {
            assert_eq!(store.fetch_add(0, 0, 5), 0);
            assert_eq!(store.fetch_add(0, 0, 2), 5);
            assert_eq!(store.load(0, 0), 7);
        }
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        let mut b = ContiguousBuilder::new();
        b.alloc(4);
        let s = std::sync::Arc::new(b.finish());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.fetch_add(0, t % 4, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u32 = (0..4).map(|i| s.load(0, i)).sum();
        assert_eq!(total, 40_000);
    }

    #[test]
    fn with_capacity_allocs_once() {
        let mut b = ContiguousBuilder::with_capacity(128);
        for _ in 0..16 {
            b.alloc(8);
        }
        let s = b.finish();
        assert_eq!(s.total_words(), 128);
    }
}
