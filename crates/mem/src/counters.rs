//! Support-counter placement schemes (§5.2 of the paper).
//!
//! During support counting every hit on a candidate increments its counter.
//! Where those counters live determines both locality and false sharing:
//!
//! * **inline** — the counter word sits inside the candidate's itemset block
//!   (handled by the hash tree itself via [`crate::WordStore::fetch_add`]);
//!   read-only itemset data shares cache lines with read-write counters,
//!   the paper's worst case;
//! * [`FlatCounters`] — a dense shared array segregated from the read-only
//!   tree (the paper's "segregate read-only data" / `L-*` schemes);
//! * [`PaddedCounters`] — one cache line per counter (the paper's rejected
//!   *padding and aligning* scheme; kept as an ablation: no false sharing,
//!   terrible footprint and locality);
//! * [`LocalCounters`] — per-thread private arrays plus a sum-reduction (the
//!   paper's *privatization* / local counter array scheme, used by
//!   `LCA-GPP`): no synchronization, no false sharing.

use crate::CacheAligned;
use std::sync::atomic::{AtomicU32, Ordering};

/// Common interface for shared (cross-thread) counter arrays.
pub trait SharedCounters: Sync + Send {
    /// Atomically increments counter `id`.
    fn increment(&self, id: u32);
    /// Reads counter `id`.
    fn get(&self, id: u32) -> u32;
    /// Number of counters.
    fn len(&self) -> usize;
    /// True when there are no counters.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Memory footprint in bytes.
    fn footprint_bytes(&self) -> usize;
}

/// Dense `AtomicU32` array — counters segregated from read-only data but
/// packed together (16 counters per cache line ⇒ residual false sharing
/// *among counters*, none against the tree).
pub struct FlatCounters {
    slots: Box<[AtomicU32]>,
}

impl FlatCounters {
    /// Allocates `n` zeroed counters.
    pub fn new(n: usize) -> Self {
        FlatCounters {
            slots: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Snapshot of all counts.
    pub fn snapshot(&self) -> Vec<u32> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Increments counter `id` via a CAS loop, returning how many retries
    /// the update needed. Zero means the slot was uncontended; every retry
    /// is one interleaved write by another thread — the direct contention
    /// signal the telemetry layer attributes to striped counters.
    #[inline]
    pub fn increment_counting_retries(&self, id: u32) -> u32 {
        let slot = &self.slots[id as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        let mut retries = 0u32;
        loop {
            match slot.compare_exchange_weak(
                cur,
                cur.wrapping_add(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return retries,
                Err(seen) => {
                    cur = seen;
                    retries += 1;
                }
            }
        }
    }
}

impl SharedCounters for FlatCounters {
    #[inline(always)]
    fn increment(&self, id: u32) {
        self.slots[id as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    fn get(&self, id: u32) -> u32 {
        self.slots[id as usize].load(Ordering::Relaxed)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn footprint_bytes(&self) -> usize {
        self.slots.len() * 4
    }
}

/// One cache line per counter — the paper's padding scheme, which removes
/// all false sharing at a 16x memory cost ("unacceptable memory space
/// overhead and, more importantly, a significant loss in locality").
pub struct PaddedCounters {
    slots: Box<[CacheAligned<AtomicU32>]>,
}

impl PaddedCounters {
    /// Allocates `n` zeroed, line-aligned counters.
    pub fn new(n: usize) -> Self {
        PaddedCounters {
            slots: (0..n)
                .map(|_| CacheAligned::new(AtomicU32::new(0)))
                .collect(),
        }
    }
}

impl SharedCounters for PaddedCounters {
    #[inline(always)]
    fn increment(&self, id: u32) {
        self.slots[id as usize].0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    fn get(&self, id: u32) -> u32 {
        self.slots[id as usize].0.load(Ordering::Relaxed)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn footprint_bytes(&self) -> usize {
        self.slots.len() * 64
    }
}

/// A thread-private counter array. Increments are plain (non-atomic) adds;
/// after the counting phase, arrays are merged with [`reduce`].
#[derive(Debug, Clone)]
pub struct LocalCounters {
    slots: Vec<u32>,
}

impl LocalCounters {
    /// Allocates `n` zeroed private counters.
    pub fn new(n: usize) -> Self {
        LocalCounters { slots: vec![0; n] }
    }

    /// Increments counter `id` (no synchronization: the array is private).
    #[inline(always)]
    pub fn increment(&mut self, id: u32) {
        self.slots[id as usize] += 1;
    }

    /// Reads counter `id`.
    #[inline]
    pub fn get(&self, id: u32) -> u32 {
        self.slots[id as usize]
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no counters.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Raw slots (for reduction).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }
}

/// The paper's global sum-reduction over per-processor local counter
/// arrays. Panics if the arrays disagree in length.
pub fn reduce(locals: &[LocalCounters]) -> Vec<u32> {
    let Some(first) = locals.first() else {
        return Vec::new();
    };
    let n = first.len();
    let mut out = vec![0u32; n];
    for l in locals {
        assert_eq!(l.len(), n, "local counter arrays must be uniform");
        for (o, &v) in out.iter_mut().zip(l.slots()) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn check_shared(c: Arc<dyn SharedCounters>) {
        assert_eq!(c.len(), 8);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..8_000u32 {
                        c.increment(i % 8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for i in 0..8 {
            assert_eq!(c.get(i), 4_000);
        }
    }

    #[test]
    fn flat_counters_concurrent_exact() {
        check_shared(Arc::new(FlatCounters::new(8)));
    }

    #[test]
    fn padded_counters_concurrent_exact() {
        check_shared(Arc::new(PaddedCounters::new(8)));
    }

    #[test]
    fn padded_footprint_is_line_per_counter() {
        let p = PaddedCounters::new(10);
        assert_eq!(p.footprint_bytes(), 640);
        let f = FlatCounters::new(10);
        assert_eq!(f.footprint_bytes(), 40);
    }

    #[test]
    fn local_counters_reduce() {
        let mut a = LocalCounters::new(4);
        let mut b = LocalCounters::new(4);
        a.increment(0);
        a.increment(0);
        a.increment(3);
        b.increment(3);
        b.increment(1);
        assert_eq!(reduce(&[a, b]), vec![2, 1, 0, 2]);
    }

    #[test]
    fn reduce_empty_is_empty() {
        assert!(reduce(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "uniform")]
    fn reduce_rejects_mismatched_lengths() {
        reduce(&[LocalCounters::new(2), LocalCounters::new(3)]);
    }

    #[test]
    fn counting_retries_increment_is_exact() {
        let f = Arc::new(FlatCounters::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    let mut retries = 0u64;
                    for i in 0..4_000u32 {
                        retries += f.increment_counting_retries(i % 4) as u64;
                    }
                    retries
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Retries never lose updates: totals are exact regardless of how
        // much interleaving occurred.
        for i in 0..4 {
            assert_eq!(f.get(i), 4_000);
        }
    }

    #[test]
    fn flat_snapshot() {
        let f = FlatCounters::new(3);
        f.increment(1);
        f.increment(1);
        assert_eq!(f.snapshot(), vec![0, 2, 0]);
        assert!(!f.is_empty());
    }
}
