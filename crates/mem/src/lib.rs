//! Custom memory placement library for association mining (§5 of the paper).
//!
//! The paper attributes a 2x+ speedup to *where* the hash-tree building
//! blocks live in memory. This crate provides the substrate that makes those
//! placement policies expressible in safe Rust:
//!
//! * [`words`] — the tree's frozen blocks are sequences of `u32` words
//!   allocated through a [`words::WordStoreBuilder`]. The
//!   [`words::ContiguousStore`] backend is the paper's *custom region*: one
//!   bump allocation, no boundary tags, blocks adjacent in whatever order
//!   the placement policy chooses. The [`words::ScatterStore`] backend is
//!   the *standard malloc* baseline: one heap allocation per block, with all
//!   the allocator headers and size-class scatter that entails.
//! * [`counters`] — support-counter placement: a flat shared atomic array,
//!   a cache-line-padded variant (the paper's rejected padding scheme, kept
//!   as an ablation), and per-thread private arrays with sum-reduction (the
//!   paper's *local counter array* / privatization scheme).
//! * [`stable_vec`] — an append-only concurrent arena with lock-free reads,
//!   used for the parallel hash-tree build where nodes are created while
//!   other threads traverse existing ones (§3.1.4).
//! * [`deque`] — a mutex-guarded double-ended chunk queue, the storage
//!   primitive for the work-stealing scheduler in `arm-exec` (owner pops
//!   front, thieves pop back).
//! * [`CacheAligned`] — cache-line alignment wrapper for false-sharing
//!   sensitive data.

pub mod counters;
pub mod deque;
pub mod stable_vec;
pub mod words;

pub use counters::{FlatCounters, LocalCounters, PaddedCounters, SharedCounters};
pub use deque::ChunkDeque;
pub use stable_vec::StableVec;
pub use words::{
    ContiguousBuilder, ContiguousStore, Handle, ScatterBuilder, ScatterStore, WordStore,
    WordStoreBuilder, NULL_HANDLE,
};

/// Pads and aligns `T` to a 64-byte cache line, preventing false sharing
/// between adjacent array elements.
///
/// 64 bytes matches the line size of every mainstream x86-64 and most ARM
/// server parts; on machines with 128-byte prefetch pairs this still removes
/// the dominant sharing mode.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wraps a value.
    pub fn new(v: T) -> Self {
        CacheAligned(v)
    }
    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CacheAligned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CacheAligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_aligned_is_line_sized() {
        assert_eq!(align_of::<CacheAligned<u8>>(), 64);
        assert_eq!(size_of::<CacheAligned<u32>>(), 64);
        // Arrays of aligned cells put each element on its own line.
        let arr = [CacheAligned::new(0u32), CacheAligned::new(1u32)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert_eq!(b - a, 64);
    }

    #[test]
    fn cache_aligned_deref() {
        let mut c = CacheAligned::new(5u32);
        *c += 1;
        assert_eq!(*c, 6);
        assert_eq!(c.into_inner(), 6);
    }
}
