//! Property tests for partitioning schemes and hash functions.

use arm_balance::partition::triangular_weights;
use arm_balance::theory::{leaf_occupancy, occupancy_cv};
use arm_balance::{BitonicHash, HashFn, IndirectionHash, ModHash, Scheme};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every scheme partitions every item exactly once with exact loads.
    #[test]
    fn schemes_partition_exactly(
        weights in vec(0u64..1000, 0..150),
        parts in 1usize..12,
    ) {
        for scheme in [Scheme::Block, Scheme::Interleaved, Scheme::Bitonic, Scheme::Greedy] {
            let a = scheme.assign(&weights, parts);
            prop_assert_eq!(a.bins.len(), parts);
            let mut seen: Vec<usize> = a.bins.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..weights.len()).collect::<Vec<_>>());
            for (bin, &load) in a.bins.iter().zip(&a.loads) {
                let sum: u64 = bin.iter().map(|&i| weights[i]).sum();
                prop_assert_eq!(sum, load);
            }
        }
    }

    /// Greedy LPT is within the classical 4/3 bound of the lower bound
    /// `max(total/P, max_weight)`.
    #[test]
    fn greedy_respects_lpt_bound(
        weights in vec(1u64..1000, 1..120),
        parts in 1usize..8,
    ) {
        let a = Scheme::Greedy.assign(&weights, parts);
        let total: u64 = weights.iter().sum();
        let lower = (total as f64 / parts as f64).max(*weights.iter().max().unwrap() as f64);
        prop_assert!(a.max_load() as f64 <= 4.0 / 3.0 * lower + 1.0,
            "max {} vs lower {}", a.max_load(), lower);
    }

    /// On triangular workloads bitonic never trails block, and greedy
    /// never trails bitonic.
    #[test]
    fn triangular_ordering(n in 1usize..200, parts in 1usize..10) {
        let w = triangular_weights(n);
        let block = Scheme::Block.assign(&w, parts).max_load();
        let bitonic = Scheme::Bitonic.assign(&w, parts).max_load();
        let greedy = Scheme::Greedy.assign(&w, parts).max_load();
        prop_assert!(bitonic <= block);
        prop_assert!(greedy <= bitonic);
    }

    /// Hash functions stay within their fan-out.
    #[test]
    fn hashes_in_range(h in 1u32..40, items in vec(0u32..100_000, 1..100)) {
        let m = ModHash::new(h);
        let b = BitonicHash::new(h);
        for &i in &items {
            prop_assert!(m.hash(i) < h);
            prop_assert!(b.hash(i) < h);
        }
    }

    /// Indirection vectors cover every item with a valid cell and balance
    /// the triangular workload at least as well as mod-hash.
    #[test]
    fn indirection_is_valid_and_balanced(
        n_frequent in 2u32..80,
        h in 2u32..8,
    ) {
        let frequent: Vec<u32> = (0..n_frequent).map(|i| i * 3).collect();
        let n_items = n_frequent * 3;
        let ind = IndirectionHash::for_frequent_items(&frequent, n_items, h);
        for i in 0..n_items {
            prop_assert!(ind.hash(i) < h);
        }
        // Triangular load over frequent ranks, per cell.
        let weights = triangular_weights(frequent.len());
        let load = |f: &dyn HashFn| {
            let mut cells = vec![0u64; h as usize];
            for (rank, &item) in frequent.iter().enumerate() {
                cells[f.hash(item) as usize] += weights[rank];
            }
            *cells.iter().max().unwrap()
        };
        let mod_hash = ModHash::new(h);
        prop_assert!(load(&ind) <= load(&mod_hash));
    }

    /// The bitonic census is never more skewed than the interleaved one
    /// in the regime Theorem 1 assumes (d divisible by 2H, H > k).
    #[test]
    fn bitonic_census_not_worse(h in 4u32..7, mult in 2u32..5) {
        let k = 3u32;
        let d = 2 * h * mult;
        let cv_mod = occupancy_cv(&leaf_occupancy(d, k, &ModHash::new(h)));
        let cv_bit = occupancy_cv(&leaf_occupancy(d, k, &BitonicHash::new(h)));
        prop_assert!(cv_bit <= cv_mod + 1e-9, "bitonic {} vs mod {}", cv_bit, cv_mod);
    }
}
