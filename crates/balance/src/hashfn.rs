//! Hash functions routing items through the candidate hash tree (§4.1).
//!
//! The unoptimized tree uses the *interleaved* `g(i) = i mod H` function
//! ([`ModHash`]). The paper's balanced alternative maps items to the cells
//! produced by bitonic partitioning, either via the closed form of Theorem 1
//! ([`BitonicHash`]) or via an explicit indirection vector built from the
//! frequent-item workloads ([`IndirectionHash`], Table 1 of the paper).

use crate::partition::{bitonic_assignment, triangular_weights};

/// An item-to-cell hash used at every level of the hash tree.
pub trait HashFn: Sync + Send {
    /// Hash `item` into `0..fanout()`.
    fn hash(&self, item: u32) -> u32;
    /// The fan-out `H` of the hash tables this function feeds.
    fn fanout(&self) -> u32;

    /// Hashes every item of `items` into `out` (cleared first), so callers
    /// that revisit the same items many times — the counting kernel hashes
    /// each transaction item at every tree level — pay the hash (and any
    /// dispatch) once per item instead of once per visit.
    fn hash_slice(&self, items: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(items.len());
        out.extend(items.iter().map(|&i| self.hash(i)));
    }
}

/// The naive interleaved hash `g(i) = i mod H`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModHash {
    h: u32,
}

impl ModHash {
    /// Creates a mod-hash with fan-out `h` (must be non-zero).
    pub fn new(h: u32) -> Self {
        assert!(h > 0, "fan-out must be positive");
        ModHash { h }
    }
}

impl HashFn for ModHash {
    #[inline(always)]
    fn hash(&self, item: u32) -> u32 {
        item % self.h
    }

    #[inline]
    fn fanout(&self) -> u32 {
        self.h
    }
}

/// The closed-form bitonic hash of Theorem 1:
/// `h(i) = i mod H` when `(i mod 2H) < H`, else `2H - 1 - (i mod 2H)`.
///
/// Consecutive items sweep the cells up then down (0,1,..,H-1,H-1,..,1,0),
/// so any window of `2H` consecutive items loads every cell exactly twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitonicHash {
    h: u32,
}

impl BitonicHash {
    /// Creates a bitonic hash with fan-out `h` (must be non-zero).
    pub fn new(h: u32) -> Self {
        assert!(h > 0, "fan-out must be positive");
        BitonicHash { h }
    }
}

impl HashFn for BitonicHash {
    #[inline(always)]
    fn hash(&self, item: u32) -> u32 {
        let m = item % (2 * self.h);
        if m < self.h {
            m
        } else {
            2 * self.h - 1 - m
        }
    }

    #[inline]
    fn fanout(&self) -> u32 {
        self.h
    }
}

/// A fully materialized item → cell table (the paper's indirection vector,
/// Table 1). Built from the actual frequent items so that the *workload*
/// (triangular join counts), not just the item labels, is balanced across
/// cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectionHash {
    table: Vec<u32>,
    h: u32,
}

impl IndirectionHash {
    /// Builds the indirection vector for the given sorted list of frequent
    /// items. Frequent item with lexicographic rank `r` carries triangular
    /// weight `n - r - 1` and is assigned its cell by bitonic partitioning;
    /// items that are not frequent are routed by the closed-form bitonic
    /// hash of their raw id (they reach the tree only through transactions
    /// and never match a candidate, so any fixed cell works).
    pub fn for_frequent_items(frequent: &[u32], n_items: u32, h: u32) -> Self {
        assert!(h > 0, "fan-out must be positive");
        debug_assert!(frequent.windows(2).all(|w| w[0] < w[1]));
        let fallback = BitonicHash::new(h);
        let mut table: Vec<u32> = (0..n_items).map(|i| fallback.hash(i)).collect();
        let weights = triangular_weights(frequent.len());
        let assignment = bitonic_assignment(&weights, h as usize);
        for (cell, bin) in assignment.bins.iter().enumerate() {
            for &rank in bin {
                table[frequent[rank] as usize] = cell as u32;
            }
        }
        IndirectionHash { table, h }
    }

    /// Builds an indirection table directly from per-item cell values
    /// (useful for tests and custom policies).
    pub fn from_table(table: Vec<u32>, h: u32) -> Self {
        assert!(h > 0, "fan-out must be positive");
        assert!(table.iter().all(|&c| c < h), "cell out of range");
        IndirectionHash { table, h }
    }

    /// The underlying table.
    pub fn table(&self) -> &[u32] {
        &self.table
    }
}

impl HashFn for IndirectionHash {
    #[inline(always)]
    fn hash(&self, item: u32) -> u32 {
        self.table[item as usize]
    }

    #[inline]
    fn fanout(&self) -> u32 {
        self.h
    }
}

/// A boxed hash function choice, used where the variant is configured at
/// run time (the mining drivers).
pub enum AnyHash {
    /// Interleaved `i mod H`.
    Mod(ModHash),
    /// Closed-form bitonic.
    Bitonic(BitonicHash),
    /// Indirection vector over frequent items.
    Indirection(IndirectionHash),
}

impl HashFn for AnyHash {
    #[inline(always)]
    fn hash(&self, item: u32) -> u32 {
        match self {
            AnyHash::Mod(f) => f.hash(item),
            AnyHash::Bitonic(f) => f.hash(item),
            AnyHash::Indirection(f) => f.hash(item),
        }
    }

    #[inline]
    fn fanout(&self) -> u32 {
        match self {
            AnyHash::Mod(f) => f.fanout(),
            AnyHash::Bitonic(f) => f.fanout(),
            AnyHash::Indirection(f) => f.fanout(),
        }
    }

    /// Resolves the variant once, then hashes the whole slice through the
    /// concrete function — the per-item enum dispatch of `hash` is the cost
    /// this batch entry point exists to avoid.
    fn hash_slice(&self, items: &[u32], out: &mut Vec<u32>) {
        match self {
            AnyHash::Mod(f) => f.hash_slice(items, out),
            AnyHash::Bitonic(f) => f.hash_slice(items, out),
            AnyHash::Indirection(f) => f.hash_slice(items, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_hash_basic() {
        let f = ModHash::new(3);
        assert_eq!(
            (0..7).map(|i| f.hash(i)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
        assert_eq!(f.fanout(), 3);
    }

    #[test]
    fn bitonic_hash_sweeps_up_then_down() {
        let f = BitonicHash::new(3);
        // 0,1,2,2,1,0 repeating.
        assert_eq!(
            (0..12).map(|i| f.hash(i)).collect::<Vec<_>>(),
            vec![0, 1, 2, 2, 1, 0, 0, 1, 2, 2, 1, 0]
        );
    }

    #[test]
    fn bitonic_window_loads_each_cell_twice() {
        for h in [2u32, 3, 4, 8] {
            let f = BitonicHash::new(h);
            let mut counts = vec![0u32; h as usize];
            for i in 0..2 * h {
                counts[f.hash(i) as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c == 2), "h={h} counts={counts:?}");
        }
    }

    #[test]
    fn indirection_matches_paper_table_1() {
        // F1 = 10 items (labels 0..9), H = 3 → Table 1:
        // hash values 0 1 2 2 1 0 0 1 2 2.
        let frequent: Vec<u32> = (0..10).collect();
        let f = IndirectionHash::for_frequent_items(&frequent, 10, 3);
        assert_eq!(f.table(), &[0, 1, 2, 2, 1, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn indirection_uses_frequent_ranks_not_ids() {
        // Same Table-1 shape but with sparse item ids (the paper's
        // {A,D,E,G,K,M,N,S,T,Z} example).
        let frequent = vec![5u32, 11, 12, 20, 30, 31, 40, 47, 90, 99];
        let f = IndirectionHash::for_frequent_items(&frequent, 100, 3);
        let cells: Vec<u32> = frequent.iter().map(|&i| f.hash(i)).collect();
        assert_eq!(cells, vec![0, 1, 2, 2, 1, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn indirection_covers_infrequent_items() {
        let f = IndirectionHash::for_frequent_items(&[2, 4], 8, 2);
        for i in 0..8 {
            assert!(f.hash(i) < 2);
        }
    }

    #[test]
    fn from_table_validates_range() {
        let f = IndirectionHash::from_table(vec![0, 1, 1, 0], 2);
        assert_eq!(f.hash(2), 1);
    }

    #[test]
    #[should_panic(expected = "cell out of range")]
    fn from_table_rejects_bad_cell() {
        IndirectionHash::from_table(vec![0, 5], 2);
    }

    #[test]
    fn any_hash_dispatches() {
        let m = AnyHash::Mod(ModHash::new(4));
        let b = AnyHash::Bitonic(BitonicHash::new(4));
        assert_eq!(m.hash(7), 3);
        assert_eq!(b.hash(7), 0);
        assert_eq!(m.fanout(), 4);
        assert_eq!(b.fanout(), 4);
    }

    #[test]
    fn hash_slice_matches_per_item_hash() {
        let items: Vec<u32> = (0..40).collect();
        let fns: Vec<Box<dyn HashFn>> = vec![
            Box::new(ModHash::new(5)),
            Box::new(BitonicHash::new(5)),
            Box::new(IndirectionHash::for_frequent_items(&[1, 3, 8, 21], 40, 5)),
            Box::new(AnyHash::Bitonic(BitonicHash::new(5))),
        ];
        for f in &fns {
            let mut out = vec![7u32; 3]; // stale contents must be cleared
            f.hash_slice(&items, &mut out);
            let expect: Vec<u32> = items.iter().map(|&i| f.hash(i)).collect();
            assert_eq!(out, expect);
        }
    }
}
