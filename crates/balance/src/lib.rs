//! Computation balancing and balanced hash functions (§3.1.2, §4.1).
//!
//! Two load-balancing problems in the paper share one mechanism:
//!
//! 1. **Computation balancing** — partitioning the candidate-generation
//!    work (itemsets within equivalence classes, with triangular workloads
//!    `w_i = n - i - 1`) across `P` processors;
//! 2. **Hash tree balancing** — partitioning items across the `H` cells of
//!    each hash-table level so leaves fill evenly.
//!
//! Both are solved by the *bitonic* partitioning scheme ([`partition`]),
//! which pairs itemset `i` with itemset `2P - i - 1` so each pair carries
//! constant work. For the tree, "processors" become hash cells and the
//! assignment is materialized as an indirection vector ([`hashfn`]).
//! [`theory`] provides the Theorem 1 leaf-occupancy bounds.

pub mod hashfn;
pub mod partition;
pub mod theory;

pub use hashfn::{AnyHash, BitonicHash, HashFn, IndirectionHash, ModHash};
pub use partition::{
    bitonic_assignment, block_assignment, greedy_assignment, interleaved_assignment, Assignment,
    Scheme,
};
