//! Partitioning schemes for weighted work items (§3.1.2).
//!
//! The running example of the paper: `P = 3`, items `0..10` with triangular
//! workloads `w_i = n - i - 1` (itemset `i` joins with every later itemset).
//!
//! * [`block_assignment`] — contiguous blocks; badly imbalanced (24/15/6);
//! * [`interleaved_assignment`] — round-robin; better (18/15/12);
//! * [`bitonic_assignment`] — pairs `i` with `2P - i - 1` so each pair has
//!   constant weight; near-perfect (16/15/14);
//! * [`greedy_assignment`] — the multi-equivalence-class generalization:
//!   sort by weight descending, always give the next item to the least
//!   loaded processor (LPT scheduling).

/// A partitioning scheme choice, dispatchable at run time (the COMP knob
/// of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Contiguous blocks.
    Block,
    /// Round-robin.
    Interleaved,
    /// Bitonic pairing (single-class closed form + greedy tail).
    Bitonic,
    /// Greedy LPT (the multi-class generalization).
    Greedy,
}

impl Scheme {
    /// Distributes `weights` over `parts` bins with this scheme.
    pub fn assign(self, weights: &[u64], parts: usize) -> Assignment {
        match self {
            Scheme::Block => block_assignment(weights, parts),
            Scheme::Interleaved => interleaved_assignment(weights, parts),
            Scheme::Bitonic => bitonic_assignment(weights, parts),
            Scheme::Greedy => greedy_assignment(weights, parts),
        }
    }

    /// Display name used by the benchmark harness.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Block => "block",
            Scheme::Interleaved => "interleaved",
            Scheme::Bitonic => "bitonic",
            Scheme::Greedy => "greedy",
        }
    }
}

/// The result of distributing `n` weighted items over `parts` bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `bins[p]` lists the item indices assigned to bin `p`.
    pub bins: Vec<Vec<usize>>,
    /// `loads[p]` is the total weight assigned to bin `p`.
    pub loads: Vec<u64>,
}

impl Assignment {
    fn new(parts: usize) -> Self {
        Assignment {
            bins: vec![Vec::new(); parts],
            loads: vec![0; parts],
        }
    }

    fn push(&mut self, bin: usize, item: usize, weight: u64) {
        self.bins[bin].push(item);
        self.loads[bin] += weight;
    }

    /// Largest bin load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Smallest bin load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Load imbalance `max / mean` (1.0 = perfect). Returns 1.0 for zero
    /// total weight.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.loads.iter().sum();
        if total == 0 || self.loads.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.loads.len() as f64;
        self.max_load() as f64 / mean
    }

    /// Inverse map: `owner[i] = bin holding item i`.
    pub fn owners(&self, n: usize) -> Vec<u32> {
        let mut owner = vec![u32::MAX; n];
        for (p, bin) in self.bins.iter().enumerate() {
            for &i in bin {
                owner[i] = p as u32;
            }
        }
        owner
    }
}

/// The triangular workload of candidate generation within one equivalence
/// class of `n` members: member `i` pairs with all later members.
pub fn triangular_weights(n: usize) -> Vec<u64> {
    (0..n).map(|i| (n - i - 1) as u64).collect()
}

/// Contiguous block partitioning (the paper's strawman).
pub fn block_assignment(weights: &[u64], parts: usize) -> Assignment {
    let mut a = Assignment::new(parts);
    if parts == 0 {
        return a;
    }
    let n = weights.len();
    let base = n / parts;
    let rem = n % parts;
    let mut i = 0;
    for p in 0..parts {
        let len = base + usize::from(p >= parts - rem);
        for _ in 0..len {
            a.push(p, i, weights[i]);
            i += 1;
        }
    }
    a
}

/// Round-robin partitioning: item `i` goes to bin `i mod P`.
pub fn interleaved_assignment(weights: &[u64], parts: usize) -> Assignment {
    let mut a = Assignment::new(parts);
    if parts == 0 {
        return a;
    }
    for (i, &w) in weights.iter().enumerate() {
        a.push(i % parts, i, w);
    }
    a
}

/// Bitonic partitioning for a single class of *triangular* weights
/// (§3.1.2): within each window of `2P` consecutive items, item `j` and
/// item `2P - j - 1` form a constant-weight pair assigned to bin `j`.
/// Leftover items (`n mod 2P != 0`) fall back to the greedy rule, matching
/// the paper's reference to Cierniak et al. (1997).
pub fn bitonic_assignment(weights: &[u64], parts: usize) -> Assignment {
    let mut a = Assignment::new(parts);
    if parts == 0 {
        return a;
    }
    let n = weights.len();
    let window = 2 * parts;
    let full = (n / window) * window;
    for (i, &w) in weights.iter().enumerate().take(full) {
        let j = i % window;
        let bin = if j < parts { j } else { window - j - 1 };
        a.push(bin, i, w);
    }
    // Tail: greedy (largest remaining weight to least-loaded bin).
    let mut tail: Vec<usize> = (full..n).collect();
    tail.sort_by(|&x, &y| weights[y].cmp(&weights[x]).then(x.cmp(&y)));
    for i in tail {
        let bin = least_loaded(&a.loads);
        a.push(bin, i, weights[i]);
    }
    for bin in &mut a.bins {
        bin.sort_unstable();
    }
    a
}

/// Greedy LPT scheduling: repeatedly assign the heaviest unassigned item to
/// the least-loaded bin. This is the paper's generalization of bitonic
/// partitioning to multiple equivalence classes with arbitrary weights.
pub fn greedy_assignment(weights: &[u64], parts: usize) -> Assignment {
    let mut a = Assignment::new(parts);
    if parts == 0 {
        return a;
    }
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&x, &y| weights[y].cmp(&weights[x]).then(x.cmp(&y)));
    for i in order {
        let bin = least_loaded(&a.loads);
        a.push(bin, i, weights[i]);
    }
    for bin in &mut a.bins {
        bin.sort_unstable();
    }
    a
}

fn least_loaded(loads: &[u64]) -> usize {
    let mut best = 0;
    for (p, &l) in loads.iter().enumerate() {
        if l < loads[best] {
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: n = 10, P = 3, triangular weights.
    fn paper_weights() -> Vec<u64> {
        triangular_weights(10)
    }

    #[test]
    fn triangular_weights_shape() {
        assert_eq!(triangular_weights(4), vec![3, 2, 1, 0]);
        assert!(triangular_weights(0).is_empty());
    }

    #[test]
    fn block_matches_paper() {
        // A0={0,1,2} W=24, A1={3,4,5} W=15, A2={6,7,8,9} W=6.
        let a = block_assignment(&paper_weights(), 3);
        assert_eq!(a.bins[0], vec![0, 1, 2]);
        assert_eq!(a.bins[1], vec![3, 4, 5]);
        assert_eq!(a.bins[2], vec![6, 7, 8, 9]);
        assert_eq!(a.loads, vec![24, 15, 6]);
    }

    #[test]
    fn interleaved_matches_paper() {
        // A0={0,3,6,9} W=18, A1={1,4,7} W=15, A2={2,5,8} W=12.
        let a = interleaved_assignment(&paper_weights(), 3);
        assert_eq!(a.bins[0], vec![0, 3, 6, 9]);
        assert_eq!(a.bins[1], vec![1, 4, 7]);
        assert_eq!(a.bins[2], vec![2, 5, 8]);
        assert_eq!(a.loads, vec![18, 15, 12]);
    }

    #[test]
    fn bitonic_matches_paper() {
        // A0={0,5,6} W=16, A1={1,4,7} W=15, A2={2,3,8,9} W=14.
        let a = bitonic_assignment(&paper_weights(), 3);
        assert_eq!(a.bins[0], vec![0, 5, 6]);
        assert_eq!(a.bins[1], vec![1, 4, 7]);
        assert_eq!(a.bins[2], vec![2, 3, 8, 9]);
        assert_eq!(a.loads, vec![16, 15, 14]);
    }

    #[test]
    fn bitonic_perfect_when_divisible() {
        // n = 12 = 2P*2 with P = 3: perfectly balanced.
        let w = triangular_weights(12);
        let a = bitonic_assignment(&w, 3);
        assert_eq!(a.max_load(), a.min_load());
    }

    #[test]
    fn ordering_of_schemes_on_paper_example() {
        let w = paper_weights();
        let block = block_assignment(&w, 3).imbalance();
        let inter = interleaved_assignment(&w, 3).imbalance();
        let bitonic = bitonic_assignment(&w, 3).imbalance();
        assert!(block > inter, "block {block} vs interleaved {inter}");
        assert!(inter > bitonic, "interleaved {inter} vs bitonic {bitonic}");
    }

    #[test]
    fn greedy_handles_arbitrary_weights() {
        let w = vec![100, 1, 1, 1, 1, 96, 3];
        let a = greedy_assignment(&w, 2);
        // LPT: 100 -> b0; 96 -> b1; 3 -> b1 (99); 1 -> b1 (100); 1 -> b0...
        let total: u64 = w.iter().sum();
        assert_eq!(a.loads.iter().sum::<u64>(), total);
        assert!(a.max_load() - a.min_load() <= 3, "loads {:?}", a.loads);
    }

    #[test]
    fn all_schemes_partition_every_item() {
        let w = triangular_weights(23);
        for a in [
            block_assignment(&w, 4),
            interleaved_assignment(&w, 4),
            bitonic_assignment(&w, 4),
            greedy_assignment(&w, 4),
        ] {
            let mut all: Vec<usize> = a.bins.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..23).collect::<Vec<_>>());
            let loads_ok = a
                .bins
                .iter()
                .zip(&a.loads)
                .all(|(bin, &l)| bin.iter().map(|&i| w[i]).sum::<u64>() == l);
            assert!(loads_ok);
        }
    }

    #[test]
    fn owners_inverse_map() {
        let w = triangular_weights(6);
        let a = bitonic_assignment(&w, 3);
        let owners = a.owners(6);
        for (p, bin) in a.bins.iter().enumerate() {
            for &i in bin {
                assert_eq!(owners[i], p as u32);
            }
        }
    }

    #[test]
    fn zero_parts_yields_empty() {
        let a = bitonic_assignment(&[1, 2, 3], 0);
        assert!(a.bins.is_empty());
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn single_part_takes_everything() {
        let w = vec![5, 6, 7];
        for a in [
            block_assignment(&w, 1),
            interleaved_assignment(&w, 1),
            bitonic_assignment(&w, 1),
            greedy_assignment(&w, 1),
        ] {
            assert_eq!(a.loads, vec![18]);
            assert_eq!(a.bins[0].len(), 3);
        }
    }
}
