//! Analytical results behind hash tree balancing (Theorem 1, §4.1).
//!
//! Theorem 1 bounds the ratio of any leaf's itemset count to the average by
//! `exp(±k² / (d/H))`. Both the interleaved and bitonic hashes share these
//! *bounds*; what differs is the **distribution**: for the bitonic hash a
//! `(1 - 1/H)^(k-1)` fraction of leaves sits near the average, while for the
//! interleaved hash at most `2/3` do (and none for even `k`). This module
//! provides the bound computation, the good-leaf fractions, and an exact
//! small-scale leaf-occupancy census used by tests and the balancing bench.

use crate::hashfn::HashFn;

/// The Theorem 1 multiplicative bounds `(lower, upper)` on
/// `leaf_count / average` for iteration `k`, `d` items, fan-out `h`.
pub fn occupancy_bounds(k: u32, d: u32, h: u32) -> (f64, f64) {
    assert!(h > 0 && d > 0);
    let e = (k as f64).powi(2) / (d as f64 / h as f64);
    ((-e).exp(), e.exp())
}

/// Fraction of leaves with capacity close to the average under the bitonic
/// hash: `(1 - 1/H)^(k-1)` (paper, §4.1).
pub fn bitonic_good_leaf_fraction(k: u32, h: u32) -> f64 {
    assert!(h > 0);
    (1.0 - 1.0 / h as f64).powi(k as i32 - 1)
}

/// Upper bound on the fraction of good leaves under the interleaved hash:
/// `0` for even `k`, at most `2/3` for odd `k ≥ 3` (maximum attained at
/// `k = 3`), `1` for `k = 1` (a single level is trivially balanced).
pub fn interleaved_good_leaf_fraction_bound(k: u32) -> f64 {
    match k {
        0 | 1 => 1.0,
        k if k % 2 == 0 => 0.0,
        _ => 2.0 / 3.0,
    }
}

/// Exhaustively maps every k-subset of `0..d` to its leaf path
/// `(hash(a1), ..., hash(ak))` and returns the per-leaf occupancy counts
/// (length `H^k`, row-major by path). Exponential in `k`; intended for the
/// small `d`, `k ≤ 4` regimes of tests and benches.
pub fn leaf_occupancy<F: HashFn>(d: u32, k: u32, f: &F) -> Vec<u64> {
    let h = f.fanout() as usize;
    let leaves = h.pow(k);
    let mut counts = vec![0u64; leaves];
    let mut subset = Vec::with_capacity(k as usize);
    census(d, k, f, 0, 0, &mut subset, &mut counts);
    counts
}

fn census<F: HashFn>(
    d: u32,
    k: u32,
    f: &F,
    start: u32,
    path: usize,
    subset: &mut Vec<u32>,
    counts: &mut [u64],
) {
    if subset.len() == k as usize {
        counts[path] += 1;
        return;
    }
    let h = f.fanout() as usize;
    for item in start..d {
        subset.push(item);
        census(
            d,
            k,
            f,
            item + 1,
            path * h + f.hash(item) as usize,
            subset,
            counts,
        );
        subset.pop();
    }
}

/// Coefficient of variation (stddev / mean) of a leaf occupancy census —
/// the scalar we use to compare balancing quality across hash functions.
pub fn occupancy_cv(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashfn::{BitonicHash, ModHash};

    #[test]
    fn bounds_are_symmetric_and_ordered() {
        let (lo, hi) = occupancy_bounds(3, 120, 4);
        assert!(lo < 1.0 && hi > 1.0);
        assert!((lo * hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_tighten_with_more_items() {
        let (_, hi_small) = occupancy_bounds(3, 60, 4);
        let (_, hi_large) = occupancy_bounds(3, 600, 4);
        assert!(hi_large < hi_small);
    }

    #[test]
    fn good_leaf_fractions_match_paper() {
        // Bitonic approaches 1 as H grows; interleaved capped at 2/3.
        assert!((bitonic_good_leaf_fraction(3, 10) - 0.81).abs() < 1e-12);
        assert!(bitonic_good_leaf_fraction(3, 100) > 0.98);
        assert_eq!(interleaved_good_leaf_fraction_bound(4), 0.0);
        assert!((interleaved_good_leaf_fraction_bound(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(interleaved_good_leaf_fraction_bound(1), 1.0);
    }

    #[test]
    fn census_counts_all_subsets() {
        let f = ModHash::new(3);
        let d = 12u32;
        let k = 3u32;
        let counts = leaf_occupancy(d, k, &f);
        let total: u64 = counts.iter().sum();
        // C(12, 3) = 220.
        assert_eq!(total, 220);
        assert_eq!(counts.len(), 27);
    }

    #[test]
    fn bitonic_census_is_more_even_than_mod() {
        // d divisible by 2H, H > k as Theorem 1 assumes.
        let d = 64u32;
        let h = 4u32;
        let k = 3u32;
        let cv_mod = occupancy_cv(&leaf_occupancy(d, k, &ModHash::new(h)));
        let cv_bit = occupancy_cv(&leaf_occupancy(d, k, &BitonicHash::new(h)));
        assert!(
            cv_bit < cv_mod,
            "bitonic cv {cv_bit} should beat interleaved cv {cv_mod}"
        );
    }

    #[test]
    fn census_respects_theorem_bounds() {
        let d = 64u32;
        let h = 4u32;
        let k = 2u32;
        let counts = leaf_occupancy(d, k, &BitonicHash::new(h));
        let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let (lo, hi) = occupancy_bounds(k, d, h);
        for &c in &counts {
            let ratio = c as f64 / avg;
            // The theorem's asymptotic bounds hold loosely at this scale;
            // allow a modest slack factor.
            assert!(
                ratio <= hi * 1.5 && ratio >= lo / 1.5,
                "ratio {ratio} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn cv_edge_cases() {
        assert_eq!(occupancy_cv(&[]), 0.0);
        assert_eq!(occupancy_cv(&[0, 0]), 0.0);
        assert_eq!(occupancy_cv(&[5, 5, 5]), 0.0);
        assert!(occupancy_cv(&[0, 10]) > 0.9);
    }
}
