//! The typed error every fallible miner returns instead of aborting.

use std::time::Duration;

/// Why a `try_mine_*` run ended without a result.
///
/// The paper's drivers assume a benign dedicated SMP and abort the whole
/// process on any worker failure; a service cannot. Every parallel driver
/// in the workspace maps the three ways a run can die onto this enum and
/// guarantees that by the time it is returned **all worker threads have
/// joined** and no shared state (trees, counters, scratch pools) is left
/// mid-mutation — a retry on the same inputs is bit-identical to a run
/// that never failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiningError {
    /// The run's [`CancelToken`](crate::CancelToken) was cancelled.
    Cancelled {
        /// Phase in which the cancellation was observed.
        phase: &'static str,
        /// Time from run start to the driver returning.
        elapsed: Duration,
    },
    /// The token's deadline passed while the run was in flight.
    DeadlineExceeded {
        /// Phase in which the expired deadline was observed.
        phase: &'static str,
        /// Time from run start to the driver returning.
        elapsed: Duration,
    },
    /// A worker thread panicked. Siblings were cancelled, every thread
    /// was joined, and the first payload (lowest thread index) captured.
    WorkerPanicked {
        /// Index of the panicking worker.
        thread: usize,
        /// Phase the worker was executing.
        phase: &'static str,
        /// The panic payload rendered as text (`&str`/`String` payloads
        /// verbatim, anything else a placeholder).
        payload: String,
    },
}

impl MiningError {
    /// The phase the error was observed in.
    pub fn phase(&self) -> &'static str {
        match self {
            MiningError::Cancelled { phase, .. }
            | MiningError::DeadlineExceeded { phase, .. }
            | MiningError::WorkerPanicked { phase, .. } => phase,
        }
    }
}

impl std::fmt::Display for MiningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiningError::Cancelled { phase, elapsed } => {
                write!(f, "mining cancelled during {phase} after {elapsed:?}")
            }
            MiningError::DeadlineExceeded { phase, elapsed } => {
                write!(
                    f,
                    "mining deadline exceeded during {phase} after {elapsed:?}"
                )
            }
            MiningError::WorkerPanicked {
                thread,
                phase,
                payload,
            } => {
                write!(f, "worker {thread} panicked during {phase}: {payload}")
            }
        }
    }
}

impl std::error::Error for MiningError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = MiningError::WorkerPanicked {
            thread: 3,
            phase: "count",
            payload: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("count") && s.contains("boom"));
        assert_eq!(e.phase(), "count");

        let c = MiningError::Cancelled {
            phase: "f1",
            elapsed: Duration::from_millis(5),
        };
        assert!(c.to_string().contains("cancelled during f1"));
        assert_eq!(c.phase(), "f1");

        let d = MiningError::DeadlineExceeded {
            phase: "mine",
            elapsed: Duration::ZERO,
        };
        assert!(d.to_string().contains("deadline"));
    }
}
