//! Fault-injection and cancellation layer for the parallel miners
//! (DESIGN.md §10).
//!
//! The paper's CCPD/PCCD drivers assume a benign, dedicated SMP: a
//! worker panic aborts the process and a run, once started, cannot be
//! stopped. This crate supplies the graceful-degradation discipline a
//! long-running service needs, in three pieces:
//!
//! * [`CancelToken`] — an atomic epoch plus optional deadline, observed
//!   by every miner once per chunk claim (threaded through
//!   `arm-exec::ChunkPool`) and at every phase boundary;
//! * [`try_run_threads`] — the fork-join primitive all drivers build on:
//!   workers run under `catch_unwind`, the first panic payload is
//!   captured, siblings are cancelled via the token, **every thread is
//!   joined**, and the caller gets a typed [`MiningError`] instead of an
//!   abort;
//! * [`FaultPlan`] — deterministic injection sites
//!   (`phase × thread × chunk-index`) that panic or delay at
//!   instrumented points, so the chaos suite can prove the two
//!   mechanisms above actually work under fire.
//!
//! [`RunControl`] bundles a token and a plan; every `try_mine_*` entry
//! point takes one, and the infallible `mine_*` APIs wrap them with the
//! inert default.
//!
//! ```
//! use arm_faults::{try_run_threads, CancelToken, MiningError};
//!
//! let cancel = CancelToken::new();
//! let err = try_run_threads(4, "count", &cancel, |t| {
//!     if t == 2 {
//!         panic!("worker blew up");
//!     }
//! })
//! .unwrap_err();
//! assert!(matches!(err, MiningError::WorkerPanicked { thread: 2, .. }));
//! assert!(cancel.is_cancelled(), "siblings were told to stop");
//! ```

pub mod cancel;
pub mod error;
pub mod plan;

pub use cancel::{CancelKind, CancelToken};
pub use error::MiningError;
pub use plan::{FaultKind, FaultPlan};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Everything a fallible mining run threads through its workers: the
/// cancellation token and the (usually empty) fault plan. `Default` is
/// fully inert — no deadline, no injections — which is what the
/// infallible `mine_*` wrappers pass.
#[derive(Debug, Default)]
pub struct RunControl {
    /// Cancellation/deadline handle. Clone it before the run to cancel
    /// from another thread.
    pub cancel: CancelToken,
    /// Armed injection sites (empty in production).
    pub faults: FaultPlan,
}

impl RunControl {
    /// A control block around an existing token (no faults).
    pub fn with_cancel(cancel: CancelToken) -> Self {
        RunControl {
            cancel,
            ..RunControl::default()
        }
    }

    /// A control block around a fault plan (fresh live token).
    pub fn with_faults(faults: FaultPlan) -> Self {
        RunControl {
            faults,
            ..RunControl::default()
        }
    }

    /// The phase gate drivers call after each phase: re-evaluates the
    /// deadline (so expiry is observed even when no chunk was claimed)
    /// and converts a tripped token into the matching [`MiningError`].
    pub fn gate(&self, phase: &'static str, run_start: Instant) -> Result<(), MiningError> {
        self.cancel.poll_deadline();
        match self.cancel.kind() {
            None => Ok(()),
            Some(kind) => Err(kind.into_error(phase, run_start.elapsed())),
        }
    }
}

/// Renders a panic payload as text: `&str` and `String` payloads pass
/// through verbatim, anything else becomes a placeholder.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Panic-containing fork-join: spawns `p` scoped threads running
/// `f(thread_id)` and collects results in thread order (with `p == 1`
/// the closure runs, still contained, on the caller's thread).
///
/// Every worker runs under `catch_unwind`. The first panicking worker
/// cancels `cancel`, so siblings drawing from a token-aware
/// [`ChunkPool`](../arm_exec) stop at their next claim; all threads are
/// then joined and the lowest-indexed panic is returned as
/// [`MiningError::WorkerPanicked`]. On `Ok` every worker ran to
/// completion.
///
/// The `AssertUnwindSafe` is sound for the workspace's workers: shared
/// mining state is either atomically updated (counters, chunk cursors)
/// or guarded by non-poisoning `parking_lot` locks, and a run that
/// returns `Err` discards every partial artifact.
pub fn try_run_threads<R: Send>(
    p: usize,
    phase: &'static str,
    cancel: &CancelToken,
    f: impl Fn(usize) -> R + Sync,
) -> Result<Vec<R>, MiningError> {
    let to_error = |t: usize, payload: Box<dyn std::any::Any + Send>| {
        cancel.cancel();
        MiningError::WorkerPanicked {
            thread: t,
            phase,
            payload: payload_text(payload.as_ref()),
        }
    };
    if p == 1 {
        return match catch_unwind(AssertUnwindSafe(|| f(0))) {
            Ok(r) => Ok(vec![r]),
            Err(payload) => Err(to_error(0, payload)),
        };
    }
    let f = &f;
    let outcomes: Vec<Result<R, Box<dyn std::any::Any + Send>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..p)
            .map(|t| {
                scope.spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| f(t)));
                    if r.is_err() {
                        // Stop siblings at their next chunk claim; the
                        // error itself is reported after the join below.
                        cancel.cancel();
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect()
    });
    let mut out = Vec::with_capacity(p);
    let mut first_panic: Option<MiningError> = None;
    for (t, o) in outcomes.into_iter().enumerate() {
        match o {
            Ok(r) => out.push(r),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(to_error(t, payload));
                }
            }
        }
    }
    match first_panic {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn quiet_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("blew up"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("blew up"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn success_collects_in_thread_order() {
        let cancel = CancelToken::new();
        let r = try_run_threads(4, "f1", &cancel, |t| t * 10).unwrap();
        assert_eq!(r, vec![0, 10, 20, 30]);
        assert!(!cancel.is_cancelled());
    }

    #[test]
    fn single_thread_panic_is_contained() {
        quiet_panics();
        let cancel = CancelToken::new();
        let e = try_run_threads(1, "count", &cancel, |_| -> () { panic!("blew up alone") })
            .unwrap_err();
        assert_eq!(
            e,
            MiningError::WorkerPanicked {
                thread: 0,
                phase: "count",
                payload: "blew up alone".into()
            }
        );
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn lowest_thread_panic_wins_and_all_join() {
        quiet_panics();
        let cancel = CancelToken::new();
        let finished = AtomicUsize::new(0);
        let e = try_run_threads(8, "build", &cancel, |t| {
            if t == 5 || t == 2 {
                panic!("blew up at {t}");
            }
            // Non-panicking workers observe the cancellation and still
            // count as joined.
            while !cancel.is_cancelled() {
                std::thread::yield_now();
            }
            finished.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap_err();
        match e {
            MiningError::WorkerPanicked {
                thread,
                phase,
                payload,
            } => {
                assert_eq!(thread, 2, "lowest-indexed panic is reported");
                assert_eq!(phase, "build");
                assert_eq!(payload, "blew up at 2");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(finished.load(Ordering::Relaxed), 6, "siblings all joined");
    }

    #[test]
    fn string_payloads_pass_through() {
        quiet_panics();
        let cancel = CancelToken::new();
        let e = try_run_threads(2, "mine", &cancel, |t| {
            if t == 0 {
                std::panic::panic_any(format!("blew up with String {t}"));
            }
        })
        .unwrap_err();
        assert!(matches!(
            e,
            MiningError::WorkerPanicked { ref payload, .. } if payload == "blew up with String 0"
        ));
    }

    #[test]
    fn gate_reports_cancellation_and_deadline() {
        let start = Instant::now();
        let ctrl = RunControl::default();
        assert!(ctrl.gate("f1", start).is_ok());
        ctrl.cancel.cancel();
        assert!(matches!(
            ctrl.gate("count", start),
            Err(MiningError::Cancelled { phase: "count", .. })
        ));
        let ctrl = RunControl::with_cancel(CancelToken::deadline_in(Duration::ZERO));
        assert!(matches!(
            ctrl.gate("f1", start),
            Err(MiningError::DeadlineExceeded { phase: "f1", .. })
        ));
    }
}
