//! Cooperative cancellation: an atomic epoch plus an optional deadline,
//! observed by every miner at chunk granularity.
//!
//! The token is the one shared object of the fault layer: the caller
//! keeps a clone, the driver threads a reference through every
//! [`ChunkPool`](../../arm_exec) claim, and a panicking worker flips it
//! to stop its siblings. Checks are a relaxed load on the live path, so
//! the cost per chunk claim is a handful of cycles against work that
//! scans at least a chunk of transactions.

use crate::error::MiningError;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// How a token left the live state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// [`CancelToken::cancel`] was called (by the user or by the panic
    /// containment in [`try_run_threads`](crate::try_run_threads)).
    Cancelled,
    /// The construction-time deadline passed.
    DeadlineExceeded,
}

impl CancelKind {
    /// Maps the kind onto the matching [`MiningError`] variant.
    pub fn into_error(self, phase: &'static str, elapsed: Duration) -> MiningError {
        match self {
            CancelKind::Cancelled => MiningError::Cancelled { phase, elapsed },
            CancelKind::DeadlineExceeded => MiningError::DeadlineExceeded { phase, elapsed },
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    /// Chunk-claim checkpoints observed so far (all threads).
    checks: AtomicU64,
    /// Checkpoint ordinal at which the token self-cancels (`u64::MAX`
    /// = never). Lets tests cancel at a deterministic logical point.
    trigger_at: AtomicU64,
    /// Wall-clock deadline, fixed at construction.
    deadline: Option<Instant>,
}

/// A cancellable run handle: atomic epoch + optional deadline.
///
/// Cheap to clone (all clones share state). A token is single-shot: once
/// cancelled or past its deadline it stays that way, so it should not be
/// reused across runs.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A token whose deadline is `d` from now. Workers observe the
    /// expiry at their next chunk claim; phase gates observe it between
    /// phases even if no claim happens.
    pub fn deadline_in(d: Duration) -> Self {
        Self::build(Instant::now().checked_add(d))
    }

    fn build(deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                checks: AtomicU64::new(0),
                trigger_at: AtomicU64::new(u64::MAX),
                deadline,
            }),
        }
    }

    /// Arms the deterministic trigger: the `n`-th checkpoint (1-based,
    /// counted across all threads) cancels the token. The cancellation
    /// and chaos suites use this to stop runs at exact logical points
    /// independent of wall clock.
    pub fn cancel_after_checks(self, n: u64) -> Self {
        self.inner.trigger_at.store(n.max(1), Ordering::Relaxed);
        self
    }

    /// Cancels the token. Idempotent; a deadline expiry that already
    /// latched wins (the run reports `DeadlineExceeded`).
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Release,
            Ordering::Relaxed,
        );
    }

    /// Whether the token has left the live state. A relaxed load — this
    /// is the non-counting probe for phase gates and tests; worker-side
    /// observation goes through [`CancelToken::checkpoint`].
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != LIVE
    }

    /// Evaluates the deadline without counting a checkpoint. Phase gates
    /// call this so a run with an expired deadline fails even if its
    /// pools never issued a claim (e.g. an empty database).
    pub fn poll_deadline(&self) {
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                let _ = self.inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::Release,
                    Ordering::Relaxed,
                );
            }
        }
    }

    /// The worker-side observation point, called once per chunk claim.
    /// Counts the check, applies the deterministic trigger and the
    /// deadline, and returns `true` while the token is live.
    pub fn checkpoint(&self) -> bool {
        let n = self.inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.inner.trigger_at.load(Ordering::Relaxed) {
            self.cancel();
        }
        self.poll_deadline();
        !self.is_cancelled()
    }

    /// Total checkpoints observed across all threads. The cancellation
    /// suite's latency bound: after cancellation at check `n`, at most
    /// one further check per worker can land, so `checks() ≤ n + P`.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// How the token left the live state, if it has.
    pub fn kind(&self) -> Option<CancelKind> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(CancelKind::Cancelled),
            DEADLINE => Some(CancelKind::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_live_and_cancels_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.kind(), None);
        assert!(t.checkpoint());
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.kind(), Some(CancelKind::Cancelled));
        assert!(!t.checkpoint());
        // Clones share state.
        let c = t.clone();
        assert!(c.is_cancelled());
    }

    #[test]
    fn trigger_fires_at_nth_check() {
        let t = CancelToken::new().cancel_after_checks(3);
        assert!(t.checkpoint());
        assert!(t.checkpoint());
        assert!(!t.checkpoint(), "third check trips the trigger");
        assert_eq!(t.checks(), 3);
        assert_eq!(t.kind(), Some(CancelKind::Cancelled));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::deadline_in(Duration::ZERO);
        t.poll_deadline();
        assert_eq!(t.kind(), Some(CancelKind::DeadlineExceeded));
        assert!(!t.checkpoint());
        // An explicit cancel cannot overwrite the latched deadline.
        t.cancel();
        assert_eq!(t.kind(), Some(CancelKind::DeadlineExceeded));
    }

    #[test]
    fn far_deadline_stays_live() {
        let t = CancelToken::deadline_in(Duration::from_secs(3600));
        assert!(t.checkpoint());
        assert_eq!(t.kind(), None);
    }

    #[test]
    fn kind_maps_to_errors() {
        let e = CancelKind::Cancelled.into_error("count", Duration::from_millis(1));
        assert!(matches!(e, MiningError::Cancelled { phase: "count", .. }));
        let e = CancelKind::DeadlineExceeded.into_error("f1", Duration::ZERO);
        assert!(matches!(
            e,
            MiningError::DeadlineExceeded { phase: "f1", .. }
        ));
    }
}
