//! Deterministic fault injection for the chaos suite.
//!
//! A [`FaultPlan`] is a list of injection sites keyed by
//! `phase × thread × chunk-index`; the drivers call [`FaultPlan::fire`]
//! at each instrumented point (one per claimed chunk in CCPD's F1/build/
//! count, PCCD's count, the parallel Eclat class loop, and the hybrid
//! transpose). A matching site either panics — exercising the
//! containment path — or sleeps, skewing the schedule without changing
//! any result. Wildcard keys (`thread`/`chunk` = `None`) let randomized
//! suites hit "whichever worker gets there first" while staying
//! reproducible from the plan itself.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// What an injection does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a message naming the site. Exercises the
    /// `catch_unwind` containment and sibling cancellation.
    Panic,
    /// Sleep for the given duration. Perturbs the schedule (forcing
    /// steals, cursor races, late barriers) without touching results.
    Delay(Duration),
}

/// One armed injection site.
#[derive(Debug)]
struct Injection {
    phase: &'static str,
    /// Matching worker index; `None` = any worker.
    thread: Option<usize>,
    /// Matching per-thread chunk ordinal; `None` = any chunk.
    chunk: Option<u64>,
    kind: FaultKind,
    /// Single-shot latch: a wildcard site fires for exactly one matching
    /// (thread, chunk) so delay noise and panic payloads stay bounded
    /// and the first firing is the one reported.
    fired: AtomicBool,
}

/// A seeded, deterministic set of injection sites.
///
/// Shared by reference across the run's workers ([`FaultPlan::fire`] is
/// `&self`); build one plan per run — the single-shot latches are not
/// reset between runs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    injections: Vec<Injection>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing; `fire` is a two-load no-op).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms a panic at `phase`, optionally pinned to a worker index and
    /// a per-thread chunk ordinal (0-based; `None` = first match wins).
    pub fn panic_at(
        mut self,
        phase: &'static str,
        thread: Option<usize>,
        chunk: Option<u64>,
    ) -> Self {
        self.injections.push(Injection {
            phase,
            thread,
            chunk,
            kind: FaultKind::Panic,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Arms a delay of `d` at `phase`, with the same keying as
    /// [`FaultPlan::panic_at`].
    pub fn delay_at(
        mut self,
        phase: &'static str,
        thread: Option<usize>,
        chunk: Option<u64>,
        d: Duration,
    ) -> Self {
        self.injections.push(Injection {
            phase,
            thread,
            chunk,
            kind: FaultKind::Delay(d),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// A one-site plan derived deterministically from `seed`: picks a
    /// phase from `phases`, a worker below `n_threads`, and a small chunk
    /// ordinal via an LCG. Chunk ordinals beyond what a run actually
    /// claims simply never fire, so the chaos suite pairs this with a
    /// wildcard-chunk fallback or checks [`FaultPlan::injected`].
    pub fn seeded(seed: u64, phases: &[&'static str], n_threads: usize, kind: FaultKind) -> Self {
        assert!(!phases.is_empty(), "seeded plan needs at least one phase");
        let mut x = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let phase = phases[(next() % phases.len() as u64) as usize];
        let thread = (next() % n_threads.max(1) as u64) as usize;
        let chunk = next() % 4;
        match kind {
            FaultKind::Panic => FaultPlan::new().panic_at(phase, Some(thread), Some(chunk)),
            FaultKind::Delay(d) => FaultPlan::new().delay_at(phase, Some(thread), Some(chunk), d),
        }
    }

    /// Whether the plan has no sites (drivers skip the match entirely).
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Number of injections that actually fired so far (drivers fold
    /// this into the `FaultsInjected` metric on successful runs).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The instrumentation point: fires the first armed site matching
    /// `(phase, thread, chunk)`. A `Panic` site panics (after tallying,
    /// so the count survives the unwind); a `Delay` site sleeps.
    pub fn fire(&self, phase: &'static str, thread: usize, chunk: u64) {
        if self.injections.is_empty() {
            return;
        }
        for inj in &self.injections {
            if inj.phase != phase
                || inj.thread.is_some_and(|t| t != thread)
                || inj.chunk.is_some_and(|c| c != chunk)
                || inj.fired.swap(true, Ordering::Relaxed)
            {
                continue;
            }
            self.injected.fetch_add(1, Ordering::Relaxed);
            match inj.kind {
                FaultKind::Panic => {
                    panic!("injected fault: phase={phase} thread={thread} chunk={chunk}")
                }
                FaultKind::Delay(d) => std::thread::sleep(d),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        p.fire("count", 0, 0);
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn delay_fires_once_on_exact_key() {
        let p = FaultPlan::new().delay_at("count", Some(1), Some(2), Duration::ZERO);
        p.fire("count", 1, 1); // wrong chunk
        p.fire("build", 1, 2); // wrong phase
        p.fire("count", 0, 2); // wrong thread
        assert_eq!(p.injected(), 0);
        p.fire("count", 1, 2);
        assert_eq!(p.injected(), 1);
        p.fire("count", 1, 2); // single-shot latch
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn wildcards_match_first_arrival() {
        let p = FaultPlan::new().delay_at("mine", None, None, Duration::ZERO);
        p.fire("mine", 7, 42);
        assert_eq!(p.injected(), 1);
        p.fire("mine", 0, 0);
        assert_eq!(p.injected(), 1, "latched after the first arrival");
    }

    #[test]
    #[should_panic(expected = "injected fault: phase=f1 thread=0 chunk=0")]
    fn panic_site_panics_with_site_in_payload() {
        let p = FaultPlan::new().panic_at("f1", Some(0), Some(0));
        p.fire("f1", 0, 0);
    }

    #[test]
    fn panic_tally_survives_unwind() {
        let p = FaultPlan::new().panic_at("f1", None, None);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.fire("f1", 3, 9)));
        assert!(r.is_err());
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let phases = ["f1", "build", "count"];
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, &phases, 4, FaultKind::Panic);
            let b = FaultPlan::seeded(seed, &phases, 4, FaultKind::Panic);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            let inj = &a.injections[0];
            assert!(phases.contains(&inj.phase));
            assert!(inj.thread.unwrap() < 4);
            assert!(inj.chunk.unwrap() < 4);
        }
        // Different seeds eventually pick different sites.
        let all: std::collections::HashSet<String> = (0..50)
            .map(|s| {
                format!(
                    "{:?}",
                    FaultPlan::seeded(s, &phases, 4, FaultKind::Panic).injections[0]
                )
            })
            .collect();
        assert!(all.len() > 5);
    }
}
