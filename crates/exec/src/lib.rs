//! Work-distribution executor for the data-parallel mining phases.
//!
//! The paper's CCPD statically block-splits the database across processors
//! (§3.3): thread `t` owns one contiguous transaction range for the entire
//! count phase. That is exact and deterministic but gates every barrier on
//! the slowest thread, and transaction-length skew makes the slowest thread
//! arbitrarily slow. This crate keeps the static split as one mode of a
//! [`ChunkPool`] and adds three dynamic schedules over the same index space:
//!
//! * [`Scheduling::Static`] — the paper's split, unchanged. Each thread
//!   receives exactly its seed range, once. This is the differential-test
//!   oracle: every other mode must produce bit-identical results.
//! * [`Scheduling::Chunked`] — a shared atomic cursor hands out fixed-size
//!   chunks; threads race on a single `compare_exchange` loop.
//! * [`Scheduling::Guided`] — guided self-scheduling: chunk size is
//!   `max(remaining / (2·P), floor)`, so early chunks are large (low
//!   scheduling overhead) and late chunks shrink toward the floor (bounded
//!   tail latency).
//! * [`Scheduling::Stealing`] — each thread owns a deque of pre-chopped
//!   chunks over its seed range (largest first); the owner pops from the
//!   front for sequential locality, and threads that run dry steal the
//!   smallest tail chunks from the back of a victim's deque. When the total
//!   work is too small to be worth deque setup, the pool silently falls back
//!   to the guided cursor.
//!
//! All four modes partition the seeded items exactly — every index is handed
//! out exactly once, chunks never cross a seed-range boundary — so any
//! commutative per-item computation (atomic counter increments, reduced
//! local histograms) yields results independent of the schedule. The pool
//! also tallies per-thread telemetry ([`ExecStats`]: chunks, items, steals,
//! CAS retries) that the drivers fold into `arm-metrics`.

use arm_faults::CancelToken;
use arm_mem::{CacheAligned, ChunkDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// How a data-parallel phase distributes its index space across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// The paper's static block split: thread `t` processes exactly its
    /// seed range. Deterministic oracle for the differential suite.
    Static,
    /// Shared cursor handing out fixed-size chunks of `chunk` items.
    Chunked {
        /// Number of items per chunk (clamped to at least 1).
        chunk: usize,
    },
    /// Guided self-scheduling: chunk = `max(remaining / (2·P), floor)`.
    Guided,
    /// Per-thread chunk deques with work stealing from the back.
    #[default]
    Stealing,
}

impl Scheduling {
    /// Stable lowercase label used in benches and reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheduling::Static => "static",
            Scheduling::Chunked { .. } => "chunked",
            Scheduling::Guided => "guided",
            Scheduling::Stealing => "stealing",
        }
    }
}

/// Per-thread scheduling telemetry, snapshotted from a [`ChunkPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Chunks this thread claimed (own deque, cursor, or stolen).
    pub chunks: u64,
    /// Items contained in those chunks.
    pub items: u64,
    /// Chunks this thread stole from another thread's deque.
    pub stolen: u64,
    /// Steal probes this thread issued (successful or not).
    pub steal_attempts: u64,
    /// Failed `compare_exchange` iterations on the shared cursor.
    pub cursor_retries: u64,
    /// Cancellation checkpoints this thread passed before claiming
    /// (zero unless the pool carries a [`CancelToken`]).
    pub cancel_checks: u64,
}

#[derive(Default)]
struct StatCells {
    chunks: AtomicU64,
    items: AtomicU64,
    stolen: AtomicU64,
    steal_attempts: AtomicU64,
    cursor_retries: AtomicU64,
    cancel_checks: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ExecStats {
        ExecStats {
            chunks: self.chunks.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            cursor_retries: self.cursor_retries.load(Ordering::Relaxed),
            cancel_checks: self.cancel_checks.load(Ordering::Relaxed),
        }
    }
}

enum CursorMode {
    Fixed(usize),
    Guided { floor: usize },
}

enum Repr {
    /// One seed range per thread, claimed at most once, never migrated.
    Static {
        ranges: Vec<Range<usize>>,
        taken: Vec<CacheAligned<AtomicBool>>,
    },
    /// Single atomic cursor over the virtual concatenation of the seed
    /// ranges; chunks are clipped at seed-range boundaries.
    Cursor {
        pos: AtomicUsize,
        /// `prefix[i]` = virtual start of `ranges[i]`; `prefix[n]` = total.
        prefix: Vec<usize>,
        ranges: Vec<Range<usize>>,
        mode: CursorMode,
    },
    /// Per-thread deques of pre-chopped chunks, shrinking toward the tail.
    Stealing {
        deques: Vec<CacheAligned<ChunkDeque<Range<usize>>>>,
    },
}

/// A shared pool of index chunks for one data-parallel phase.
///
/// Seeded with one range per thread (the phase's static split), it hands out
/// sub-ranges via [`ChunkPool::next`] according to the configured
/// [`Scheduling`]. Every seeded index is yielded exactly once across all
/// threads, and no yielded chunk crosses a seed-range boundary.
pub struct ChunkPool {
    repr: Repr,
    n_threads: usize,
    total: usize,
    stats: Vec<CacheAligned<StatCells>>,
    cancel: Option<CancelToken>,
}

impl ChunkPool {
    /// Default minimum chunk size for `Guided` and `Stealing`.
    ///
    /// 64 transactions is small enough that the final chunks cannot gate a
    /// barrier, and large enough that deque/cursor traffic stays far below
    /// the per-transaction tree-probe cost.
    pub const DEFAULT_FLOOR: usize = 64;

    /// Builds a pool over `ranges` (one seed range per thread) with the
    /// default chunk-size floor.
    pub fn new(ranges: &[Range<usize>], mode: Scheduling) -> Self {
        Self::with_floor(ranges, mode, Self::DEFAULT_FLOOR)
    }

    /// Builds a pool with an explicit chunk-size floor (items). The floor
    /// applies to `Guided` sizing and to `Stealing` chunk chopping; it is
    /// clamped to at least 1.
    pub fn with_floor(ranges: &[Range<usize>], mode: Scheduling, floor: usize) -> Self {
        assert!(
            !ranges.is_empty(),
            "ChunkPool needs at least one seed range"
        );
        let n = ranges.len();
        let floor = floor.max(1);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        let repr = match mode {
            Scheduling::Static => Repr::Static {
                ranges: ranges.to_vec(),
                taken: (0..n)
                    .map(|_| CacheAligned::new(AtomicBool::new(false)))
                    .collect(),
            },
            Scheduling::Chunked { chunk } => {
                Self::cursor_repr(ranges, CursorMode::Fixed(chunk.max(1)))
            }
            Scheduling::Guided => Self::cursor_repr(ranges, CursorMode::Guided { floor }),
            Scheduling::Stealing => {
                // Too little work to amortize deque setup: a guided cursor
                // distributes it with strictly less machinery and the same
                // exactly-once guarantee.
                if total < 2 * n * floor {
                    Self::cursor_repr(ranges, CursorMode::Guided { floor })
                } else {
                    let deques: Vec<_> = ranges
                        .iter()
                        .map(|r| CacheAligned::new(Self::chop(r.clone(), floor)))
                        .collect();
                    Repr::Stealing { deques }
                }
            }
        };
        ChunkPool {
            repr,
            n_threads: n,
            total,
            stats: (0..n)
                .map(|_| CacheAligned::new(StatCells::default()))
                .collect(),
            cancel: None,
        }
    }

    /// Attaches a cancellation token: every [`ChunkPool::next`] call
    /// checkpoints it first and yields `None` once the token trips, so a
    /// cancelled phase drains within one chunk claim per thread.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    fn cursor_repr(ranges: &[Range<usize>], mode: CursorMode) -> Repr {
        let mut prefix = Vec::with_capacity(ranges.len() + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for r in ranges {
            acc += r.len();
            prefix.push(acc);
        }
        Repr::Cursor {
            pos: AtomicUsize::new(0),
            prefix,
            ranges: ranges.to_vec(),
            mode,
        }
    }

    /// Chops one seed range into a deque of chunks: each chunk takes a
    /// quarter of what remains (never below `floor`), so the front holds
    /// large sequential chunks and the back holds floor-sized tails that
    /// are cheap to migrate on a steal.
    fn chop(range: Range<usize>, floor: usize) -> ChunkDeque<Range<usize>> {
        let deque = ChunkDeque::with_capacity(16);
        let mut start = range.start;
        while start < range.end {
            let remaining = range.end - start;
            let len = (remaining / 4).max(floor).min(remaining);
            deque.push_back(start..start + len);
            start += len;
        }
        deque
    }

    /// Number of worker threads (== number of seed ranges).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Total number of items seeded into the pool.
    pub fn total_items(&self) -> usize {
        self.total
    }

    /// Claims the next chunk for thread `t`, or `None` when the pool is
    /// drained. Each seeded index is returned exactly once across all
    /// threads; under `Static` thread `t` only ever sees its own seed range.
    ///
    /// With a token attached ([`ChunkPool::with_cancel_token`]) the claim
    /// checkpoints it first and returns `None` once it has tripped —
    /// indistinguishable from a drained pool, so worker loops need no
    /// extra cancellation logic.
    pub fn next(&self, t: usize) -> Option<Range<usize>> {
        if let Some(token) = &self.cancel {
            self.stats[t].cancel_checks.fetch_add(1, Ordering::Relaxed);
            if !token.checkpoint() {
                return None;
            }
        }
        let chunk = match &self.repr {
            Repr::Static { ranges, taken } => {
                let r = ranges.get(t)?;
                if r.is_empty() || taken[t].swap(true, Ordering::Relaxed) {
                    None
                } else {
                    Some(r.clone())
                }
            }
            Repr::Cursor {
                pos,
                prefix,
                ranges,
                mode,
            } => self.next_cursor(t, pos, prefix, ranges, mode),
            Repr::Stealing { deques } => self.next_stealing(t, deques),
        };
        if let Some(r) = &chunk {
            let cells = &self.stats[t];
            cells.chunks.fetch_add(1, Ordering::Relaxed);
            cells.items.fetch_add(r.len() as u64, Ordering::Relaxed);
        }
        chunk
    }

    fn next_cursor(
        &self,
        t: usize,
        pos: &AtomicUsize,
        prefix: &[usize],
        ranges: &[Range<usize>],
        mode: &CursorMode,
    ) -> Option<Range<usize>> {
        let total = *prefix.last().unwrap();
        loop {
            let v = pos.load(Ordering::Relaxed);
            if v >= total {
                return None;
            }
            let want = match *mode {
                CursorMode::Fixed(c) => c,
                CursorMode::Guided { floor } => ((total - v) / (2 * self.n_threads)).max(floor),
            };
            // Seed range containing virtual position v; chunks never cross
            // the boundary so `Static`-seeded weighted splits stay meaningful.
            let idx = prefix.partition_point(|&s| s <= v) - 1;
            let boundary = prefix[idx + 1];
            let new_v = (v + want).min(boundary);
            match pos.compare_exchange_weak(v, new_v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    let base = ranges[idx].start;
                    return Some(base + (v - prefix[idx])..base + (new_v - prefix[idx]));
                }
                Err(_) => {
                    self.stats[t].cursor_retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn next_stealing(
        &self,
        t: usize,
        deques: &[CacheAligned<ChunkDeque<Range<usize>>>],
    ) -> Option<Range<usize>> {
        // Owner path: next sequential chunk from our own front.
        if let Some(r) = deques[t].pop_front() {
            return Some(r);
        }
        // Steal path: probe victims round-robin, taking their smallest tail
        // chunk. Chunks are never added after seeding, so one full sweep
        // that finds every deque empty proves the pool is drained.
        let p = deques.len();
        let cells = &self.stats[t];
        for i in 1..p {
            let v = (t + i) % p;
            cells.steal_attempts.fetch_add(1, Ordering::Relaxed);
            if let Some(r) = deques[v].pop_back() {
                cells.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(r);
            }
        }
        None
    }

    /// Snapshot of thread `t`'s telemetry.
    pub fn thread_stats(&self, t: usize) -> ExecStats {
        self.stats[t].snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
        // Mirror of arm-dataset::block_ranges, local to avoid a dev-dep cycle.
        let base = n / p;
        let extra = n % p;
        let mut out = Vec::with_capacity(p);
        let mut start = 0;
        for t in 0..p {
            let len = base + usize::from(t >= p - extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Drains the pool single-threaded (round-robin over thread slots) and
    /// asserts exactly-once coverage of the seed ranges.
    fn assert_covers(pool: &ChunkPool, ranges: &[Range<usize>]) {
        let p = pool.n_threads();
        let mut got = Vec::new();
        let mut active = true;
        while active {
            active = false;
            for t in 0..p {
                if let Some(r) = pool.next(t) {
                    got.extend(r);
                    active = true;
                }
            }
        }
        got.sort_unstable();
        let want: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_modes_cover_exactly_once() {
        let modes = [
            Scheduling::Static,
            Scheduling::Chunked { chunk: 7 },
            Scheduling::Guided,
            Scheduling::Stealing,
        ];
        for p in [1, 2, 4, 8] {
            for n in [0, 1, 63, 500, 4096] {
                let ranges = block_ranges(n, p);
                for mode in modes {
                    let pool = ChunkPool::with_floor(&ranges, mode, 16);
                    assert_covers(&pool, &ranges);
                }
            }
        }
    }

    #[test]
    fn static_yields_own_range_once() {
        let ranges = block_ranges(100, 4);
        let pool = ChunkPool::new(&ranges, Scheduling::Static);
        for (t, r) in ranges.iter().enumerate() {
            assert_eq!(pool.next(t), Some(r.clone()));
            assert_eq!(pool.next(t), None);
            let s = pool.thread_stats(t);
            assert_eq!(s.chunks, 1);
            assert_eq!(s.items, r.len() as u64);
            assert_eq!(s.stolen, 0);
        }
    }

    #[test]
    fn chunked_respects_chunk_size_and_boundaries() {
        let ranges = vec![0..10, 10..95];
        let pool = ChunkPool::new(&ranges, Scheduling::Chunked { chunk: 8 });
        let mut prev_end = 0;
        while let Some(r) = pool.next(0) {
            assert!(r.len() <= 8);
            assert_eq!(r.start, prev_end);
            // Never crosses the 10-boundary mid-chunk.
            assert!(r.end <= 10 || r.start >= 10);
            prev_end = r.end;
        }
        assert_eq!(prev_end, 95);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn guided_chunks_shrink_toward_floor() {
        let ranges = [0..10_000];
        let pool = ChunkPool::with_floor(&ranges, Scheduling::Guided, 32);
        let mut sizes = Vec::new();
        while let Some(r) = pool.next(0) {
            sizes.push(r.len());
        }
        // Non-increasing, first chunk large, last chunks at the floor.
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(sizes[0], 10_000 / 2);
        assert!(*sizes.last().unwrap() <= 32);
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn stealing_drains_idle_victims() {
        // Thread 1 never calls next(); thread 0 must steal everything.
        let ranges = block_ranges(4096, 2);
        let pool = ChunkPool::with_floor(&ranges, Scheduling::Stealing, 64);
        let mut got = Vec::new();
        while let Some(r) = pool.next(0) {
            got.extend(r);
        }
        got.sort_unstable();
        assert_eq!(got, (0..4096).collect::<Vec<_>>());
        let s = pool.thread_stats(0);
        assert!(s.stolen > 0);
        assert!(s.steal_attempts >= s.stolen);
        assert_eq!(s.items, 4096);
    }

    #[test]
    fn stealing_falls_back_to_cursor_when_tiny() {
        // 2 threads * floor 64 * 2 = 256 > 100 items: cursor fallback, so no
        // steal telemetry, but coverage still exact.
        let ranges = block_ranges(100, 2);
        let pool = ChunkPool::with_floor(&ranges, Scheduling::Stealing, 64);
        assert_covers(&pool, &ranges);
        assert_eq!(pool.thread_stats(0).stolen + pool.thread_stats(1).stolen, 0);
    }

    #[test]
    fn concurrent_drain_covers_exactly_once() {
        for mode in [
            Scheduling::Chunked { chunk: 5 },
            Scheduling::Guided,
            Scheduling::Stealing,
        ] {
            let p = 8;
            let ranges = block_ranges(20_000, p);
            let pool = ChunkPool::with_floor(&ranges, mode, 16);
            let mut all: Vec<usize> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..p)
                    .map(|t| {
                        let pool = &pool;
                        s.spawn(move || {
                            let mut got = Vec::new();
                            while let Some(r) = pool.next(t) {
                                got.extend(r);
                            }
                            got
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            all.sort_unstable();
            assert_eq!(all, (0..20_000).collect::<Vec<_>>(), "mode {mode:?}");
            let items: u64 = (0..p).map(|t| pool.thread_stats(t).items).sum();
            assert_eq!(items, 20_000);
        }
    }

    #[test]
    fn empty_and_uneven_seeds() {
        // Empty ranges for some threads (e.g. p > candidates).
        let ranges = vec![0..0, 0..3, 3..3, 3..5];
        for mode in [
            Scheduling::Static,
            Scheduling::Chunked { chunk: 2 },
            Scheduling::Guided,
            Scheduling::Stealing,
        ] {
            let pool = ChunkPool::with_floor(&ranges, mode, 1);
            assert_covers(&pool, &ranges);
        }
    }

    #[test]
    fn cancelled_pool_stops_within_one_claim_per_thread() {
        for mode in [
            Scheduling::Static,
            Scheduling::Chunked { chunk: 4 },
            Scheduling::Guided,
            Scheduling::Stealing,
        ] {
            let ranges = block_ranges(1000, 4);
            let token = CancelToken::new();
            let pool = ChunkPool::with_floor(&ranges, mode, 8).with_cancel_token(token.clone());
            assert!(pool.next(0).is_some(), "live token claims normally");
            token.cancel();
            for t in 0..4 {
                assert_eq!(pool.next(t), None, "mode {mode:?} thread {t}");
                assert_eq!(
                    pool.thread_stats(t).cancel_checks,
                    if t == 0 { 2 } else { 1 }
                );
            }
        }
    }

    #[test]
    fn check_triggered_token_drains_deterministically() {
        let ranges = block_ranges(1000, 2);
        let token = CancelToken::new().cancel_after_checks(3);
        let pool = ChunkPool::with_floor(&ranges, Scheduling::Chunked { chunk: 10 }, 1)
            .with_cancel_token(token.clone());
        assert!(pool.next(0).is_some());
        assert!(pool.next(1).is_some());
        assert!(pool.next(0).is_none(), "third checkpoint trips the trigger");
        assert_eq!(token.checks(), 3);
    }

    #[test]
    fn pool_without_token_counts_no_checks() {
        let ranges = block_ranges(100, 2);
        let pool = ChunkPool::new(&ranges, Scheduling::Guided);
        while pool.next(0).is_some() {}
        assert_eq!(pool.thread_stats(0).cancel_checks, 0);
    }

    #[test]
    fn scheduling_names_are_stable() {
        assert_eq!(Scheduling::Static.name(), "static");
        assert_eq!(Scheduling::Chunked { chunk: 4 }.name(), "chunked");
        assert_eq!(Scheduling::Guided.name(), "guided");
        assert_eq!(Scheduling::Stealing.name(), "stealing");
        assert_eq!(Scheduling::default(), Scheduling::Stealing);
    }
}
