//! The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB'95) —
//! the two-scan comparator from the paper's related work (§7.1).
//!
//! Scan 1: split the database into memory-sized chunks and mine each
//! chunk *locally* (here with the vertical miner). Any globally frequent
//! itemset is locally frequent in at least one chunk (pigeonhole over the
//! proportional local supports), so the union of local results is a
//! superset of the global answer. Scan 2: count that candidate union
//! globally — one hash tree per itemset length — and filter.

use crate::eclat::mine_eclat;
use arm_balance::ModHash;
use arm_dataset::{block_ranges, Database, Item};
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, PlacementPolicy,
    TreeBuilder, WorkMeter,
};
use std::collections::BTreeSet;

/// Mines with the Partition algorithm. `min_support_fraction` must be a
/// fraction (local supports are proportional per chunk); `n_chunks ≥ 1`.
/// Output matches [`crate::apriori::MiningResult::all_itemsets`] ordering.
pub fn mine_partition(
    db: &Database,
    min_support_fraction: f64,
    n_chunks: usize,
    max_k: Option<u32>,
) -> Vec<(Vec<Item>, u32)> {
    let n_chunks = n_chunks.max(1);
    let global_minsup = {
        let s = (min_support_fraction * db.len() as f64).ceil();
        (s.max(1.0)) as u32
    };

    // ---- Scan 1: local mining per chunk --------------------------------
    let mut candidates: BTreeSet<Vec<Item>> = BTreeSet::new();
    for range in block_ranges(db.len(), n_chunks) {
        if range.is_empty() {
            continue;
        }
        // Rebuild the chunk as its own database (the on-disk algorithm
        // reads it into memory; we slice).
        let chunk = Database::from_transactions(
            db.n_items(),
            range.clone().map(|i| db.transaction(i).to_vec()),
        )
        .expect("chunk items are in range");
        let local_minsup = {
            let s = (min_support_fraction * chunk.len() as f64).ceil();
            (s.max(1.0)) as u32
        };
        for (items, _) in mine_eclat(&chunk, local_minsup, max_k) {
            candidates.insert(items);
        }
    }

    // ---- Scan 2: global support of the candidate union -----------------
    let mut out = Vec::new();
    let mut by_len: std::collections::BTreeMap<usize, CandidateSet> =
        std::collections::BTreeMap::new();
    for items in &candidates {
        by_len
            .entry(items.len())
            .or_insert_with(|| CandidateSet::new(items.len() as u32))
            .push(items);
    }
    for (len, cands) in by_len {
        let counts = if len == 1 {
            // Histogram instead of a degenerate tree.
            let hist = crate::f1::count_singletons(db, 0..db.len());
            (0..cands.len() as u32)
                .map(|id| hist[cands.get(id)[0] as usize])
                .collect::<Vec<u32>>()
        } else {
            let fanout = ((cands.len() as f64).powf(1.0 / len as f64).ceil() as u32).max(2);
            let hash = ModHash::new(fanout);
            let builder = TreeBuilder::new(&cands, &hash, 8);
            builder.insert_all();
            let tree = freeze_policy(&builder, PlacementPolicy::Gpp);
            let mut scratch = CountScratch::new(db.n_items(), tree.n_nodes());
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions::default(),
                &mut meter,
            );
            tree.inline_counts()
        };
        for (id, items) in cands.iter() {
            if counts[id as usize] >= global_minsup {
                out.push((items.to_vec(), counts[id as usize]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::mine_levelwise;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_chunk_equals_plain_mining() {
        let db = paper_db();
        let got = mine_partition(&db, 0.5, 1, None);
        let expected = mine_levelwise(&db, 2, None);
        assert_eq!(got, expected);
    }

    #[test]
    fn multiple_chunks_equal_plain_mining() {
        let db = paper_db();
        for chunks in [2usize, 3, 4, 7] {
            let got = mine_partition(&db, 0.5, chunks, None);
            let expected = mine_levelwise(&db, 2, None);
            assert_eq!(got, expected, "chunks={chunks}");
        }
    }

    #[test]
    fn larger_random_database_agrees() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let txns: Vec<Vec<u32>> = (0..300)
            .map(|_| (0..6).map(|_| rng.gen_range(0..20u32)).collect())
            .collect();
        let db = Database::from_transactions(20, txns).unwrap();
        let frac = 0.05;
        let minsup = (frac * db.len() as f64).ceil() as u32;
        let expected = mine_levelwise(&db, minsup, None);
        for chunks in [1usize, 3, 5] {
            assert_eq!(
                mine_partition(&db, frac, chunks, None),
                expected,
                "chunks={chunks}"
            );
        }
    }

    #[test]
    fn max_k_respected() {
        let db = paper_db();
        let got = mine_partition(&db, 0.5, 2, Some(2));
        assert!(got.iter().all(|(s, _)| s.len() <= 2));
        assert_eq!(got, mine_levelwise(&db, 2, Some(2)));
    }

    #[test]
    fn empty_database() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        assert!(mine_partition(&db, 0.1, 3, None).is_empty());
    }
}
