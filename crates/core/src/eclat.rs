//! Eclat-style vertical mining — the tidlist-intersection approach of the
//! authors' follow-up work (§7.1: "only simple intersection operations
//! are used to compute the frequent itemsets").
//!
//! The database is turned on its side: each frequent item carries the
//! sorted list of transaction ids containing it. An equivalence class of
//! itemsets sharing a prefix is extended depth-first; the support of a
//! join is the length of the intersection of the parents' tidlists. No
//! hash tree, no re-scanning — the trade-off is tidlist memory.
//!
//! Serves as an independent comparator for the Apriori implementations
//! (identical output, completely different mechanics).

use arm_dataset::{Database, Item, Tid};

/// A prefix-class member during the DFS: the extending item and the
/// tidlist of `prefix ∪ {item}`.
struct Member {
    item: Item,
    tids: Vec<Tid>,
}

/// Mines all frequent itemsets by vertical tidlist intersection.
/// Output is ordered by itemset length, then lexicographically, matching
/// [`crate::apriori::MiningResult::all_itemsets`].
pub fn mine_eclat(db: &Database, min_support: u32, max_k: Option<u32>) -> Vec<(Vec<Item>, u32)> {
    // `max_k = Some(0)` allows no itemset of any length — uniform across
    // every miner in the workspace (see the max_k edge-case suite).
    if max_k == Some(0) {
        return Vec::new();
    }
    let min_support = min_support.max(1);
    // Vertical representation of the frequent items.
    let mut tidlists: Vec<Vec<Tid>> = vec![Vec::new(); db.n_items() as usize];
    for (tid, txn) in db.iter().enumerate() {
        for &item in txn {
            tidlists[item as usize].push(tid as Tid);
        }
    }
    let mut root: Vec<Member> = Vec::new();
    for (i, tids) in tidlists.iter_mut().enumerate() {
        if tids.len() >= min_support as usize {
            root.push(Member {
                item: i as Item,
                tids: std::mem::take(tids),
            });
        }
    }

    let mut out = Vec::new();
    for m in &root {
        out.push((vec![m.item], m.tids.len() as u32));
    }
    let mut prefix = Vec::new();
    if max_k != Some(1) {
        extend(&root, &mut prefix, min_support, max_k, &mut out);
    }
    // DFS emits prefix order; canonicalize to length-then-lex.
    out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

fn extend(
    class: &[Member],
    prefix: &mut Vec<Item>,
    min_support: u32,
    max_k: Option<u32>,
    out: &mut Vec<(Vec<Item>, u32)>,
) {
    for (i, a) in class.iter().enumerate() {
        let mut child_class = Vec::new();
        for b in &class[i + 1..] {
            let tids = intersect(&a.tids, &b.tids);
            if tids.len() >= min_support as usize {
                child_class.push(Member { item: b.item, tids });
            }
        }
        if child_class.is_empty() {
            continue;
        }
        prefix.push(a.item);
        for m in &child_class {
            let mut items = prefix.clone();
            items.push(m.item);
            out.push((items, m.tids.len() as u32));
        }
        let depth = prefix.len() as u32 + 1; // length of emitted itemsets
        if max_k.is_none_or(|cap| depth < cap) {
            extend(&child_class, prefix, min_support, max_k, out);
        }
        prefix.pop();
    }
}

/// Sorted-list intersection (the hot kernel of vertical mining).
pub fn intersect(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::mine_levelwise;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn intersect_basics() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<Tid>::new());
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<Tid>::new());
        assert_eq!(intersect(&[1, 2, 3], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn matches_levelwise_on_worked_example() {
        let db = paper_db();
        for minsup in 1..=4 {
            assert_eq!(
                mine_eclat(&db, minsup, None),
                mine_levelwise(&db, minsup, None),
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn max_k_caps_depth() {
        let db = paper_db();
        let got = mine_eclat(&db, 2, Some(2));
        assert!(got.iter().all(|(s, _)| s.len() <= 2));
        assert_eq!(got, mine_levelwise(&db, 2, Some(2)));
        let ones = mine_eclat(&db, 2, Some(1));
        assert!(ones.iter().all(|(s, _)| s.len() == 1));
    }

    #[test]
    fn empty_database() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        assert!(mine_eclat(&db, 1, None).is_empty());
    }
}
