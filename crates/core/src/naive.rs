//! Reference miners used as ground truth by tests and property checks.
//!
//! Two independent implementations:
//! * [`mine_levelwise`] — Apriori structure but with brute-force subset
//!   counting (no hash tree), exercising the candidate-generation logic
//!   against a trivial counting path;
//! * [`mine_exhaustive`] — full powerset enumeration for tiny item
//!   universes (`n_items ≤ 20`), independent of *all* mining machinery.

use crate::f1::frequent_singletons;
use crate::generation::generate_candidates;
use crate::level::FrequentLevel;
use arm_dataset::{Database, Item};
use arm_hashtree::{naive_counts, CandidateSet};

/// Apriori with naive counting. Returns `(items, support)` for every
/// frequent itemset, ordered by length then lexicographically.
pub fn mine_levelwise(
    db: &Database,
    min_support: u32,
    max_k: Option<u32>,
) -> Vec<(Vec<Item>, u32)> {
    // Uniform `max_k` semantics: a cap of 0 allows nothing.
    if max_k == Some(0) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut level = frequent_singletons(db, min_support);
    let mut k = 1u32;
    loop {
        for (s, c) in level.iter() {
            out.push((s.to_vec(), c));
        }
        if level.is_empty() || max_k.is_some_and(|m| k >= m) {
            break;
        }
        let (cands, _) = generate_candidates(&level);
        if cands.is_empty() {
            break;
        }
        let counts = naive_counts(&cands, db);
        let mut sets = CandidateSet::new(k + 1);
        let mut sups = Vec::new();
        for (id, items) in cands.iter() {
            if counts[id as usize] >= min_support {
                sets.push(items);
                sups.push(counts[id as usize]);
            }
        }
        level = FrequentLevel::new(sets, sups);
        k += 1;
    }
    out
}

/// Exhaustive powerset miner for tiny universes. Panics when
/// `db.n_items() > 20` (the 2^n enumeration would be unreasonable).
pub fn mine_exhaustive(db: &Database, min_support: u32) -> Vec<(Vec<Item>, u32)> {
    let n = db.n_items();
    assert!(n <= 20, "exhaustive miner is for tiny universes only");
    // Encode transactions as bitmasks.
    let masks: Vec<u32> = db
        .iter()
        .map(|t| t.iter().fold(0u32, |m, &i| m | (1 << i)))
        .collect();
    let mut out = Vec::new();
    for set in 1u32..(1 << n) {
        let support = masks.iter().filter(|&&m| m & set == set).count() as u32;
        if support >= min_support {
            let items: Vec<Item> = (0..n).filter(|&i| set & (1 << i) != 0).collect();
            out.push((items, support));
        }
    }
    // Order by length then lexicographic, matching the level-wise miners.
    out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn levelwise_matches_worked_example() {
        let got = mine_levelwise(&paper_db(), 2, None);
        let names: Vec<Vec<u32>> = got.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(
            names,
            vec![
                vec![1],
                vec![2],
                vec![4],
                vec![5],
                vec![1, 2],
                vec![1, 4],
                vec![1, 5],
                vec![4, 5],
                vec![1, 4, 5],
            ]
        );
    }

    #[test]
    fn exhaustive_agrees_with_levelwise() {
        let db = paper_db();
        for minsup in 1..=4 {
            assert_eq!(
                mine_levelwise(&db, minsup, None),
                mine_exhaustive(&db, minsup),
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn max_k_truncates() {
        let got = mine_levelwise(&paper_db(), 2, Some(1));
        assert!(got.iter().all(|(s, _)| s.len() == 1));
        assert_eq!(got.len(), 4);
    }

    #[test]
    #[should_panic(expected = "tiny universes")]
    fn exhaustive_rejects_large_universe() {
        let db = Database::from_transactions(30, [vec![0u32]]).unwrap();
        mine_exhaustive(&db, 1);
    }
}
