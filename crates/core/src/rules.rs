//! Rule generation — the second step of association mining (§2).
//!
//! For every frequent itemset `X` and non-empty `Y ⊂ X`, the rule
//! `X - Y ⇒ Y` holds when `support(X) / support(X - Y) ≥ min_confidence`.
//! We implement the ap-genrules strategy of Agrawal & Srikant: consequents
//! grow level-wise, and a consequent is extended only if it met the
//! confidence bar (confidence is anti-monotone in the consequent —
//! `support(X - Y)` can only grow as `Y` shrinks).

use crate::apriori::MiningResult;
use crate::generation::equivalence_classes;
use crate::level::FrequentLevel;
use arm_dataset::Item;
use arm_hashtree::CandidateSet;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The left-hand side (`X - Y`), sorted.
    pub antecedent: Vec<Item>,
    /// The right-hand side (`Y`), sorted, disjoint from the antecedent.
    pub consequent: Vec<Item>,
    /// `support(X)` in absolute transactions.
    pub support: u32,
    /// `support(X) / support(X - Y)`.
    pub confidence: f64,
}

impl Rule {
    /// Lift: `P(A ∧ B) / (P(A) · P(B))` — how much more often the rule
    /// fires than if the sides were independent (1.0 = independent).
    /// Needs the consequent's standalone support and the database size.
    pub fn lift(&self, consequent_support: u32, n_txns: usize) -> f64 {
        if consequent_support == 0 || n_txns == 0 {
            return 0.0;
        }
        self.confidence / (consequent_support as f64 / n_txns as f64)
    }

    /// Leverage: `P(A ∧ B) - P(A) · P(B)` (0.0 = independent).
    pub fn leverage(&self, antecedent_support: u32, consequent_support: u32, n_txns: usize) -> f64 {
        if n_txns == 0 {
            return 0.0;
        }
        let n = n_txns as f64;
        self.support as f64 / n - (antecedent_support as f64 / n) * (consequent_support as f64 / n)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} => {:?} (sup {}, conf {:.3})",
            self.antecedent, self.consequent, self.support, self.confidence
        )
    }
}

/// Generates all rules meeting `min_confidence` from a mining result.
/// Rules are emitted in order of the generating itemset, then consequent
/// size.
pub fn generate_rules(result: &MiningResult, min_confidence: f64) -> Vec<Rule> {
    let mut rules = Vec::new();
    for level in result.levels.iter().filter(|l| l.k() >= 2) {
        for i in 0..level.len() {
            rules_for_itemset(result, level, i, min_confidence, &mut rules);
        }
    }
    rules
}

/// ap-genrules for one frequent itemset.
fn rules_for_itemset(
    result: &MiningResult,
    level: &FrequentLevel,
    idx: usize,
    min_confidence: f64,
    out: &mut Vec<Rule>,
) {
    let x = level.get(idx);
    let support_x = level.support(idx);
    let k = x.len();

    // Level 1 consequents: single items.
    let mut current = CandidateSet::new(1);
    for &item in x {
        current.push(&[item]);
    }

    let mut consequent_len = 1usize;
    while consequent_len < k && !current.is_empty() {
        let mut survivors = CandidateSet::new(consequent_len as u32);
        for (_, y) in current.iter() {
            let antecedent = difference(x, y);
            let support_ant = result
                .support_of(&antecedent)
                .expect("antecedent of a frequent itemset must be frequent");
            let confidence = support_x as f64 / support_ant as f64;
            if confidence >= min_confidence {
                out.push(Rule {
                    antecedent,
                    consequent: y.to_vec(),
                    support: support_x,
                    confidence,
                });
                survivors.push(y);
            }
        }
        // Grow consequents by joining the survivors (Apriori-style).
        consequent_len += 1;
        if consequent_len >= k {
            break;
        }
        current = join_consequents(&survivors);
    }
}

/// Sorted set difference `x \ y`.
fn difference(x: &[Item], y: &[Item]) -> Vec<Item> {
    let mut out = Vec::with_capacity(x.len() - y.len());
    let mut j = 0usize;
    for &v in x {
        if j < y.len() && y[j] == v {
            j += 1;
        } else {
            out.push(v);
        }
    }
    out
}

/// Joins size-m consequents into size-(m+1) candidates (prefix join, no
/// pruning — the confidence test dominates at these sizes).
fn join_consequents(survivors: &CandidateSet) -> CandidateSet {
    let m = survivors.k();
    let mut out = CandidateSet::new(m + 1);
    if survivors.len() < 2 {
        return out;
    }
    // Reuse the equivalence-class machinery via a throwaway level.
    let fake = FrequentLevel::new(survivors.clone(), vec![0; survivors.len()]);
    let mut scratch = Vec::with_capacity(m as usize + 1);
    for class in equivalence_classes(&fake) {
        for i in class.clone() {
            for j in (i + 1)..class.end {
                let a = fake.get(i as usize);
                let b = fake.get(j as usize);
                scratch.clear();
                scratch.extend_from_slice(a);
                scratch.push(b[m as usize - 1]);
                out.push(&scratch);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::mine;
    use crate::config::{AprioriConfig, Support};
    use arm_dataset::Database;

    fn paper_result() -> MiningResult {
        let db = Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap();
        let cfg = AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        mine(&db, &cfg)
    }

    #[test]
    fn difference_works() {
        assert_eq!(difference(&[1, 4, 5], &[4]), vec![1, 5]);
        assert_eq!(difference(&[1, 4, 5], &[1, 5]), vec![4]);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
    }

    #[test]
    fn full_confidence_rules() {
        let r = paper_result();
        let rules = generate_rules(&r, 1.0);
        // Conf-1.0 rules from the worked example:
        //   2 ⇒ 1 (2/2); 5 ⇒ 4 (3/3); 4 ⇒ 5 (3/3);
        //   from (1,4,5): (1,4) ⇒ 5, (1,5) ⇒ 4 (2/2 each), 4,5 ⇒ 1? 2/3 no.
        //   1 ⇒ ... 2/3 no.
        let fmt: Vec<String> = rules
            .iter()
            .map(|r| format!("{:?}=>{:?}", r.antecedent, r.consequent))
            .collect();
        assert!(fmt.contains(&"[2]=>[1]".to_string()), "{fmt:?}");
        assert!(fmt.contains(&"[4]=>[5]".to_string()));
        assert!(fmt.contains(&"[5]=>[4]".to_string()));
        assert!(fmt.contains(&"[1, 4]=>[5]".to_string()));
        assert!(fmt.contains(&"[1, 5]=>[4]".to_string()));
        assert!(!fmt.contains(&"[4, 5]=>[1]".to_string()));
        for rule in &rules {
            assert!(rule.confidence >= 1.0);
        }
    }

    #[test]
    fn lower_confidence_adds_rules() {
        let r = paper_result();
        let strict = generate_rules(&r, 1.0);
        let loose = generate_rules(&r, 0.6);
        assert!(loose.len() > strict.len());
        // 4,5 ⇒ 1 has confidence 2/3 ≈ 0.667.
        let found = loose
            .iter()
            .find(|ru| ru.antecedent == vec![4, 5] && ru.consequent == vec![1])
            .expect("4,5 => 1 at conf 0.6");
        assert!((found.confidence - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(found.support, 2);
    }

    #[test]
    fn multi_item_consequents_appear() {
        let r = paper_result();
        let rules = generate_rules(&r, 0.5);
        // 1 ⇒ 4,5 : support(1,4,5)/support(1) = 2/3 ≥ 0.5.
        assert!(
            rules
                .iter()
                .any(|ru| ru.antecedent == vec![1] && ru.consequent == vec![4, 5]),
            "expected 1 => 4,5 among {rules:?}"
        );
    }

    #[test]
    fn lift_and_leverage() {
        let r = paper_result();
        let n = 4usize;
        let rules = generate_rules(&r, 0.6);
        // 4 ⇒ 5: conf 1.0, P(5) = 3/4 → lift 4/3; leverage 3/4 - (3/4)(3/4).
        let rule = rules
            .iter()
            .find(|ru| ru.antecedent == vec![4] && ru.consequent == vec![5])
            .unwrap();
        let sup5 = r.support_of(&[5]).unwrap();
        let sup4 = r.support_of(&[4]).unwrap();
        assert!((rule.lift(sup5, n) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rule.leverage(sup4, sup5, n) - (0.75 - 0.5625)).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(rule.lift(0, n), 0.0);
        assert_eq!(rule.lift(sup5, 0), 0.0);
        assert_eq!(rule.leverage(sup4, sup5, 0), 0.0);
    }

    #[test]
    fn confidence_anti_monotone_pruning_is_sound() {
        // Every rule in loose mode must also be derivable brute-force.
        let r = paper_result();
        for min_conf in [0.4, 0.6, 0.8, 1.0] {
            let rules = generate_rules(&r, min_conf);
            for rule in &rules {
                let mut x = rule.antecedent.clone();
                x.extend(&rule.consequent);
                x.sort_unstable();
                let sx = r.support_of(&x).unwrap();
                let sa = r.support_of(&rule.antecedent).unwrap();
                assert_eq!(rule.support, sx);
                assert!((rule.confidence - sx as f64 / sa as f64).abs() < 1e-12);
                assert!(rule.confidence >= min_conf);
            }
            // And none missed: brute-force enumeration.
            let mut brute = 0usize;
            for (items, sup) in r.all_itemsets() {
                if items.len() < 2 {
                    continue;
                }
                let n = items.len();
                for mask in 1..(1u32 << n) - 1 {
                    let mut ant = Vec::new();
                    let mut con = Vec::new();
                    for (b, &it) in items.iter().enumerate() {
                        if mask & (1 << b) != 0 {
                            con.push(it);
                        } else {
                            ant.push(it);
                        }
                    }
                    let sa = r.support_of(&ant).unwrap();
                    if sup as f64 / sa as f64 >= min_conf {
                        brute += 1;
                    }
                }
            }
            assert_eq!(rules.len(), brute, "min_conf={min_conf}");
        }
    }
}
