//! Candidate generation: optimized join over prefix equivalence classes,
//! subset pruning, and the adaptive fan-out formula (§3.1.1).
//!
//! `C_k` is formed by joining `F_{k-1}` with itself. Because `F_{k-1}` is
//! lexicographically sorted, itemsets sharing a `(k-2)`-prefix form a
//! contiguous *equivalence class*; joins happen only within a class (all
//! `C(|S_i|, 2)` member pairs), and the resulting candidate is pruned
//! unless its remaining `k-2` subsets are frequent too.

use crate::level::FrequentLevel;
use arm_dataset::Item;
use arm_hashtree::CandidateSet;
use std::ops::Range;

/// Contiguous ranges of `level` sharing a common `(k-1)-1`-item prefix.
/// For `F_1` there is a single class (the empty prefix).
pub fn equivalence_classes(level: &FrequentLevel) -> Vec<Range<u32>> {
    let n = level.len() as u32;
    if n == 0 {
        return Vec::new();
    }
    let prefix = level.k() as usize - 1;
    let mut classes = Vec::new();
    let mut start = 0u32;
    for i in 1..n {
        if level.get(i as usize)[..prefix] != level.get(start as usize)[..prefix] {
            classes.push(start..i);
            start = i;
        }
    }
    classes.push(start..n);
    classes
}

/// Join workload of one class: `C(|S|, 2)` pairs.
pub fn class_weight(class: &Range<u32>) -> u64 {
    let s = (class.end - class.start) as u64;
    s * (s - 1) / 2
}

/// The adaptive fan-out rule `H > (Σ C(|S_i|,2) / T)^(1/k)` (§3.1.1),
/// clamped to at least 2.
pub fn adaptive_fanout(classes: &[Range<u32>], leaf_threshold: usize, k: u32) -> u32 {
    let total: u64 = classes.iter().map(class_weight).sum();
    if total == 0 {
        return 2;
    }
    let x = (total as f64 / leaf_threshold as f64).powf(1.0 / k as f64);
    (x.floor() as u32 + 1).max(2)
}

/// Generates the candidates of one equivalence class into `out`,
/// returning the number of join pairs considered (the class's workload).
///
/// The paper's pruning refinement is applied: the two `(k-1)`-subsets that
/// produced the candidate are frequent by construction, so only the
/// remaining `k-2` subsets are checked.
pub fn generate_class(
    level: &FrequentLevel,
    class: Range<u32>,
    out: &mut CandidateSet,
    scratch: &mut Vec<Item>,
) -> u64 {
    let k_prev = level.k() as usize;
    let mut pairs = 0u64;
    for i in class.clone() {
        for j in (i + 1)..class.end {
            pairs += 1;
            let a = level.get(i as usize);
            let b = level.get(j as usize);
            // Candidate = common prefix + a's last + b's last (a < b).
            scratch.clear();
            scratch.extend_from_slice(a);
            scratch.push(b[k_prev - 1]);
            if survives_prune(level, scratch) {
                out.push(scratch);
            }
        }
    }
    pairs
}

/// Generates the candidates initiated by the *first* member of `range`
/// (joins with every later member of the same equivalence class), with
/// pruning. This is the member-granularity work unit of the parallel
/// computation-balancing scheme (§3.1.2): the paper's triangular
/// workloads `w_i = n - i - 1` are exactly the join counts of these
/// units.
pub fn generate_class_member(
    level: &FrequentLevel,
    range: std::ops::Range<u32>,
    out: &mut CandidateSet,
    scratch: &mut Vec<Item>,
) -> u64 {
    let k_prev = level.k() as usize;
    let Some(i) = range.clone().next() else {
        return 0;
    };
    let mut pairs = 0u64;
    for j in (i + 1)..range.end {
        pairs += 1;
        let a = level.get(i as usize);
        let b = level.get(j as usize);
        scratch.clear();
        scratch.extend_from_slice(a);
        scratch.push(b[k_prev - 1]);
        if survives_prune(level, scratch) {
            out.push(scratch);
        }
    }
    pairs
}

/// Checks the `k-2` non-parent `(k-1)`-subsets of `candidate` for
/// frequency. (Removing index `k-1` or `k-2` yields the two parents.)
fn survives_prune(level: &FrequentLevel, candidate: &[Item]) -> bool {
    let k = candidate.len();
    if k <= 2 {
        return true; // both subsets are the parents themselves
    }
    let mut subset = Vec::with_capacity(k - 1);
    for drop in 0..k - 2 {
        subset.clear();
        for (i, &item) in candidate.iter().enumerate() {
            if i != drop {
                subset.push(item);
            }
        }
        if level.find(&subset).is_none() {
            return false;
        }
    }
    true
}

/// Generates the full candidate set `C_k` from `F_{k-1}` (sequential).
/// Returns the candidates (lexicographically sorted by construction) and
/// the total join workload.
pub fn generate_candidates(level: &FrequentLevel) -> (CandidateSet, u64) {
    let k = level.k() + 1;
    let mut out = CandidateSet::new(k);
    let mut scratch = Vec::with_capacity(k as usize);
    let mut pairs = 0u64;
    for class in equivalence_classes(level) {
        pairs += generate_class(level, class, &mut out, &mut scratch);
    }
    debug_assert!(out.is_sorted_unique());
    (out, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_from(k: u32, sets: &[&[Item]], supports: &[u32]) -> FrequentLevel {
        let mut c = CandidateSet::new(k);
        for s in sets {
            c.push(s);
        }
        FrequentLevel::new(c, supports.to_vec())
    }

    #[test]
    fn f1_single_class() {
        let l = level_from(1, &[&[1], &[2], &[4], &[5]], &[3, 2, 3, 3]);
        let classes = equivalence_classes(&l);
        assert_eq!(classes, vec![0..4]);
        assert_eq!(class_weight(&classes[0]), 6);
    }

    #[test]
    fn paper_c2_from_f1() {
        // §2.1.3: F1 = {1,2,4,5} → C2 = all 6 pairs.
        let l = level_from(1, &[&[1], &[2], &[4], &[5]], &[3, 2, 3, 3]);
        let (c2, pairs) = generate_candidates(&l);
        assert_eq!(pairs, 6);
        let got: Vec<Vec<Item>> = c2.iter().map(|(_, s)| s.to_vec()).collect();
        assert_eq!(
            got,
            vec![
                vec![1, 2],
                vec![1, 4],
                vec![1, 5],
                vec![2, 4],
                vec![2, 5],
                vec![4, 5]
            ]
        );
    }

    #[test]
    fn paper_c3_pruning() {
        // §2.1.3: F2 = {(1,2),(1,4),(1,5),(4,5)}. The join yields
        // (1,2,4),(1,2,5),(1,4,5); pruning kills the first two because
        // (2,4) and (2,5) are not frequent.
        let l = level_from(2, &[&[1, 2], &[1, 4], &[1, 5], &[4, 5]], &[2, 2, 2, 3]);
        let classes = equivalence_classes(&l);
        assert_eq!(classes, vec![0..3, 3..4]);
        let (c3, pairs) = generate_candidates(&l);
        assert_eq!(pairs, 3);
        assert_eq!(c3.len(), 1);
        assert_eq!(c3.get(0), &[1, 4, 5]);
    }

    #[test]
    fn classes_split_on_prefix() {
        let l = level_from(
            2,
            &[&[0, 1], &[0, 2], &[1, 2], &[1, 3], &[1, 4], &[7, 9]],
            &[1; 6],
        );
        let classes = equivalence_classes(&l);
        assert_eq!(classes, vec![0..2, 2..5, 5..6]);
        assert_eq!(class_weight(&classes[1]), 3);
        assert_eq!(class_weight(&classes[2]), 0);
    }

    #[test]
    fn empty_level_generates_nothing() {
        let l = level_from(2, &[], &[]);
        assert!(equivalence_classes(&l).is_empty());
        let (c, pairs) = generate_candidates(&l);
        assert!(c.is_empty());
        assert_eq!(pairs, 0);
    }

    #[test]
    fn adaptive_fanout_grows_with_candidates() {
        // One class of 100 items: ~4950 pairs. T=8, k=2: H > (4950/8)^0.5
        // ≈ 24.9 → 25.
        let h = adaptive_fanout(std::slice::from_ref(&(0..100)), 8, 2);
        assert_eq!(h, 25);
        // Deeper iterations need smaller H for the same volume.
        let h3 = adaptive_fanout(std::slice::from_ref(&(0..100)), 8, 3);
        assert!(h3 < h);
        assert_eq!(adaptive_fanout(&[], 8, 2), 2);
        assert_eq!(adaptive_fanout(std::slice::from_ref(&(0..1)), 8, 2), 2);
    }

    #[test]
    fn prune_checks_non_parent_subsets_only() {
        // F3 with a hole: candidate (0,1,2,3) joins from (0,1,2)+(0,1,3);
        // parents frequent, but (0,2,3) missing → pruned; (1,2,3) present.
        let l = level_from(3, &[&[0, 1, 2], &[0, 1, 3], &[1, 2, 3]], &[5, 5, 5]);
        let (c4, _) = generate_candidates(&l);
        assert!(c4.is_empty());

        // Now with (0,2,3) present the candidate survives.
        let l2 = level_from(
            3,
            &[&[0, 1, 2], &[0, 1, 3], &[0, 2, 3], &[1, 2, 3]],
            &[5; 4],
        );
        let (c4b, _) = generate_candidates(&l2);
        assert_eq!(c4b.len(), 1);
        assert_eq!(c4b.get(0), &[0, 1, 2, 3]);
    }
}
