//! Mining configuration: every optimization of §3–§5 is a knob here, so
//! the benchmark harness can reproduce the paper's base/optimized pairs.

use arm_hashtree::{PlacementPolicy, VisitedMode};

/// Minimum support specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Support {
    /// Fraction of the database size (the paper's "0.5%" = `0.005`).
    Fraction(f64),
    /// Absolute transaction count.
    Absolute(u32),
}

impl Support {
    /// Resolves to an absolute count for a database of `n` transactions
    /// (rounded up, clamped to ≥ 1).
    pub fn absolute(self, n: usize) -> u32 {
        match self {
            Support::Absolute(a) => a.max(1),
            Support::Fraction(f) => {
                let s = (f * n as f64).ceil();
                s.max(1.0) as u32
            }
        }
    }
}

/// Which item-to-cell hash the tree uses (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashScheme {
    /// The naive `i mod H` (the unoptimized base case).
    Interleaved,
    /// The bitonic indirection vector built from the frequent items
    /// (the TREE optimization).
    Bitonic,
}

/// Full configuration of a mining run.
#[derive(Debug, Clone)]
pub struct AprioriConfig {
    /// Minimum support.
    pub min_support: Support,
    /// Leaf split threshold `T` (small values mean fast leaf scans).
    pub leaf_threshold: usize,
    /// Tree hash function choice.
    pub hash_scheme: HashScheme,
    /// Derive the fan-out per iteration from `H > (Σ C(|Si|,2)/T)^(1/k)`
    /// (§3.1.1). When false, `fixed_fanout` is used.
    pub adaptive_fanout: bool,
    /// Fan-out used when `adaptive_fanout` is off.
    pub fixed_fanout: u32,
    /// Short-circuited subset checking (§4.2).
    pub short_circuit: bool,
    /// VISITED stamp storage: per-node, or the paper's reduced `k·H·P`
    /// path-tagged scheme (§4.2).
    pub visited: VisitedMode,
    /// DHP-style pair filtering (Park et al.): collect a hashed pair-count
    /// table of this many buckets during the first scan and prune `C_2`
    /// candidates whose bucket count is below the minimum support.
    /// `None` disables the filter (the paper's configuration).
    pub pair_filter_buckets: Option<usize>,
    /// Memory placement policy (§5).
    pub placement: PlacementPolicy,
    /// Optional cap on the itemset length mined.
    pub max_k: Option<u32>,
    /// Counting fast path: hash each transaction item once per transaction
    /// and index the memo table during the walk instead of re-hashing per
    /// node visit.
    pub hash_memo: bool,
    /// Counting fast path: trim each transaction to the items appearing in
    /// some candidate before walking it (lossless; the database itself
    /// stays untouched).
    pub trim_transactions: bool,
    /// Counting fast path: drive the walk with an explicit reusable frame
    /// stack instead of native recursion (identical traversal and work
    /// tallies).
    pub iterative_walk: bool,
    /// Counting fast path: keep counting scratch (bitmaps, stamps, memo
    /// and trim buffers) alive across iterations instead of reallocating
    /// it per iteration.
    pub reuse_scratch: bool,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            min_support: Support::Fraction(0.005),
            leaf_threshold: 8,
            hash_scheme: HashScheme::Bitonic,
            adaptive_fanout: true,
            fixed_fanout: 8,
            short_circuit: true,
            visited: VisitedMode::PerNode,
            pair_filter_buckets: None,
            placement: PlacementPolicy::Gpp,
            max_k: None,
            hash_memo: true,
            trim_transactions: true,
            iterative_walk: true,
            reuse_scratch: true,
        }
    }
}

impl AprioriConfig {
    /// The paper's *unoptimized* baseline: interleaved hash, fixed fan-out,
    /// no short-circuiting, standard-malloc placement, and none of the
    /// counting fast paths.
    pub fn unoptimized() -> Self {
        AprioriConfig {
            min_support: Support::Fraction(0.005),
            leaf_threshold: 8,
            hash_scheme: HashScheme::Interleaved,
            adaptive_fanout: false,
            fixed_fanout: 8,
            short_circuit: false,
            visited: VisitedMode::PerNode,
            pair_filter_buckets: None,
            placement: PlacementPolicy::Ccpd,
            max_k: None,
            hash_memo: false,
            trim_transactions: false,
            iterative_walk: false,
            reuse_scratch: false,
        }
    }

    /// Builder-style support setter.
    pub fn with_support(mut self, s: Support) -> Self {
        self.min_support = s;
        self
    }

    /// Builder-style placement setter.
    pub fn with_placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_resolution() {
        assert_eq!(Support::Fraction(0.005).absolute(100_000), 500);
        assert_eq!(Support::Fraction(0.0).absolute(100), 1);
        assert_eq!(Support::Absolute(0).absolute(10), 1);
        assert_eq!(Support::Absolute(7).absolute(10), 7);
        assert_eq!(Support::Fraction(0.26).absolute(4), 2);
    }

    #[test]
    fn presets_differ() {
        let opt = AprioriConfig::default();
        let base = AprioriConfig::unoptimized();
        assert_ne!(opt.hash_scheme, base.hash_scheme);
        assert!(opt.short_circuit && !base.short_circuit);
        assert!(opt.adaptive_fanout && !base.adaptive_fanout);
        assert!(opt.hash_memo && !base.hash_memo);
        assert!(opt.trim_transactions && !base.trim_transactions);
        assert!(opt.iterative_walk && !base.iterative_walk);
        assert!(opt.reuse_scratch && !base.reuse_scratch);
    }

    #[test]
    fn builder_setters() {
        let c = AprioriConfig::default()
            .with_support(Support::Absolute(3))
            .with_placement(PlacementPolicy::Lpp);
        assert_eq!(c.min_support, Support::Absolute(3));
        assert_eq!(c.placement, PlacementPolicy::Lpp);
    }
}
