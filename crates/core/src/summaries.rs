//! Condensed representations of a mining result: *maximal* and *closed*
//! frequent itemsets.
//!
//! The paper's related-work section surveys maximal-itemset miners
//! (All-MFS, Pincer-Search, MaxMiner); downstream users routinely want
//! these summaries, so we derive them from the level-wise result:
//!
//! * an itemset is **maximal** when no frequent superset exists;
//! * an itemset is **closed** when no frequent superset has the *same*
//!   support (closed sets preserve all support information; maximal sets
//!   preserve only the frequent/infrequent border).

use crate::apriori::MiningResult;
use arm_dataset::Item;

/// Returns all maximal frequent itemsets with their supports, ordered by
/// length then lexicographically.
pub fn maximal_itemsets(result: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    filter_by_superset(result, |_, _| true)
}

/// Returns all closed frequent itemsets with their supports, ordered by
/// length then lexicographically.
pub fn closed_itemsets(result: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    // An itemset is pruned only when a superset with *equal* support
    // exists.
    filter_by_superset(result, |sub_support, super_support| {
        sub_support == super_support
    })
}

/// Shared engine: keep an itemset unless some frequent (k+1)-superset
/// satisfies `prunes(support(subset), support(superset))`.
///
/// Level `k+1` supersets suffice: superset relations compose, so if any
/// larger superset prunes `X`, some intermediate (k+1)-superset does too
/// (for maximality trivially; for closedness because support is
/// monotone along the chain — equal support at the far end forces equal
/// support at every step).
fn filter_by_superset(
    result: &MiningResult,
    prunes: impl Fn(u32, u32) -> bool,
) -> Vec<(Vec<Item>, u32)> {
    let mut out = Vec::new();
    let mut subset = Vec::new();
    for (li, level) in result.levels.iter().enumerate() {
        let next = result.levels.get(li + 1);
        for i in 0..level.len() {
            let items = level.get(i);
            let support = level.support(i);
            let mut pruned = false;
            if let Some(next) = next {
                // Check the (k+1)-supersets of `items`: a superset is any
                // next-level itemset containing all of `items`. Instead of
                // scanning the next level, enumerate candidates by
                // *inserting* each possible item — but that is O(N);
                // scanning the next level with a subset test is O(|F_{k+1}| · k)
                // and independent of the item universe, so scan.
                for j in 0..next.len() {
                    let sup_items = next.get(j);
                    if arm_hashtree::is_subset(items, sup_items) && prunes(support, next.support(j))
                    {
                        pruned = true;
                        break;
                    }
                }
            }
            if !pruned {
                subset.clear();
                subset.extend_from_slice(items);
                out.push((subset.clone(), support));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::mine;
    use crate::config::{AprioriConfig, Support};
    use arm_dataset::Database;

    fn paper_result() -> MiningResult {
        let db = Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap();
        mine(
            &db,
            &AprioriConfig {
                min_support: Support::Absolute(2),
                leaf_threshold: 2,
                ..AprioriConfig::default()
            },
        )
    }

    #[test]
    fn maximal_of_worked_example() {
        // Frequent: {1},{2},{4},{5},{1,2},{1,4},{1,5},{4,5},{1,4,5}.
        // Maximal: {1,2} and {1,4,5}.
        let m = maximal_itemsets(&paper_result());
        let names: Vec<Vec<u32>> = m.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(names, vec![vec![1, 2], vec![1, 4, 5]]);
    }

    #[test]
    fn closed_of_worked_example() {
        // Supports: 1:3 2:2 4:3 5:3 | 12:2 14:2 15:2 45:3 | 145:2.
        // {1} closed (3; no superset with 3). {2} not ({1,2} also 2).
        // {4},{5} not closed ({4,5} has 3). {1,2} closed. {1,4},{1,5}
        // not ({1,4,5} = 2). {4,5} closed. {1,4,5} closed.
        let c = closed_itemsets(&paper_result());
        let names: Vec<Vec<u32>> = c.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(names, vec![vec![1], vec![1, 2], vec![4, 5], vec![1, 4, 5]]);
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        // Every maximal itemset is closed (no superset at all ⇒ no
        // equal-support superset).
        let r = paper_result();
        let closed = closed_itemsets(&r);
        for m in maximal_itemsets(&r) {
            assert!(closed.contains(&m), "{m:?} maximal but not closed");
        }
    }

    #[test]
    fn all_frequent_recoverable_from_maximal() {
        // Each frequent itemset must be a subset of some maximal one.
        let r = paper_result();
        let maximal = maximal_itemsets(&r);
        for (items, _) in r.all_itemsets() {
            assert!(
                maximal
                    .iter()
                    .any(|(m, _)| arm_hashtree::is_subset(&items, m)),
                "{items:?} not covered"
            );
        }
    }

    #[test]
    fn empty_result_gives_empty_summaries() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        let r = mine(&db, &AprioriConfig::default());
        assert!(maximal_itemsets(&r).is_empty());
        assert!(closed_itemsets(&r).is_empty());
    }
}
