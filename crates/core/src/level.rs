//! The frequent-itemset level `F_k`: lexicographically sorted itemsets
//! with their supports, supporting the binary-search lookups that the
//! pruning step and rule generation rely on.

use arm_dataset::Item;
use arm_hashtree::CandidateSet;

/// All frequent k-itemsets of one iteration, sorted lexicographically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentLevel {
    itemsets: CandidateSet,
    supports: Vec<u32>,
}

impl FrequentLevel {
    /// Builds a level from parallel arrays. `itemsets` must be sorted
    /// lexicographically and duplicate-free.
    pub fn new(itemsets: CandidateSet, supports: Vec<u32>) -> Self {
        assert_eq!(itemsets.len(), supports.len());
        debug_assert!(itemsets.is_sorted_unique());
        FrequentLevel { itemsets, supports }
    }

    /// Itemset length `k`.
    pub fn k(&self) -> u32 {
        self.itemsets.k()
    }

    /// Number of frequent itemsets at this level.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// True when the level is empty.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// Items of the `i`-th itemset.
    pub fn get(&self, i: usize) -> &[Item] {
        self.itemsets.get(i as u32)
    }

    /// Support of the `i`-th itemset.
    pub fn support(&self, i: usize) -> u32 {
        self.supports[i]
    }

    /// The underlying candidate set (for tree building and joins).
    pub fn itemsets(&self) -> &CandidateSet {
        &self.itemsets
    }

    /// Binary-searches for `items`, returning its index.
    pub fn find(&self, items: &[Item]) -> Option<usize> {
        if items.len() != self.k() as usize {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.get(mid).cmp(items) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Support of `items`, if frequent at this level.
    pub fn support_of(&self, items: &[Item]) -> Option<u32> {
        self.find(items).map(|i| self.supports[i])
    }

    /// Iterates `(items, support)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Item], u32)> + '_ {
        (0..self.len()).map(move |i| (self.get(i), self.supports[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> FrequentLevel {
        let mut c = CandidateSet::new(2);
        c.push(&[1, 2]);
        c.push(&[1, 4]);
        c.push(&[1, 5]);
        c.push(&[4, 5]);
        FrequentLevel::new(c, vec![2, 2, 2, 3])
    }

    #[test]
    fn find_and_support() {
        let l = level();
        assert_eq!(l.k(), 2);
        assert_eq!(l.len(), 4);
        assert_eq!(l.find(&[1, 4]), Some(1));
        assert_eq!(l.find(&[4, 5]), Some(3));
        assert_eq!(l.find(&[1, 2]), Some(0));
        assert_eq!(l.find(&[2, 4]), None);
        assert_eq!(l.support_of(&[4, 5]), Some(3));
        assert_eq!(l.support_of(&[9, 9]), None);
        assert_eq!(l.find(&[1]), None, "wrong arity");
    }

    #[test]
    fn iter_pairs() {
        let l = level();
        let v: Vec<(Vec<u32>, u32)> = l.iter().map(|(s, c)| (s.to_vec(), c)).collect();
        assert_eq!(v[0], (vec![1, 2], 2));
        assert_eq!(v[3], (vec![4, 5], 3));
    }

    #[test]
    #[should_panic]
    fn rejects_length_mismatch() {
        let mut c = CandidateSet::new(2);
        c.push(&[1, 2]);
        FrequentLevel::new(c, vec![1, 2]);
    }
}
