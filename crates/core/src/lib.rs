//! Sequential Apriori association mining with the paper's optimizations.
//!
//! This crate assembles the substrates ([`arm_dataset`], [`arm_balance`],
//! [`arm_hashtree`], [`arm_mem`]) into the full mining pipeline:
//!
//! * [`f1`] — the first (histogram) pass producing `F_1`;
//! * [`generation`] — equivalence-class join, pruning, adaptive fan-out;
//! * [`apriori`] — the iteration driver with per-iteration statistics;
//! * [`rules`] — confidence-based rule generation (ap-genrules);
//! * [`naive`] — two independent reference miners for verification;
//! * [`config`] — every §3–§5 optimization as a knob.
//!
//! ```
//! use arm_core::{mine, AprioriConfig, Support, generate_rules};
//! use arm_dataset::Database;
//!
//! let db = Database::from_transactions(
//!     8,
//!     [vec![1u32, 4, 5], vec![1, 2], vec![3, 4, 5], vec![1, 2, 4, 5]],
//! )
//! .unwrap();
//! let cfg = AprioriConfig {
//!     min_support: Support::Absolute(2),
//!     leaf_threshold: 2,
//!     ..AprioriConfig::default()
//! };
//! let result = mine(&db, &cfg);
//! assert_eq!(result.support_of(&[1, 4, 5]), Some(2));
//! let rules = generate_rules(&result, 1.0);
//! assert!(rules.iter().any(|r| r.antecedent == vec![2] && r.consequent == vec![1]));
//! ```

pub mod apriori;
pub mod config;
pub mod eclat;
pub mod f1;
pub mod generation;
pub mod level;
pub mod naive;
pub mod partition_algo;
pub mod rules;
pub mod summaries;
pub mod taxonomy;

pub use apriori::{f1_items, make_hash, mine, mine_with, IterStats, MiningResult};
pub use config::{AprioriConfig, HashScheme, Support};
pub use eclat::mine_eclat;
pub use f1::{count_singletons, count_singletons_into, frequent_from_counts, frequent_singletons};
pub use generation::{
    adaptive_fanout, class_weight, equivalence_classes, generate_candidates, generate_class,
    generate_class_member,
};
pub use level::FrequentLevel;
pub use partition_algo::mine_partition;
pub use rules::{generate_rules, Rule};
pub use summaries::{closed_itemsets, maximal_itemsets};
pub use taxonomy::{mine_generalized, Taxonomy};
