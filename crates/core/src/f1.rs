//! The first pass: frequent 1-itemsets via a dense per-item histogram,
//! plus the optional DHP pair-bucket counts (Park, Chen & Yu, SIGMOD'95 —
//! the paper's related work §7.1) collected during the same scan.

use crate::level::FrequentLevel;
use arm_dataset::{Database, Item};
use arm_hashtree::CandidateSet;
use std::ops::Range;

/// Counts item occurrences over a transaction range (a processor's
/// partition when run in parallel).
pub fn count_singletons(db: &Database, range: Range<usize>) -> Vec<u32> {
    let mut counts = vec![0u32; db.n_items() as usize];
    count_singletons_into(db, range, &mut counts);
    counts
}

/// Accumulates item occurrences for `range` into an existing histogram.
/// Chunked schedulers call this once per claimed chunk; summing over any
/// exact partition of the database reproduces [`count_singletons`].
pub fn count_singletons_into(db: &Database, range: Range<usize>, counts: &mut [u32]) {
    debug_assert_eq!(counts.len(), db.n_items() as usize);
    for i in range {
        for &item in db.transaction(i) {
            counts[item as usize] += 1;
        }
    }
}

/// Builds `F_1` from an item histogram.
pub fn frequent_from_counts(counts: &[u32], min_support: u32) -> FrequentLevel {
    let mut itemsets = CandidateSet::new(1);
    let mut supports = Vec::new();
    for (item, &c) in counts.iter().enumerate() {
        if c >= min_support {
            itemsets.push(&[item as u32]);
            supports.push(c);
        }
    }
    FrequentLevel::new(itemsets, supports)
}

/// Full sequential `F_1` pass.
pub fn frequent_singletons(db: &Database, min_support: u32) -> FrequentLevel {
    frequent_from_counts(&count_singletons(db, 0..db.len()), min_support)
}

/// The DHP bucket of a pair `(a, b)` in a table of `buckets` cells.
/// Fibonacci-mixed so nearby item ids spread; both the collection pass
/// and the `C_2` pruning step must use this exact function.
#[inline]
pub fn pair_bucket(a: Item, b: Item, buckets: usize) -> usize {
    let key = ((a as u64) << 32) | b as u64;
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % buckets
}

/// Counts hashed pair occurrences over a transaction range (the DHP
/// pass-1 table). A bucket's count upper-bounds the support of every pair
/// hashing into it, so pruning `C_2` candidates whose bucket is below the
/// minimum support is lossless. Costs `O(l²)` per transaction — DHP's
/// explicit trade-off for a smaller `C_2`.
pub fn count_pair_buckets(db: &Database, range: Range<usize>, buckets: usize) -> Vec<u32> {
    assert!(buckets > 0, "DHP table needs at least one bucket");
    let mut table = vec![0u32; buckets];
    count_pair_buckets_into(db, range, &mut table);
    table
}

/// Accumulates hashed pair occurrences for `range` into an existing
/// table (chunk-at-a-time counterpart of [`count_pair_buckets`]).
pub fn count_pair_buckets_into(db: &Database, range: Range<usize>, table: &mut [u32]) {
    assert!(!table.is_empty(), "DHP table needs at least one bucket");
    let buckets = table.len();
    for i in range {
        let txn = db.transaction(i);
        for (ai, &a) in txn.iter().enumerate() {
            for &b in &txn[ai + 1..] {
                table[pair_bucket(a, b, buckets)] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_f1() {
        // minsup = 2 → F1 = {1, 2, 4, 5}; item 3 occurs once.
        let f1 = frequent_singletons(&paper_db(), 2);
        let items: Vec<u32> = (0..f1.len()).map(|i| f1.get(i)[0]).collect();
        assert_eq!(items, vec![1, 2, 4, 5]);
        assert_eq!(f1.support_of(&[1]), Some(3));
        assert_eq!(f1.support_of(&[2]), Some(2));
        assert_eq!(f1.support_of(&[3]), None);
        assert_eq!(f1.support_of(&[4]), Some(3));
    }

    #[test]
    fn partial_ranges_compose() {
        let db = paper_db();
        let mut a = count_singletons(&db, 0..2);
        let b = count_singletons(&db, 2..4);
        for (x, y) in a.iter_mut().zip(&b) {
            *x += y;
        }
        assert_eq!(a, count_singletons(&db, 0..db.len()));
    }

    #[test]
    fn high_support_empties_level() {
        let f1 = frequent_singletons(&paper_db(), 10);
        assert!(f1.is_empty());
    }
}
