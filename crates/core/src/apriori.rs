//! The sequential Apriori driver (Fig. 1 of the paper), instrumented with
//! the per-iteration statistics the evaluation figures are built from.

use crate::config::{AprioriConfig, HashScheme};
use crate::f1::{count_pair_buckets, frequent_singletons, pair_bucket};
use crate::generation::{adaptive_fanout, equivalence_classes, generate_class};
use crate::level::FrequentLevel;
use arm_balance::{AnyHash, IndirectionHash, ModHash};
use arm_dataset::{Database, Item};
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter, TreeBuilder,
    WorkMeter,
};
use arm_mem::counters::reduce;
use arm_mem::{FlatCounters, LocalCounters};
use arm_metrics::{Counter, MetricsRegistry, PhaseSpan, TalliedCounters};

/// Per-iteration measurements (feed Figs. 6, 7, 10 and the work model).
#[derive(Debug, Clone)]
pub struct IterStats {
    /// Iteration number `k`.
    pub k: u32,
    /// `|C_k|` after pruning.
    pub n_candidates: usize,
    /// `|F_k|`.
    pub n_frequent: usize,
    /// Hash-table fan-out used.
    pub fanout: u32,
    /// Bytes of the frozen hash tree (0 for `k = 1`).
    pub tree_bytes: usize,
    /// Reachable tree nodes.
    pub tree_nodes: u32,
    /// Join pairs considered during candidate generation.
    pub join_pairs: u64,
    /// Counting-phase work tally.
    pub meter: WorkMeter,
}

/// The outcome of a mining run: every frequent level plus per-iteration
/// statistics.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// `levels[0]` is `F_1`, `levels[i]` is `F_{i+1}`.
    pub levels: Vec<FrequentLevel>,
    /// One entry per executed iteration (including the final empty one).
    pub iter_stats: Vec<IterStats>,
    /// The resolved absolute minimum support.
    pub min_support: u32,
}

impl MiningResult {
    /// Total number of frequent itemsets across all levels.
    pub fn total_frequent(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Longest frequent itemset size.
    pub fn max_k(&self) -> u32 {
        self.levels
            .iter()
            .rev()
            .find(|l| !l.is_empty())
            .map_or(0, |l| l.k())
    }

    /// Support of an arbitrary itemset, if frequent.
    pub fn support_of(&self, items: &[Item]) -> Option<u32> {
        let k = items.len();
        if k == 0 || k > self.levels.len() {
            return None;
        }
        self.levels[k - 1].support_of(items)
    }

    /// All frequent itemsets flattened to `(items, support)`.
    pub fn all_itemsets(&self) -> Vec<(Vec<Item>, u32)> {
        let mut out = Vec::with_capacity(self.total_frequent());
        for l in &self.levels {
            for (s, c) in l.iter() {
                out.push((s.to_vec(), c));
            }
        }
        out
    }
}

/// Builds the configured hash function for fan-out `h`.
pub fn make_hash(scheme: HashScheme, h: u32, f1_items: &[Item], n_items: u32) -> AnyHash {
    match scheme {
        HashScheme::Interleaved => AnyHash::Mod(ModHash::new(h)),
        HashScheme::Bitonic => {
            AnyHash::Indirection(IndirectionHash::for_frequent_items(f1_items, n_items, h))
        }
    }
}

/// Extracts the raw item list of `F_1` (the basis of the bitonic
/// indirection vector).
pub fn f1_items(f1: &FrequentLevel) -> Vec<Item> {
    (0..f1.len()).map(|i| f1.get(i)[0]).collect()
}

/// Starts a phase span when a registry is present; `None` otherwise.
fn phase<'m>(
    metrics: Option<&'m MetricsRegistry>,
    name: &'static str,
    k: u32,
) -> Option<PhaseSpan<'m>> {
    metrics.map(|m| m.phase(name, k))
}

/// Runs sequential Apriori over `db`.
pub fn mine(db: &Database, config: &AprioriConfig) -> MiningResult {
    mine_with(db, config, None)
}

/// Runs sequential Apriori, recording phase timers and telemetry into
/// `metrics` when provided. The sequential run is a single "thread", so
/// every counter lands on shard 0 and each counting phase records a
/// one-element work vector — the same schema the parallel drivers emit,
/// which makes sequential baselines directly comparable in a
/// [`arm_metrics::RunReport`].
pub fn mine_with(
    db: &Database,
    config: &AprioriConfig,
    metrics: Option<&MetricsRegistry>,
) -> MiningResult {
    let min_support = config.min_support.absolute(db.len());
    let span = phase(metrics, "f1", 1);
    let f1 = frequent_singletons(db, min_support);
    if let Some(s) = span {
        s.finish_serial();
    }
    let f1_item_list = f1_items(&f1);
    // Optional DHP pass-1 table (same scan in the on-disk algorithm).
    let pair_table = config
        .pair_filter_buckets
        .map(|m| (m, count_pair_buckets(db, 0..db.len(), m)));

    let mut iter_stats = vec![IterStats {
        k: 1,
        n_candidates: db.n_items() as usize,
        n_frequent: f1.len(),
        fanout: 0,
        tree_bytes: 0,
        tree_nodes: 0,
        join_pairs: 0,
        meter: WorkMeter::default(),
    }];
    // `max_k = Some(0)` admits no level at all (uniform semantics across
    // the workspace's miners); the k-loop below never runs since k > 0.
    let mut levels = if config.max_k == Some(0) {
        Vec::new()
    } else {
        vec![f1]
    };

    let opts = CountOptions {
        short_circuit: config.short_circuit,
        visited: config.visited,
        hash_memo: config.hash_memo,
        iterative: config.iterative_walk,
    };
    // With `reuse_scratch` this single scratch (and all its buffers)
    // serves every iteration, re-targeted at each new tree.
    let mut scratch = CountScratch::new(db.n_items(), 0);

    let mut k = 2u32;
    loop {
        if config.max_k.is_some_and(|m| k > m) {
            break;
        }
        let prev = levels.last().unwrap();
        if prev.len() < 2 {
            break;
        }

        // Candidate generation over equivalence classes.
        let span = phase(metrics, "candgen", k);
        let classes = equivalence_classes(prev);
        let mut cands = CandidateSet::new(k);
        let mut scratch_items = Vec::with_capacity(k as usize);
        let mut join_pairs = 0u64;
        for class in &classes {
            join_pairs += generate_class(prev, class.clone(), &mut cands, &mut scratch_items);
        }
        if k == 2 {
            if let Some((m, table)) = &pair_table {
                // Lossless: a bucket count upper-bounds every pair in it.
                cands = cands.filtered(|_, it| table[pair_bucket(it[0], it[1], *m)] >= min_support);
            }
        }
        if let Some(s) = span {
            s.finish_serial();
        }
        if cands.is_empty() {
            break;
        }

        let fanout = if config.adaptive_fanout {
            adaptive_fanout(&classes, config.leaf_threshold, k)
        } else {
            config.fixed_fanout
        };
        let hash = make_hash(config.hash_scheme, fanout, &f1_item_list, db.n_items());

        // Build + freeze the candidate hash tree.
        let span = phase(metrics, "build", k);
        let builder = TreeBuilder::new(&cands, &hash, config.leaf_threshold);
        match metrics {
            Some(m) => builder.insert_all_tallied(m.shard(0)),
            None => builder.insert_all(),
        }
        if let Some(s) = span {
            s.finish_serial();
        }
        let span = phase(metrics, "freeze", k);
        let tree = freeze_policy(&builder, config.placement);
        if let Some(s) = span {
            s.finish_serial();
        }
        if let Some(m) = metrics {
            let shard = m.shard(0);
            shard.add(Counter::TreeBytes, tree.total_bytes() as u64);
            shard.add(Counter::TreeNodes, tree.n_nodes() as u64);
        }

        // Support counting.
        let span = phase(metrics, "count", k);
        let filter = config
            .trim_transactions
            .then(|| ItemFilter::from_candidates(&cands, db.n_items()));
        let filter = filter.as_ref();
        if config.reuse_scratch {
            scratch.retarget(tree.n_nodes());
        } else {
            scratch = CountScratch::new(db.n_items(), tree.n_nodes());
        }
        if let Some(m) = metrics {
            m.shard(0).incr(if config.reuse_scratch {
                Counter::ScratchRetargets
            } else {
                Counter::ScratchAllocs
            });
        }
        let mut meter = WorkMeter::default();
        let counts: Vec<u32> = if tree.counters_inline() {
            let mut cref = CounterRef::Inline;
            tree.count_partition(
                &hash,
                db,
                0..db.len(),
                filter,
                &mut scratch,
                &mut cref,
                opts,
                &mut meter,
            );
            tree.inline_counts()
        } else if config.placement.per_thread_counters() {
            let mut local = LocalCounters::new(cands.len());
            {
                let mut cref = CounterRef::Local(&mut local);
                tree.count_partition(
                    &hash,
                    db,
                    0..db.len(),
                    filter,
                    &mut scratch,
                    &mut cref,
                    opts,
                    &mut meter,
                );
            }
            reduce(&[local])
        } else {
            let shared = FlatCounters::new(cands.len());
            {
                let tallied = metrics.map(|m| TalliedCounters::new(&shared, m.shard(0)));
                let mut cref = match &tallied {
                    Some(t) => CounterRef::Shared(t),
                    None => CounterRef::Shared(&shared),
                };
                tree.count_partition(
                    &hash,
                    db,
                    0..db.len(),
                    filter,
                    &mut scratch,
                    &mut cref,
                    opts,
                    &mut meter,
                );
            }
            shared.snapshot()
        };
        if let Some(m) = metrics {
            m.shard(0)
                .add(Counter::ScratchStampBytes, scratch.stamp_bytes() as u64);
        }
        if let Some(s) = span {
            s.finish(vec![meter.work_units()]);
        }

        // Frequent extraction.
        let span = phase(metrics, "extract", k);
        let mut fk_sets = CandidateSet::new(k);
        let mut fk_supports = Vec::new();
        for (id, items) in cands.iter() {
            if counts[id as usize] >= min_support {
                fk_sets.push(items);
                fk_supports.push(counts[id as usize]);
            }
        }
        let fk = FrequentLevel::new(fk_sets, fk_supports);
        if let Some(s) = span {
            s.finish_serial();
        }

        iter_stats.push(IterStats {
            k,
            n_candidates: cands.len(),
            n_frequent: fk.len(),
            fanout,
            tree_bytes: tree.total_bytes(),
            tree_nodes: tree.n_nodes(),
            join_pairs,
            meter,
        });

        let done = fk.is_empty();
        if !done {
            levels.push(fk);
        }
        k += 1;
        if done {
            break;
        }
    }

    MiningResult {
        levels,
        iter_stats,
        min_support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Support;
    use arm_hashtree::PlacementPolicy;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    fn paper_config() -> AprioriConfig {
        AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        }
    }

    #[test]
    fn paper_worked_example_end_to_end() {
        let r = mine(&paper_db(), &paper_config());
        assert_eq!(r.min_support, 2);
        // F1 = {1,2,4,5}; F2 = {(1,2),(1,4),(1,5),(4,5)}; F3 = {(1,4,5)}.
        assert_eq!(r.levels.len(), 3);
        assert_eq!(r.levels[0].len(), 4);
        let f2: Vec<Vec<u32>> = r.levels[1].iter().map(|(s, _)| s.to_vec()).collect();
        assert_eq!(f2, vec![vec![1, 2], vec![1, 4], vec![1, 5], vec![4, 5]]);
        assert_eq!(r.levels[2].len(), 1);
        assert_eq!(r.levels[2].get(0), &[1, 4, 5]);
        assert_eq!(r.support_of(&[1, 4, 5]), Some(2));
        assert_eq!(r.support_of(&[2, 4]), None);
        assert_eq!(r.total_frequent(), 9);
        assert_eq!(r.max_k(), 3);
    }

    #[test]
    fn all_configurations_agree() {
        let db = paper_db();
        let reference = mine(&db, &paper_config()).all_itemsets();
        use arm_hashtree::VisitedMode;
        for placement in PlacementPolicy::ALL {
            for scheme in [HashScheme::Interleaved, HashScheme::Bitonic] {
                for sc in [false, true] {
                    for adaptive in [false, true] {
                        for visited in [VisitedMode::PerNode, VisitedMode::LevelPath] {
                            for fast in [false, true] {
                                let cfg = AprioriConfig {
                                    min_support: Support::Absolute(2),
                                    leaf_threshold: 2,
                                    hash_scheme: scheme,
                                    adaptive_fanout: adaptive,
                                    fixed_fanout: 3,
                                    short_circuit: sc,
                                    visited,
                                    pair_filter_buckets: if sc { Some(64) } else { None },
                                    placement,
                                    max_k: None,
                                    hash_memo: fast,
                                    trim_transactions: fast,
                                    iterative_walk: fast,
                                    reuse_scratch: fast,
                                };
                                let got = mine(&db, &cfg).all_itemsets();
                                assert_eq!(
                                    got, reference,
                                    "{placement} {scheme:?} sc={sc} {visited:?} fast={fast}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn max_k_caps_iterations() {
        let cfg = AprioriConfig {
            max_k: Some(2),
            ..paper_config()
        };
        let r = mine(&paper_db(), &cfg);
        assert_eq!(r.levels.len(), 2);
        assert_eq!(r.max_k(), 2);
    }

    #[test]
    fn stats_are_recorded_per_iteration() {
        let r = mine(&paper_db(), &paper_config());
        assert_eq!(r.iter_stats[0].k, 1);
        let s2 = &r.iter_stats[1];
        assert_eq!(s2.k, 2);
        assert_eq!(s2.n_candidates, 6);
        assert_eq!(s2.n_frequent, 4);
        assert_eq!(s2.join_pairs, 6);
        assert!(s2.tree_bytes > 0);
        assert_eq!(s2.meter.txns, 4);
        let s3 = &r.iter_stats[2];
        assert_eq!(s3.k, 3);
        assert_eq!(s3.n_candidates, 1);
        assert_eq!(s3.n_frequent, 1);
    }

    #[test]
    fn mine_with_registry_records_phases_and_matches_plain_mine() {
        let db = paper_db();
        let cfg = paper_config();
        let reference = mine(&db, &cfg).all_itemsets();

        let metrics = MetricsRegistry::new(1);
        let r = mine_with(&db, &cfg, Some(&metrics));
        assert_eq!(r.all_itemsets(), reference);

        let phases = metrics.take_phases();
        for name in ["f1", "candgen", "build", "freeze", "count", "extract"] {
            assert!(
                phases.iter().any(|p| p.name == name),
                "missing phase {name}"
            );
        }
        // Counting phases carry a single-thread work vector.
        let count2 = phases
            .iter()
            .find(|p| p.name == "count" && p.k == 2)
            .unwrap();
        assert_eq!(count2.thread_work.as_ref().map(Vec::len), Some(1));
        assert!(count2.thread_work.as_ref().unwrap()[0] > 0);

        let snap = metrics.snapshot();
        if MetricsRegistry::enabled() {
            assert!(snap.total(Counter::LeafLockAcquires) > 0);
            assert!(snap.total(Counter::TreeBytes) > 0);
        } else {
            assert_eq!(snap.total(Counter::LeafLockAcquires), 0);
        }
    }

    #[test]
    fn empty_database_mines_nothing() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        let r = mine(&db, &AprioriConfig::default());
        assert_eq!(r.total_frequent(), 0);
    }

    #[test]
    fn support_one_hundred_percent() {
        let db = Database::from_transactions(4, [vec![0u32, 1, 2], vec![0, 1, 2], vec![0, 1, 2]])
            .unwrap();
        let cfg = AprioriConfig {
            min_support: Support::Fraction(1.0),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let r = mine(&db, &cfg);
        // Everything is frequent: 3 singles, 3 pairs, 1 triple.
        assert_eq!(r.total_frequent(), 7);
        assert_eq!(r.support_of(&[0, 1, 2]), Some(3));
    }
}
