//! Multi-level (taxonomy) association mining — Srikant & Agrawal's
//! *generalized association rules*, which the paper names as a direct
//! application of its techniques ("the proposed techniques are directly
//! applicable to ... multi-level (taxonomies) associations", §8).
//!
//! Items are arranged in an is-a forest (`jacket` is-a `outerwear` is-a
//! `clothes`). A transaction supports an itemset if the itemset's items
//! are items *or ancestors* of the transaction's items. The standard
//! reduction: extend every transaction with all ancestors of its items,
//! then run plain Apriori — every optimization of this crate (balanced
//! trees, placement, parallel CCPD) applies unchanged to the extended
//! database. Itemsets containing an item together with one of its own
//! ancestors are pruned afterwards (their support equals the itemset
//! without the ancestor; they carry no information).

use crate::apriori::{mine, MiningResult};
use crate::config::AprioriConfig;
use arm_dataset::{Database, DatabaseBuilder, Item};

/// An is-a forest over the item universe.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    parent: Vec<Option<Item>>,
}

/// Errors raised while building a taxonomy.
#[derive(Debug, PartialEq, Eq)]
pub enum TaxonomyError {
    /// Item id out of range.
    OutOfRange(Item),
    /// The child already has a different parent.
    Reparented(Item),
    /// The edge would close a cycle.
    Cycle(Item),
}

impl std::fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaxonomyError::OutOfRange(i) => write!(f, "item {i} out of range"),
            TaxonomyError::Reparented(i) => write!(f, "item {i} already has a parent"),
            TaxonomyError::Cycle(i) => write!(f, "edge from {i} would create a cycle"),
        }
    }
}

impl std::error::Error for TaxonomyError {}

impl Taxonomy {
    /// A flat taxonomy (no edges) over `n_items` items.
    pub fn new(n_items: u32) -> Self {
        Taxonomy {
            parent: vec![None; n_items as usize],
        }
    }

    /// Declares `child` is-a `parent`. Rejects out-of-range ids,
    /// re-parenting, and cycles.
    pub fn add_edge(&mut self, child: Item, parent: Item) -> Result<(), TaxonomyError> {
        let n = self.parent.len() as u32;
        if child >= n {
            return Err(TaxonomyError::OutOfRange(child));
        }
        if parent >= n {
            return Err(TaxonomyError::OutOfRange(parent));
        }
        if self.parent[child as usize].is_some() {
            return Err(TaxonomyError::Reparented(child));
        }
        // Walking up from `parent` must not reach `child`.
        let mut cur = Some(parent);
        while let Some(p) = cur {
            if p == child {
                return Err(TaxonomyError::Cycle(child));
            }
            cur = self.parent[p as usize];
        }
        self.parent[child as usize] = Some(parent);
        Ok(())
    }

    /// The immediate parent of `item`.
    pub fn parent(&self, item: Item) -> Option<Item> {
        self.parent[item as usize]
    }

    /// All proper ancestors of `item`, nearest first.
    pub fn ancestors(&self, item: Item) -> Vec<Item> {
        let mut out = Vec::new();
        let mut cur = self.parent[item as usize];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p as usize];
        }
        out
    }

    /// True when `anc` is a proper ancestor of `item`.
    pub fn is_ancestor(&self, anc: Item, item: Item) -> bool {
        let mut cur = self.parent[item as usize];
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent[p as usize];
        }
        false
    }

    /// Extends every transaction with all ancestors of its items (the
    /// generalized-rules reduction). Item universe is unchanged.
    pub fn extend_database(&self, db: &Database) -> Database {
        let mut b = DatabaseBuilder::with_capacity(db.n_items(), db.len(), 0);
        let mut buf: Vec<Item> = Vec::new();
        for txn in db {
            buf.clear();
            buf.extend_from_slice(txn);
            for &item in txn {
                buf.extend(self.ancestors(item));
            }
            b.push(buf.iter().copied())
                .expect("extended items stay in range");
        }
        b.finish()
    }

    /// True when `items` contains some item together with one of its own
    /// ancestors (such itemsets are informationally redundant).
    pub fn has_internal_ancestor(&self, items: &[Item]) -> bool {
        items
            .iter()
            .any(|&a| items.iter().any(|&b| a != b && self.is_ancestor(a, b)))
    }
}

/// Mines generalized (multi-level) frequent itemsets: transactions are
/// extended with ancestors, mined with the configured Apriori, and
/// redundant ancestor-within-itemset results are dropped.
pub fn mine_generalized(
    db: &Database,
    taxonomy: &Taxonomy,
    config: &AprioriConfig,
) -> MiningResult {
    let extended = taxonomy.extend_database(db);
    let mut result = mine(&extended, config);
    // Prune levels in place: keep supports aligned.
    for level in &mut result.levels {
        let keep: Vec<usize> = (0..level.len())
            .filter(|&i| !taxonomy.has_internal_ancestor(level.get(i)))
            .collect();
        if keep.len() == level.len() {
            continue;
        }
        let mut sets = arm_hashtree::CandidateSet::new(level.k());
        let mut sups = Vec::with_capacity(keep.len());
        for i in keep {
            sets.push(level.get(i));
            sups.push(level.support(i));
        }
        *level = crate::level::FrequentLevel::new(sets, sups);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Support;

    // Classic example: 0=clothes 1=outerwear 2=shirts 3=jacket 4=ski_pants
    // 5=footwear 6=shoes 7=hiking_boots.
    fn clothes_taxonomy() -> Taxonomy {
        let mut t = Taxonomy::new(8);
        t.add_edge(1, 0).unwrap(); // outerwear -> clothes
        t.add_edge(2, 0).unwrap(); // shirts -> clothes
        t.add_edge(3, 1).unwrap(); // jacket -> outerwear
        t.add_edge(4, 1).unwrap(); // ski pants -> outerwear
        t.add_edge(6, 5).unwrap(); // shoes -> footwear
        t.add_edge(7, 5).unwrap(); // hiking boots -> footwear
        t
    }

    #[test]
    fn ancestors_and_relations() {
        let t = clothes_taxonomy();
        assert_eq!(t.ancestors(3), vec![1, 0]);
        assert_eq!(t.ancestors(0), Vec::<Item>::new());
        assert!(t.is_ancestor(0, 3));
        assert!(t.is_ancestor(1, 4));
        assert!(!t.is_ancestor(3, 1));
        assert!(!t.is_ancestor(5, 3));
        assert_eq!(t.parent(6), Some(5));
    }

    #[test]
    fn edge_validation() {
        let mut t = clothes_taxonomy();
        assert_eq!(t.add_edge(9, 0), Err(TaxonomyError::OutOfRange(9)));
        assert_eq!(t.add_edge(0, 9), Err(TaxonomyError::OutOfRange(9)));
        assert_eq!(t.add_edge(3, 5), Err(TaxonomyError::Reparented(3)));
        assert_eq!(t.add_edge(0, 3), Err(TaxonomyError::Cycle(0)));
        assert_eq!(t.add_edge(0, 0), Err(TaxonomyError::Cycle(0)));
    }

    #[test]
    fn database_extension_adds_ancestors() {
        let t = clothes_taxonomy();
        let db = Database::from_transactions(8, [vec![3u32, 6]]).unwrap();
        let ext = t.extend_database(&db);
        // jacket, shoes + outerwear, clothes, footwear.
        assert_eq!(ext.transaction(0), &[0, 1, 3, 5, 6]);
    }

    #[test]
    fn generalized_rule_emerges_above_leaf_level() {
        // Jackets co-occur with hiking boots, ski pants with shoes:
        // neither leaf pair is frequent enough alone, but
        // (outerwear, footwear) is.
        let mut txns = Vec::new();
        for _ in 0..3 {
            txns.push(vec![3u32, 7]); // jacket + hiking boots
            txns.push(vec![4u32, 6]); // ski pants + shoes
        }
        txns.push(vec![2]); // a lone shirt
        let db = Database::from_transactions(8, txns).unwrap();
        let t = clothes_taxonomy();
        let cfg = AprioriConfig {
            min_support: Support::Absolute(5),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let plain = mine(&db, &cfg);
        assert_eq!(plain.support_of(&[1, 5]), None, "leaf mining can't see it");
        let gen = mine_generalized(&db, &t, &cfg);
        assert_eq!(gen.support_of(&[1, 5]), Some(6), "outerwear+footwear");
        assert_eq!(gen.support_of(&[0]), Some(7), "clothes in every basket");
    }

    #[test]
    fn redundant_ancestor_itemsets_are_pruned() {
        let t = clothes_taxonomy();
        let db = Database::from_transactions(8, std::iter::repeat_n(vec![3u32, 6], 4)).unwrap();
        let cfg = AprioriConfig {
            min_support: Support::Absolute(4),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let gen = mine_generalized(&db, &t, &cfg);
        for (items, _) in gen.all_itemsets() {
            assert!(
                !t.has_internal_ancestor(&items),
                "redundant itemset {items:?} survived"
            );
        }
        // (jacket, outerwear) pruned; (jacket, footwear) kept.
        assert_eq!(gen.support_of(&[1, 3]), None);
        assert_eq!(gen.support_of(&[3, 5]), Some(4));
    }

    #[test]
    fn flat_taxonomy_is_identity() {
        let t = Taxonomy::new(8);
        let db = Database::from_transactions(8, [vec![1u32, 3], vec![1, 3], vec![2]]).unwrap();
        let cfg = AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        assert_eq!(
            mine_generalized(&db, &t, &cfg).all_itemsets(),
            mine(&db, &cfg).all_itemsets()
        );
    }
}
