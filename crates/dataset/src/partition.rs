//! Database partitioning for parallel support counting (§3.2.2).
//!
//! CCPD logically splits the database among processors. The paper uses a
//! blocked split ([`block_ranges`]) and notes that per-transaction workload
//! is polynomial in transaction length, `O(min(l^k, l^(l-k)))`, suggesting a
//! static weighted heuristic based on the mean of `C(l, k)` over the
//! expected iterations ([`weighted_ranges`] with [`txn_weight`]).

use crate::Database;
use std::ops::Range;

/// Splits `n` elements into `parts` contiguous blocks whose sizes differ by
/// at most one. Surplus elements go to the *last* blocks, matching the
/// paper's computation-balancing example (`A2 = {6,7,8,9}` for n=10, P=3).
///
/// `parts == 0` yields an empty vector; empty ranges are produced when
/// `parts > n` so that every processor always has a (possibly empty) block.
pub fn block_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if parts == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        // The last `rem` parts get one extra element.
        let extra = usize::from(p >= parts - rem);
        let len = base + extra;
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// The static workload heuristic for one transaction of length `l`:
/// `(Σ_{k=1..kmax} C(l, k)) / kmax`, saturating at `u64::MAX`. This is the
/// paper's "mean estimated workload over all iterations" (§3.2.2).
pub fn txn_weight(l: usize, kmax: usize) -> u64 {
    if kmax == 0 {
        return 0;
    }
    let mut sum: u64 = 0;
    for k in 1..=kmax {
        sum = sum.saturating_add(binomial_saturating(l as u64, k as u64));
    }
    (sum / kmax as u64).max(1)
}

/// `C(n, k)` with saturating arithmetic (workload estimates only need the
/// right order of magnitude, not exact huge values).
pub fn binomial_saturating(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1); compute in u128 to delay overflow.
        let wide = (acc as u128).saturating_mul((n - i) as u128) / (i as u128 + 1);
        acc = u64::try_from(wide).unwrap_or(u64::MAX);
        if acc == u64::MAX {
            return u64::MAX;
        }
    }
    acc
}

/// Splits the database into `parts` contiguous ranges with approximately
/// equal *estimated workload* (sum of [`txn_weight`] over each range).
///
/// Contiguity is preserved deliberately: the paper stresses "respecting the
/// locality of the partition by moving transactions only when absolutely
/// necessary".
pub fn weighted_ranges(db: &Database, parts: usize, kmax: usize) -> Vec<Range<usize>> {
    if parts == 0 {
        return Vec::new();
    }
    let n = db.len();
    if n == 0 {
        return vec![0..0; parts];
    }
    let weights: Vec<u64> = (0..n)
        .map(|i| txn_weight(db.transaction(i).len(), kmax))
        .collect();
    split_by_weights(&weights, parts)
}

/// Splits the database into `parts` contiguous ranges with approximately
/// equal `C(l, k)` workload for iteration `k` — the paper's *per-iteration
/// re-partitioning* alternative (§3.2.2). Contiguity again preserves
/// partition locality.
pub fn weighted_ranges_for_k(db: &Database, parts: usize, k: u32) -> Vec<Range<usize>> {
    if parts == 0 {
        return Vec::new();
    }
    let n = db.len();
    if n == 0 {
        return vec![0..0; parts];
    }
    let weights: Vec<u64> = (0..n)
        .map(|i| binomial_saturating(db.transaction(i).len() as u64, k as u64).max(1))
        .collect();
    split_by_weights(&weights, parts)
}

/// Greedy contiguous split of `weights` into `parts` ranges of roughly
/// equal total weight.
fn split_by_weights(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let target = (total as f64 / parts as f64).max(1.0);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let remaining = parts - out.len();
        if remaining > 1 && acc as f64 >= target && n - (i + 1) >= remaining - 1 {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    out.push(start..n);
    while out.len() < parts {
        out.push(n..n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 10, 100, 101] {
            for p in 1..=8 {
                let r = block_ranges(n, p);
                assert_eq!(r.len(), p);
                assert_eq!(r[0].start, 0);
                assert_eq!(r.last().unwrap().end, n);
                for w in r.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = r.iter().map(|x| x.len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} p={p} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn block_ranges_paper_example() {
        // n = 10, P = 3 -> {0,1,2}, {3,4,5}, {6,7,8,9} (§3.1.2).
        let r = block_ranges(10, 3);
        assert_eq!(r, vec![0..3, 3..6, 6..10]);
    }

    #[test]
    fn block_ranges_zero_parts() {
        assert!(block_ranges(5, 0).is_empty());
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial_saturating(5, 0), 1);
        assert_eq!(binomial_saturating(5, 2), 10);
        assert_eq!(binomial_saturating(5, 5), 1);
        assert_eq!(binomial_saturating(5, 6), 0);
        assert_eq!(binomial_saturating(20, 10), 184_756);
    }

    #[test]
    fn binomial_saturates() {
        assert_eq!(binomial_saturating(1000, 500), u64::MAX);
    }

    #[test]
    fn txn_weight_grows_with_length() {
        let w5 = txn_weight(5, 4);
        let w20 = txn_weight(20, 4);
        assert!(w20 > w5 * 10, "w5={w5} w20={w20}");
        assert_eq!(txn_weight(0, 4), 1); // clamped floor
        assert_eq!(txn_weight(10, 0), 0);
    }

    fn uneven_db() -> Database {
        // Two huge transactions followed by many tiny ones.
        let mut txns: Vec<Vec<u32>> = vec![(0..30).collect(), (0..28).collect()];
        for i in 0..20 {
            txns.push(vec![i % 30, (i + 1) % 30]);
        }
        Database::from_transactions(30, txns).unwrap()
    }

    #[test]
    fn weighted_ranges_cover_and_balance() {
        let db = uneven_db();
        let parts = 4;
        let r = weighted_ranges(&db, parts, 6);
        assert_eq!(r.len(), parts);
        assert_eq!(r[0].start, 0);
        assert_eq!(r.last().unwrap().end, db.len());
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // The heavy head must not be lumped together with everything else:
        // block partitioning puts both huge transactions in range 0 along
        // with 3 more; the weighted split should cut earlier.
        assert!(r[0].len() <= 2, "weighted first range {:?}", r[0]);
    }

    #[test]
    fn weighted_ranges_empty_db() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        let r = weighted_ranges(&db, 3, 5);
        assert_eq!(r, vec![0..0, 0..0, 0..0]);
    }

    #[test]
    fn per_iteration_ranges_follow_k() {
        let db = uneven_db();
        for k in [2u32, 4, 8] {
            let r = weighted_ranges_for_k(&db, 3, k);
            assert_eq!(r.len(), 3);
            assert_eq!(r[0].start, 0);
            assert_eq!(r.last().unwrap().end, db.len());
            for w in r.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
        // At high k the giant transactions dominate even more strongly:
        // the first range should be a single transaction.
        let r8 = weighted_ranges_for_k(&db, 3, 8);
        assert_eq!(r8[0].len(), 1, "ranges {r8:?}");
    }

    #[test]
    fn per_iteration_ranges_empty_db() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        assert_eq!(weighted_ranges_for_k(&db, 2, 3), vec![0..0, 0..0]);
        assert!(weighted_ranges_for_k(&db, 0, 3).is_empty());
    }
}
