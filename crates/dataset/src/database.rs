//! CSR-layout transaction database.
//!
//! Transactions are stored back to back in a single `Vec<Item>` with an
//! offsets array, so a full database scan (the hot loop of support counting)
//! is a purely sequential memory walk. Each transaction is sorted and
//! duplicate-free, which the subset-enumeration kernel relies on.

use crate::Item;

/// An immutable database of transactions in CSR layout.
///
/// Invariants (enforced by [`DatabaseBuilder`] and checked in debug builds):
/// * `offsets.len() == len() + 1`, `offsets[0] == 0`, non-decreasing;
/// * every transaction slice is strictly increasing (sorted, deduplicated);
/// * every item is `< n_items`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Database {
    n_items: u32,
    offsets: Vec<u32>,
    items: Vec<Item>,
}

impl Database {
    /// Builds a database from an iterator of transactions. Each transaction
    /// is sorted and deduplicated; items `>= n_items` are rejected.
    pub fn from_transactions<I, T>(n_items: u32, txns: I) -> Result<Self, DatabaseError>
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = Item>,
    {
        let mut b = DatabaseBuilder::new(n_items);
        for t in txns {
            b.push(t)?;
        }
        Ok(b.finish())
    }

    /// Number of distinct items this database draws from (`N` in the paper).
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of transactions (`D` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the database holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th transaction as a sorted item slice.
    #[inline]
    pub fn transaction(&self, i: usize) -> &[Item] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.items[lo..hi]
    }

    /// Iterates over all transactions in order.
    #[inline]
    pub fn iter(&self) -> TransactionIter<'_> {
        TransactionIter { db: self, next: 0 }
    }

    /// Total number of item occurrences across all transactions.
    #[inline]
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Mean transaction length (`T` in the paper's dataset naming).
    pub fn avg_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.items.len() as f64 / self.len() as f64
        }
    }

    /// Length of the longest transaction.
    pub fn max_len(&self) -> usize {
        (0..self.len())
            .map(|i| self.transaction(i).len())
            .max()
            .unwrap_or(0)
    }

    /// In-memory size of the raw CSR arrays in bytes (used for Table 2).
    pub fn size_bytes(&self) -> usize {
        self.items.len() * size_of::<Item>() + self.offsets.len() * size_of::<u32>()
    }

    /// Absolute support count corresponding to a fractional `min_support`
    /// (e.g. `0.005` for the paper's 0.5%). Rounds up and clamps to at
    /// least 1 so that "0%" never means "every itemset is frequent for free".
    pub fn absolute_support(&self, min_support: f64) -> u32 {
        let s = (min_support * self.len() as f64).ceil();
        (s.max(1.0)) as u32
    }

    /// Raw offsets array (for IO and zero-copy consumers).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw concatenated item array (for IO and zero-copy consumers).
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    pub(crate) fn from_raw_unchecked(n_items: u32, offsets: Vec<u32>, items: Vec<Item>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, items.len());
        Database {
            n_items,
            offsets,
            items,
        }
    }
}

impl<'a> IntoIterator for &'a Database {
    type Item = &'a [Item];
    type IntoIter = TransactionIter<'a>;
    fn into_iter(self) -> TransactionIter<'a> {
        self.iter()
    }
}

/// Iterator over the transactions of a [`Database`].
pub struct TransactionIter<'a> {
    db: &'a Database,
    next: usize,
}

impl<'a> Iterator for TransactionIter<'a> {
    type Item = &'a [Item];

    #[inline]
    fn next(&mut self) -> Option<&'a [Item]> {
        if self.next < self.db.len() {
            let t = self.db.transaction(self.next);
            self.next += 1;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.db.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TransactionIter<'_> {}

/// Errors raised while assembling a [`Database`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    /// A transaction referenced an item `>= n_items`.
    ItemOutOfRange { item: Item, n_items: u32 },
    /// The database would exceed `u32::MAX` total item occurrences.
    TooLarge,
}

impl std::fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatabaseError::ItemOutOfRange { item, n_items } => {
                write!(f, "item {item} out of range (n_items = {n_items})")
            }
            DatabaseError::TooLarge => write!(f, "database exceeds u32 item-offset capacity"),
        }
    }
}

impl std::error::Error for DatabaseError {}

/// Incremental builder for [`Database`]. Sorts and deduplicates each pushed
/// transaction; keeps the CSR arrays tight.
#[derive(Debug, Clone)]
pub struct DatabaseBuilder {
    n_items: u32,
    offsets: Vec<u32>,
    items: Vec<Item>,
    scratch: Vec<Item>,
}

impl DatabaseBuilder {
    /// Creates a builder for a database over `n_items` distinct items.
    pub fn new(n_items: u32) -> Self {
        DatabaseBuilder {
            n_items,
            offsets: vec![0],
            items: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Creates a builder with pre-reserved capacity for `txns` transactions
    /// of roughly `avg_len` items each.
    pub fn with_capacity(n_items: u32, txns: usize, avg_len: usize) -> Self {
        let mut b = Self::new(n_items);
        b.offsets.reserve(txns);
        b.items.reserve(txns * avg_len);
        b
    }

    /// Appends one transaction. Empty transactions are allowed (they simply
    /// never support any itemset).
    pub fn push<T: IntoIterator<Item = Item>>(&mut self, txn: T) -> Result<(), DatabaseError> {
        self.scratch.clear();
        self.scratch.extend(txn);
        self.scratch.sort_unstable();
        self.scratch.dedup();
        if let Some(&max) = self.scratch.last() {
            if max >= self.n_items {
                return Err(DatabaseError::ItemOutOfRange {
                    item: max,
                    n_items: self.n_items,
                });
            }
        }
        let new_len = self.items.len() + self.scratch.len();
        if new_len > u32::MAX as usize {
            return Err(DatabaseError::TooLarge);
        }
        self.items.extend_from_slice(&self.scratch);
        self.offsets.push(new_len as u32);
        Ok(())
    }

    /// Number of transactions pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if no transactions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalizes the database.
    pub fn finish(self) -> Database {
        Database::from_raw_unchecked(self.n_items, self.offsets, self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(txns: &[&[Item]]) -> Database {
        Database::from_transactions(100, txns.iter().map(|t| t.iter().copied())).unwrap()
    }

    #[test]
    fn empty_database() {
        let d = db(&[]);
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
        assert_eq!(d.avg_len(), 0.0);
        assert_eq!(d.max_len(), 0);
        assert_eq!(d.iter().count(), 0);
    }

    #[test]
    fn paper_worked_example() {
        // D = {T1=(1,4,5), T2=(1,2), T3=(3,4,5), T4=(1,2,4,5)} from §2.1.3.
        let d = db(&[&[1, 4, 5], &[1, 2], &[3, 4, 5], &[1, 2, 4, 5]]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.transaction(0), &[1, 4, 5]);
        assert_eq!(d.transaction(3), &[1, 2, 4, 5]);
        assert_eq!(d.total_items(), 12);
        assert_eq!(d.max_len(), 4);
        assert!((d.avg_len() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sorts_and_dedups() {
        let d = db(&[&[5, 1, 5, 3, 1]]);
        assert_eq!(d.transaction(0), &[1, 3, 5]);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Database::from_transactions(4, [[1u32, 9].into_iter()]).unwrap_err();
        assert_eq!(
            err,
            DatabaseError::ItemOutOfRange {
                item: 9,
                n_items: 4
            }
        );
    }

    #[test]
    fn empty_transaction_allowed() {
        let d = db(&[&[], &[2, 3]]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.transaction(0), &[] as &[Item]);
        assert_eq!(d.transaction(1), &[2, 3]);
    }

    #[test]
    fn absolute_support_rounds_up_and_clamps() {
        let d = db(&[&[0], &[1], &[2], &[3]]);
        assert_eq!(d.absolute_support(0.5), 2);
        assert_eq!(d.absolute_support(0.26), 2); // ceil(1.04)
        assert_eq!(d.absolute_support(0.0), 1); // clamp
        assert_eq!(d.absolute_support(1.0), 4);
    }

    #[test]
    fn iterator_matches_indexing() {
        let d = db(&[&[1, 2], &[3], &[4, 5, 6]]);
        let via_iter: Vec<_> = d.iter().collect();
        let via_index: Vec<_> = (0..d.len()).map(|i| d.transaction(i)).collect();
        assert_eq!(via_iter, via_index);
        assert_eq!(d.iter().len(), 3);
    }

    #[test]
    fn size_bytes_counts_csr_arrays() {
        let d = db(&[&[1, 2, 3]]);
        assert_eq!(d.size_bytes(), 3 * 4 + 2 * 4);
    }
}
