//! Transaction database substrate for association mining.
//!
//! This crate provides the representation of basket data used throughout the
//! workspace: [`Item`] identifiers, transactions stored in a cache-friendly
//! CSR ([`Database`]) layout, database partitioning for parallel mining
//! ([`partition`]), dataset statistics (Table 2 of the paper, [`stats`]), and
//! a compact binary + text on-disk format ([`io`]).
//!
//! The paper mines the IBM Quest synthetic datasets `T{T}.I{I}.D{D}` with
//! `N = 1000` items; transactions are sets of items (sorted, duplicate-free).

pub mod database;
pub mod io;
pub mod partition;
pub mod stats;

pub use database::{Database, DatabaseBuilder, TransactionIter};
pub use partition::{block_ranges, txn_weight, weighted_ranges, weighted_ranges_for_k};
pub use stats::DatasetStats;

/// An item identifier. The paper labels the `N` distinct items
/// `0 .. N-1` in lexicographic order; all hash functions and equivalence
/// classes operate on these dense labels.
pub type Item = u32;

/// A transaction identifier (its index within the [`Database`]).
pub type Tid = u32;
