//! On-disk formats for transaction databases.
//!
//! Two formats are provided:
//! * a compact little-endian binary format (magic `ARMD`), suitable for the
//!   multi-megabyte Table 2 datasets;
//! * a human-readable text format (one transaction per line, items
//!   space-separated) for small fixtures and interchange.

use crate::database::Database;
use crate::Item;
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ARMD";
const VERSION: u32 = 1;

/// Serializes `db` into the binary format.
pub fn write_binary<W: Write>(db: &Database, mut w: W) -> io::Result<()> {
    let mut header = Vec::with_capacity(4 + 4 + 4 + 8);
    header.put_slice(MAGIC);
    header.put_u32_le(VERSION);
    header.put_u32_le(db.n_items());
    header.put_u64_le(db.len() as u64);
    w.write_all(&header)?;

    let mut buf = Vec::with_capacity(4 * db.offsets().len().max(db.items().len()));
    for &o in db.offsets() {
        buf.put_u32_le(o);
    }
    w.write_all(&buf)?;
    buf.clear();
    for &i in db.items() {
        buf.put_u32_le(i);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserializes a database from the binary format, validating structure.
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Database> {
    let mut all = Vec::new();
    r.read_to_end(&mut all)?;
    let mut buf = &all[..];

    let fail = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if buf.remaining() < 20 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(fail("unsupported version"));
    }
    let n_items = buf.get_u32_le();
    let n_txns = buf.get_u64_le() as usize;

    if buf.remaining() < (n_txns + 1) * 4 {
        return Err(fail("truncated offsets"));
    }
    let mut offsets = Vec::with_capacity(n_txns + 1);
    for _ in 0..=n_txns {
        offsets.push(buf.get_u32_le());
    }
    let total = *offsets.last().unwrap() as usize;
    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(fail("offsets not monotone"));
    }
    if buf.remaining() != total * 4 {
        return Err(fail("item payload size mismatch"));
    }
    let mut items = Vec::with_capacity(total);
    for _ in 0..total {
        let it = buf.get_u32_le();
        if it >= n_items {
            return Err(fail("item out of range"));
        }
        items.push(it);
    }
    // Re-validate sortedness per transaction.
    for w in offsets.windows(2) {
        let t = &items[w[0] as usize..w[1] as usize];
        if t.windows(2).any(|p| p[0] >= p[1]) {
            return Err(fail("transaction not strictly sorted"));
        }
    }
    Ok(Database::from_raw_unchecked(n_items, offsets, items))
}

/// Writes `db` to `path` in binary format.
pub fn save(db: &Database, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_binary(db, io::BufWriter::new(f))
}

/// Reads a binary database from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<Database> {
    let f = std::fs::File::open(path)?;
    read_binary(io::BufReader::new(f))
}

/// Writes the text format: one transaction per line, space-separated items.
pub fn write_text<W: Write>(db: &Database, mut w: W) -> io::Result<()> {
    for t in db {
        let mut first = true;
        for &i in t {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{i}")?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Parses the text format. `n_items` must be supplied (or pass 0 to infer
/// `max item + 1`). Lines may be empty (empty transactions) and unsorted.
pub fn read_text<R: Read>(r: R, n_items: u32) -> io::Result<Database> {
    let mut content = String::new();
    let mut r = r;
    r.read_to_string(&mut content)?;
    let mut txns: Vec<Vec<Item>> = Vec::new();
    let mut max_item: u32 = 0;
    for line in content.lines() {
        let mut t = Vec::new();
        for tok in line.split_whitespace() {
            let v: u32 = tok
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {tok}")))?;
            max_item = max_item.max(v);
            t.push(v);
        }
        txns.push(t);
    }
    let n = if n_items == 0 {
        if txns.iter().all(|t| t.is_empty()) {
            1
        } else {
            max_item + 1
        }
    } else {
        n_items
    };
    Database::from_transactions(n, txns)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        Database::from_transactions(50, [vec![1u32, 4, 5], vec![], vec![0, 2, 49], vec![7]])
            .unwrap()
    }

    #[test]
    fn binary_roundtrip() {
        let db = sample();
        let mut buf = Vec::new();
        write_binary(&db, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        for cut in [3, 19, buf.len() - 1] {
            assert!(read_binary(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn binary_rejects_out_of_range_item() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        // Corrupt last item to n_items (= 50).
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&50u32.to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let db = sample();
        let mut buf = Vec::new();
        write_text(&db, &mut buf).unwrap();
        let back = read_text(&buf[..], 50).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn text_infers_n_items() {
        let back = read_text("3 1 2\n9".as_bytes(), 0).unwrap();
        assert_eq!(back.n_items(), 10);
        assert_eq!(back.transaction(0), &[1, 2, 3]);
    }

    #[test]
    fn file_roundtrip() {
        let db = sample();
        let dir = std::env::temp_dir().join("arm_dataset_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.armd");
        save(&db, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }
}
