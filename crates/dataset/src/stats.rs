//! Dataset property reporting (Table 2 of the paper).

use crate::Database;

/// Summary statistics of a database, matching the columns of Table 2:
/// average transaction size `T`, maximal-pattern size `I` (a generator
/// parameter, carried through for labelling), transaction count `D`, and the
/// total size of the raw data.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Canonical name, e.g. `T10.I4.D100K`.
    pub name: String,
    /// Mean transaction length (measured).
    pub avg_txn_len: f64,
    /// Longest transaction (measured).
    pub max_txn_len: usize,
    /// Number of transactions.
    pub n_txns: usize,
    /// Number of distinct items the database draws from.
    pub n_items: u32,
    /// Number of distinct items that actually occur.
    pub distinct_items_used: usize,
    /// Total raw size in bytes (CSR arrays).
    pub total_bytes: usize,
}

impl DatasetStats {
    /// Measures `db`, labelling it `name`.
    pub fn measure(name: impl Into<String>, db: &Database) -> Self {
        let mut seen = vec![false; db.n_items() as usize];
        for t in db {
            for &i in t {
                seen[i as usize] = true;
            }
        }
        DatasetStats {
            name: name.into(),
            avg_txn_len: db.avg_len(),
            max_txn_len: db.max_len(),
            n_txns: db.len(),
            n_items: db.n_items(),
            distinct_items_used: seen.iter().filter(|&&b| b).count(),
            total_bytes: db.size_bytes(),
        }
    }

    /// Size in megabytes (Table 2 reports MB).
    pub fn total_mb(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Formats the canonical dataset name used throughout the paper.
    pub fn dataset_name(t: usize, i: usize, d: usize) -> String {
        let d_label = if d.is_multiple_of(1_000_000) && d >= 1_000_000 {
            format!("{}M", d / 1_000_000)
        } else if d.is_multiple_of(1000) && d >= 1000 {
            format!("{}K", d / 1000)
        } else {
            d.to_string()
        };
        format!("T{t}.I{i}.D{d_label}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    #[test]
    fn measures_basic_stats() {
        let db = Database::from_transactions(10, [vec![1u32, 2, 3], vec![2, 3], vec![9]]).unwrap();
        let s = DatasetStats::measure("toy", &db);
        assert_eq!(s.n_txns, 3);
        assert_eq!(s.max_txn_len, 3);
        assert_eq!(s.distinct_items_used, 4);
        assert!((s.avg_txn_len - 2.0).abs() < 1e-12);
        assert_eq!(s.total_bytes, db.size_bytes());
    }

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(DatasetStats::dataset_name(10, 4, 100_000), "T10.I4.D100K");
        assert_eq!(
            DatasetStats::dataset_name(10, 6, 3_200_000),
            "T10.I6.D3200K"
        );
        assert_eq!(DatasetStats::dataset_name(5, 2, 500), "T5.I2.D500");
    }
}
