//! Property tests: the hash-tree counting kernel must agree with naive
//! subset counting for every placement policy, hash function, visited
//! mode, and short-circuit setting, over arbitrary candidate sets and
//! databases.

use arm_balance::{BitonicHash, HashFn, ModHash};
use arm_dataset::Database;
use arm_hashtree::{
    freeze_policy, naive_counts, CandidateSet, CountOptions, CountScratch, CounterRef,
    PlacementPolicy, TreeBuilder, VisitedMode, WorkMeter,
};
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;

const N_ITEMS: u32 = 14;

/// Strategy: a set of distinct sorted k-itemsets.
fn candidates(k: usize) -> impl Strategy<Value = CandidateSet> {
    btree_set(btree_set(0..N_ITEMS, k), 0..25).prop_map(move |sets| {
        let mut c = CandidateSet::new(k as u32);
        for s in sets {
            let items: Vec<u32> = s.into_iter().collect();
            c.push(&items);
        }
        c
    })
}

fn database() -> impl Strategy<Value = Database> {
    vec(vec(0..N_ITEMS, 0..10), 0..30)
        .prop_map(|txns| Database::from_transactions(N_ITEMS, txns).unwrap())
}

fn count_with(
    cands: &CandidateSet,
    db: &Database,
    hash: &dyn HashFn,
    policy: PlacementPolicy,
    threshold: usize,
    opts: CountOptions,
) -> Vec<u32> {
    struct Dyn<'a>(&'a dyn HashFn);
    impl HashFn for Dyn<'_> {
        fn hash(&self, i: u32) -> u32 {
            self.0.hash(i)
        }
        fn fanout(&self) -> u32 {
            self.0.fanout()
        }
    }
    let hash = Dyn(hash);
    let b = TreeBuilder::new(cands, &hash, threshold);
    b.insert_all();
    let tree = freeze_policy(&b, policy);
    let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
    let mut meter = WorkMeter::default();
    if tree.counters_inline() {
        tree.count_partition(
            &hash,
            db,
            0..db.len(),
            &mut scratch,
            &mut CounterRef::Inline,
            opts,
            &mut meter,
        );
        tree.inline_counts()
    } else {
        let shared = arm_mem::FlatCounters::new(cands.len());
        tree.count_partition(
            &hash,
            db,
            0..db.len(),
            &mut scratch,
            &mut CounterRef::Shared(&shared),
            opts,
            &mut meter,
        );
        shared.snapshot()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counting_matches_naive(
        cands in candidates(3),
        db in database(),
        policy_ix in 0usize..8,
        fanout in 2u32..6,
        threshold in 1usize..5,
        bitonic in any::<bool>(),
        short_circuit in any::<bool>(),
        level_path in any::<bool>(),
    ) {
        let expected = naive_counts(&cands, &db);
        let hash: Box<dyn HashFn> = if bitonic {
            Box::new(BitonicHash::new(fanout))
        } else {
            Box::new(ModHash::new(fanout))
        };
        let opts = CountOptions {
            short_circuit,
            visited: if level_path { VisitedMode::LevelPath } else { VisitedMode::PerNode },
        };
        let got = count_with(
            &cands,
            &db,
            hash.as_ref(),
            PlacementPolicy::ALL[policy_ix],
            threshold,
            opts,
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn counting_matches_naive_k2(
        cands in candidates(2),
        db in database(),
        fanout in 2u32..8,
    ) {
        let expected = naive_counts(&cands, &db);
        let hash = ModHash::new(fanout);
        let got = count_with(
            &cands,
            &db,
            &hash,
            PlacementPolicy::Spp,
            2,
            CountOptions::default(),
        );
        prop_assert_eq!(got, expected);
    }

    /// Parallel insertion produces the same frozen image counts as
    /// sequential insertion.
    #[test]
    fn parallel_build_equivalent(
        cands in candidates(3),
        db in database(),
    ) {
        prop_assume!(cands.len() >= 2);
        let hash = ModHash::new(3);
        let seq = TreeBuilder::new(&cands, &hash, 2);
        seq.insert_all();
        let par = TreeBuilder::new(&cands, &hash, 2);
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let par = &par;
                let n = cands.len() as u32;
                s.spawn(move || {
                    let mut id = t;
                    while id < n {
                        par.insert(id);
                        id += 3;
                    }
                });
            }
        });
        let count = |b: &TreeBuilder<'_, ModHash>| {
            let tree = freeze_policy(b, PlacementPolicy::Gpp);
            let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions::default(),
                &mut meter,
            );
            tree.inline_counts()
        };
        prop_assert_eq!(count(&seq), count(&par));
    }

    /// Short-circuiting never changes counts, only the visit tally.
    #[test]
    fn short_circuit_only_saves_work(
        cands in candidates(3),
        db in database(),
    ) {
        let hash = ModHash::new(3);
        let run = |sc: bool| {
            let b = TreeBuilder::new(&cands, &hash, 2);
            b.insert_all();
            let tree = freeze_policy(&b, PlacementPolicy::Spp);
            let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions { short_circuit: sc, ..CountOptions::default() },
                &mut meter,
            );
            (tree.inline_counts(), meter.node_visits)
        };
        let (counts_off, visits_off) = run(false);
        let (counts_on, visits_on) = run(true);
        prop_assert_eq!(counts_off, counts_on);
        prop_assert!(visits_on <= visits_off);
    }
}
