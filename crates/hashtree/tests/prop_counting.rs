//! Property tests: the hash-tree counting kernel must agree with naive
//! subset counting for every placement policy, hash function, visited
//! mode, short-circuit setting, and fast-path knob (hash memoization,
//! transaction trimming, explicit-stack traversal), over arbitrary
//! candidate sets and databases.

use arm_balance::{BitonicHash, HashFn, IndirectionHash, ModHash};
use arm_dataset::Database;
use arm_hashtree::{
    freeze_policy, naive_counts, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter,
    PlacementPolicy, TreeBuilder, VisitedMode, WorkMeter,
};
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;

const N_ITEMS: u32 = 14;

/// Strategy: a set of distinct sorted k-itemsets.
fn candidates(k: usize) -> impl Strategy<Value = CandidateSet> {
    btree_set(btree_set(0..N_ITEMS, k), 0..25).prop_map(move |sets| {
        let mut c = CandidateSet::new(k as u32);
        for s in sets {
            let items: Vec<u32> = s.into_iter().collect();
            c.push(&items);
        }
        c
    })
}

fn database() -> impl Strategy<Value = Database> {
    vec(vec(0..N_ITEMS, 0..10), 0..30)
        .prop_map(|txns| Database::from_transactions(N_ITEMS, txns).unwrap())
}

/// The three hash families under test; `Indirection` is built over the
/// distinct candidate items (standing in for F1).
fn make_hash(kind: usize, fanout: u32, cands: &CandidateSet) -> Box<dyn HashFn> {
    match kind {
        0 => Box::new(ModHash::new(fanout)),
        1 => Box::new(BitonicHash::new(fanout)),
        _ => {
            let items: std::collections::BTreeSet<u32> =
                cands.iter().flat_map(|(_, s)| s.iter().copied()).collect();
            let items: Vec<u32> = items.into_iter().collect();
            Box::new(IndirectionHash::for_frequent_items(&items, N_ITEMS, fanout))
        }
    }
}

fn count_with(
    cands: &CandidateSet,
    db: &Database,
    hash: &dyn HashFn,
    policy: PlacementPolicy,
    threshold: usize,
    opts: CountOptions,
    trim: bool,
) -> Vec<u32> {
    struct Dyn<'a>(&'a dyn HashFn);
    impl HashFn for Dyn<'_> {
        fn hash(&self, i: u32) -> u32 {
            self.0.hash(i)
        }
        fn fanout(&self) -> u32 {
            self.0.fanout()
        }
    }
    let hash = Dyn(hash);
    let b = TreeBuilder::new(cands, &hash, threshold);
    b.insert_all();
    let tree = freeze_policy(&b, policy);
    let filter = trim.then(|| ItemFilter::from_candidates(cands, N_ITEMS));
    let filter = filter.as_ref();
    let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
    let mut meter = WorkMeter::default();
    if tree.counters_inline() {
        tree.count_partition(
            &hash,
            db,
            0..db.len(),
            filter,
            &mut scratch,
            &mut CounterRef::Inline,
            opts,
            &mut meter,
        );
        tree.inline_counts()
    } else {
        let shared = arm_mem::FlatCounters::new(cands.len());
        tree.count_partition(
            &hash,
            db,
            0..db.len(),
            filter,
            &mut scratch,
            &mut CounterRef::Shared(&shared),
            opts,
            &mut meter,
        );
        shared.snapshot()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counting_matches_naive(
        cands in candidates(3),
        db in database(),
        policy_ix in 0usize..8,
        fanout in 2u32..6,
        threshold in 1usize..5,
        hash_kind in 0usize..3,
        short_circuit in any::<bool>(),
        level_path in any::<bool>(),
        hash_memo in any::<bool>(),
        iterative in any::<bool>(),
        trim in any::<bool>(),
    ) {
        let expected = naive_counts(&cands, &db);
        let hash = make_hash(hash_kind, fanout, &cands);
        let opts = CountOptions {
            short_circuit,
            visited: if level_path { VisitedMode::LevelPath } else { VisitedMode::PerNode },
            hash_memo,
            iterative,
        };
        let got = count_with(
            &cands,
            &db,
            hash.as_ref(),
            PlacementPolicy::ALL[policy_ix],
            threshold,
            opts,
            trim,
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn counting_matches_naive_k2(
        cands in candidates(2),
        db in database(),
        fanout in 2u32..8,
    ) {
        let expected = naive_counts(&cands, &db);
        let hash = ModHash::new(fanout);
        let got = count_with(
            &cands,
            &db,
            &hash,
            PlacementPolicy::Spp,
            2,
            CountOptions::default(),
            false,
        );
        prop_assert_eq!(got, expected);
    }

    /// Transaction trimming is lossless: trimmed and untrimmed runs
    /// produce identical counts for every knob setting that shares them.
    #[test]
    fn trimming_is_lossless(
        cands in candidates(3),
        db in database(),
        policy_ix in 0usize..8,
        fanout in 2u32..6,
        threshold in 1usize..5,
        hash_kind in 0usize..3,
    ) {
        let hash = make_hash(hash_kind, fanout, &cands);
        let policy = PlacementPolicy::ALL[policy_ix];
        let opts = CountOptions::default();
        let untrimmed = count_with(&cands, &db, hash.as_ref(), policy, threshold, opts, false);
        let trimmed = count_with(&cands, &db, hash.as_ref(), policy, threshold, opts, true);
        prop_assert_eq!(trimmed, untrimmed);
    }

    /// The explicit-stack walk is observationally identical to the
    /// recursive one: same counts AND bit-identical work meters.
    #[test]
    fn iterative_walk_matches_recursive(
        cands in candidates(3),
        db in database(),
        fanout in 2u32..6,
        short_circuit in any::<bool>(),
        level_path in any::<bool>(),
        hash_memo in any::<bool>(),
    ) {
        let hash = ModHash::new(fanout);
        let run = |iterative: bool| {
            let b = TreeBuilder::new(&cands, &hash, 2);
            b.insert_all();
            let tree = freeze_policy(&b, PlacementPolicy::Gpp);
            let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
            let mut meter = WorkMeter::default();
            let opts = CountOptions {
                short_circuit,
                visited: if level_path { VisitedMode::LevelPath } else { VisitedMode::PerNode },
                hash_memo,
                iterative,
            };
            tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Inline,
                opts,
                &mut meter,
            );
            (tree.inline_counts(), meter)
        };
        let (counts_rec, meter_rec) = run(false);
        let (counts_it, meter_it) = run(true);
        prop_assert_eq!(counts_rec, counts_it);
        prop_assert_eq!(meter_rec, meter_it);
    }

    /// Parallel insertion produces the same frozen image counts as
    /// sequential insertion.
    #[test]
    fn parallel_build_equivalent(
        cands in candidates(3),
        db in database(),
    ) {
        prop_assume!(cands.len() >= 2);
        let hash = ModHash::new(3);
        let seq = TreeBuilder::new(&cands, &hash, 2);
        seq.insert_all();
        let par = TreeBuilder::new(&cands, &hash, 2);
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let par = &par;
                let n = cands.len() as u32;
                s.spawn(move || {
                    let mut id = t;
                    while id < n {
                        par.insert(id);
                        id += 3;
                    }
                });
            }
        });
        let count = |b: &TreeBuilder<'_, ModHash>| {
            let tree = freeze_policy(b, PlacementPolicy::Gpp);
            let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions::default(),
                &mut meter,
            );
            tree.inline_counts()
        };
        prop_assert_eq!(count(&seq), count(&par));
    }

    /// Short-circuiting never changes counts, only the visit tally.
    #[test]
    fn short_circuit_only_saves_work(
        cands in candidates(3),
        db in database(),
    ) {
        let hash = ModHash::new(3);
        let run = |sc: bool| {
            let b = TreeBuilder::new(&cands, &hash, 2);
            b.insert_all();
            let tree = freeze_policy(&b, PlacementPolicy::Spp);
            let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions { short_circuit: sc, ..CountOptions::default() },
                &mut meter,
            );
            (tree.inline_counts(), meter.node_visits)
        };
        let (counts_off, visits_off) = run(false);
        let (counts_on, visits_on) = run(true);
        prop_assert_eq!(counts_off, counts_on);
        prop_assert!(visits_on <= visits_off);
    }
}
