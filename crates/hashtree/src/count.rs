//! The support-counting kernel (§2.1.2, §4.2) and its work accounting.
//!
//! For each transaction the kernel conceptually enumerates all k-subsets in
//! lexicographic order by recursively hashing on transaction items; on
//! reaching a leaf it checks each stored candidate for containment and
//! increments its counter. Leaves are stamped VISITED so a leaf is
//! processed at most once per transaction (required for correctness);
//! extending the stamps to internal nodes is the paper's *short-circuited
//! subset checking* optimization, enabled with
//! [`CountOptions::short_circuit`].
//!
//! On top of that algorithmic layer sit four mechanical fast-path knobs,
//! each independently toggleable so its effect can be ablated:
//!
//! * **Hash memoization** ([`CountOptions::hash_memo`]): each transaction
//!   item is hashed once into a reusable table in [`CountScratch`]; the
//!   walk indexes the table instead of re-hashing the same item at every
//!   tree level (and paying enum dispatch per call for `AnyHash`).
//! * **Transaction trimming** ([`ItemFilter`], passed to
//!   [`count_transaction`]): items that appear in no candidate can never
//!   affect a containment test, so they are dropped from the transaction
//!   before the walk — losslessly shrinking the subset space the walk
//!   enumerates.
//! * **Explicit-stack traversal** ([`CountOptions::iterative`]): the
//!   recursive walk (a 12-argument frame per level) is replaced by an
//!   iterative loop over a small reusable frame stack, visiting nodes in
//!   the exact same order (the [`WorkMeter`] tallies are bit-identical).
//! * **Scratch reuse**: [`CountScratch::retarget`] re-aims an existing
//!   scratch (with all its allocations) at a new tree, so drivers keep one
//!   scratch per thread across all iterations instead of reallocating.

use crate::freeze::{AnyFrozenTree, FrozenTree};
use crate::policy::LeafLayout;
use arm_balance::HashFn;
use arm_dataset::{Database, Item};
use arm_mem::{LocalCounters, SharedCounters, WordStore, NULL_HANDLE};
use std::ops::Range;

/// Where counter increments go during counting.
pub enum CounterRef<'a> {
    /// Counters are inline tree words (`fetch_add` on the store).
    Inline,
    /// Shared segregated array (`L-*` policies).
    Shared(&'a dyn SharedCounters),
    /// Thread-private array (`LCA-*` policies).
    Local(&'a mut LocalCounters),
}

/// Storage scheme for the VISITED stamps.
///
/// The plain scheme keeps one stamp per tree node (`O(nodes)` ≈
/// `O(H^k)` memory, times `P` processors). The paper's §4.2 refinement
/// reduces this to `k · H` stamps per processor: one slot per
/// (depth, hash cell), tagged with the exact root-to-node cell path so a
/// slot collision between different nodes is detected rather than
/// miscounted. Because a node's cell path is unique, a matching tag
/// identifies the node exactly; with internal short-circuiting on (which
/// this mode implies), a subtree is never re-entered after its slot has
/// been reused, so counts are identical to the per-node scheme.
///
/// `LevelPath` requires the packed path to fit in 64 bits
/// (`k · ceil(log2 H) ≤ 64`); the kernel falls back to `PerNode`
/// automatically when it does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VisitedMode {
    /// One stamp per node (`P · H^k` memory in the paper's terms).
    #[default]
    PerNode,
    /// One path-tagged stamp per (depth, cell) (`k · H · P` memory).
    LevelPath,
}

/// Tunable knobs of the counting phase.
#[derive(Debug, Clone, Copy)]
pub struct CountOptions {
    /// Enable VISITED stamps on internal nodes (§4.2). Leaf stamps are
    /// always on — they are required for correct counts. Forced on when
    /// `visited` is [`VisitedMode::LevelPath`] (see its docs).
    pub short_circuit: bool,
    /// VISITED stamp storage scheme.
    pub visited: VisitedMode,
    /// Hash each transaction item once per transaction (via
    /// [`HashFn::hash_slice`]) and index the memo table during the walk
    /// instead of calling `HashFn::hash` per node visit.
    pub hash_memo: bool,
    /// Drive the walk with an explicit frame stack reused across
    /// transactions instead of native recursion. Traversal order and
    /// [`WorkMeter`] tallies are identical either way.
    pub iterative: bool,
}

impl Default for CountOptions {
    fn default() -> Self {
        CountOptions {
            short_circuit: true,
            visited: VisitedMode::PerNode,
            hash_memo: true,
            iterative: true,
        }
    }
}

/// Per-thread abstract work tally, the basis of the simulated-speedup
/// model (see DESIGN.md): load-balance effects show up as differences in
/// per-thread work regardless of how many physical cores execute it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkMeter {
    /// Transactions processed.
    pub txns: u64,
    /// Tree nodes entered (after any short-circuit).
    pub node_visits: u64,
    /// Leaf lists scanned.
    pub leaf_scans: u64,
    /// Candidate-vs-transaction containment tests.
    pub subset_checks: u64,
    /// Successful containment tests (counter increments).
    pub hits: u64,
}

impl WorkMeter {
    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &WorkMeter) {
        self.txns += other.txns;
        self.node_visits += other.node_visits;
        self.leaf_scans += other.leaf_scans;
        self.subset_checks += other.subset_checks;
        self.hits += other.hits;
    }

    /// A single scalar "work units" figure: each tallied event weighted by
    /// a rough relative cost (node visit ≈ hash + load, subset check ≈ k
    /// bitmap probes, hit ≈ one atomic RMW).
    pub fn work_units(&self) -> u64 {
        self.node_visits + 3 * self.subset_checks + 2 * self.hits + self.txns
    }
}

/// One slot of the reduced (`k·H`) stamp table: epoch plus the packed
/// cell path of the node that last claimed the slot.
#[derive(Clone, Copy, Default)]
struct LevelStamp {
    epoch: u32,
    sig: u64,
}

/// A bitmap of items that can matter when counting a candidate set: an
/// item outside every candidate never satisfies a containment test and
/// never needs to be hashed, so dropping it from transactions before the
/// walk is lossless while shrinking the subset space the walk enumerates.
///
/// Built once per iteration (read-only, shared across threads) from the
/// candidates themselves — a tighter set than "items of some member of
/// F_{k-1}", since every C_k candidate is a union of F_{k-1} members.
pub struct ItemFilter {
    bits: Vec<u64>,
}

impl ItemFilter {
    /// Builds the filter from the items of every candidate in `cands`.
    pub fn from_candidates(cands: &crate::candidates::CandidateSet, n_items: u32) -> Self {
        let mut f = Self::empty(n_items);
        for (_, items) in cands.iter() {
            for &i in items {
                f.insert(i);
            }
        }
        f
    }

    /// Builds the filter from an explicit item list (e.g. the union of
    /// F_{k-1} members).
    pub fn from_items(items: impl IntoIterator<Item = Item>, n_items: u32) -> Self {
        let mut f = Self::empty(n_items);
        for i in items {
            f.insert(i);
        }
        f
    }

    fn empty(n_items: u32) -> Self {
        ItemFilter {
            bits: vec![0; (n_items as usize).div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, item: Item) {
        self.bits[(item / 64) as usize] |= 1 << (item % 64);
    }

    /// True when `item` appears in some candidate.
    #[inline(always)]
    pub fn contains(&self, item: Item) -> bool {
        self.bits[(item / 64) as usize] & (1 << (item % 64)) != 0
    }

    /// Copies the items of `txn` that pass the filter into `out` (cleared
    /// first), preserving order.
    pub fn retain_into(&self, txn: &[Item], out: &mut Vec<Item>) {
        out.clear();
        out.extend(txn.iter().copied().filter(|&i| self.contains(i)));
    }
}

/// One level of the explicit-stack walk: the node being expanded and the
/// remaining range of transaction positions to hash at this level.
#[derive(Clone, Copy)]
struct Frame {
    handle: u32,
    /// Next transaction position to hash.
    i: u32,
    /// Last admissible position (inclusive).
    last: u32,
    depth: u32,
    sig: u64,
}

/// Reusable per-thread scratch: the transaction bitmap, the VISITED
/// stamp storage (epoch-tagged so clearing is O(1) per transaction), and
/// the fast-path buffers (hash memo table, trimmed-transaction buffer,
/// explicit-walk frame stack). All allocations survive
/// [`CountScratch::retarget`], so a driver holding one scratch per thread
/// across iterations performs no per-iteration allocation beyond a
/// possible one-time growth.
pub struct CountScratch {
    bitmap: Vec<u64>,
    touched: Vec<Item>,
    /// Per-node stamps ([`VisitedMode::PerNode`]).
    stamps: Vec<u32>,
    /// Per-(depth, cell) stamps ([`VisitedMode::LevelPath`]); length
    /// `(k + 1) * H` once sized.
    level_stamps: Vec<LevelStamp>,
    level_fanout: u32,
    epoch: u32,
    /// Per-transaction hash memo ([`CountOptions::hash_memo`]).
    hash_memo: Vec<u32>,
    /// Per-transaction trimmed copy (when an [`ItemFilter`] is in use).
    trimmed: Vec<Item>,
    /// Explicit-walk stack ([`CountOptions::iterative`]); at most `k + 1`
    /// frames deep.
    frames: Vec<Frame>,
}

impl CountScratch {
    /// Creates scratch for databases over `n_items` items and trees with
    /// up to `n_nodes` nodes.
    pub fn new(n_items: u32, n_nodes: u32) -> Self {
        CountScratch {
            bitmap: vec![0; (n_items as usize).div_ceil(64)],
            touched: Vec::new(),
            stamps: vec![0; n_nodes as usize],
            level_stamps: Vec::new(),
            level_fanout: 0,
            epoch: 0,
            hash_memo: Vec::new(),
            trimmed: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Re-targets the scratch at a new tree (new iteration), reusing every
    /// buffer allocation (bitmap, memo, trim, frames; the stamp tables are
    /// re-zeroed in place and only grow).
    pub fn retarget(&mut self, n_nodes: u32) {
        self.stamps.clear();
        self.stamps.resize(n_nodes as usize, 0);
        self.level_stamps.clear();
        self.level_fanout = 0;
        self.epoch = 0;
    }

    /// Bytes of VISITED-stamp storage currently allocated — the quantity
    /// the paper's `k·H·P` refinement shrinks (per-node needs
    /// `4 · nodes`, level-path needs `12 · (k+1) · H`).
    pub fn stamp_bytes(&self) -> usize {
        self.stamps.len() * size_of::<u32>() + self.level_stamps.len() * size_of::<LevelStamp>()
    }

    fn ensure_levels(&mut self, k: u32, fanout: u32) {
        let need = ((k + 1) * fanout) as usize;
        if self.level_stamps.len() < need || self.level_fanout != fanout {
            self.level_stamps.clear();
            self.level_stamps.resize(need, LevelStamp::default());
            self.level_fanout = fanout;
        }
    }

    #[inline]
    fn begin_txn(&mut self, txn: &[Item]) {
        // O(|txn|) clear via the touched list instead of zeroing the map.
        for &i in &self.touched {
            self.bitmap[(i / 64) as usize] = 0;
        }
        self.touched.clear();
        for &i in txn {
            self.bitmap[(i / 64) as usize] |= 1 << (i % 64);
            self.touched.push(i);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide; reset.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.level_stamps
                .iter_mut()
                .for_each(|s| *s = LevelStamp::default());
            self.epoch = 1;
        }
    }

    #[inline(always)]
    fn contains(&self, item: Item) -> bool {
        self.bitmap[(item / 64) as usize] & (1 << (item % 64)) != 0
    }

    /// Returns true on the first visit of `node_id` this transaction.
    #[inline(always)]
    fn first_visit(&mut self, node_id: u32) -> bool {
        let s = &mut self.stamps[node_id as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Reduced-scheme visit check: slot `(depth, cell)` tagged with the
    /// node's exact packed path. A tag mismatch means a *different* node
    /// reused the slot — claim it and report "first visit".
    #[inline(always)]
    fn first_visit_level(&mut self, depth: u32, cell: u32, sig: u64) -> bool {
        let slot = &mut self.level_stamps[(depth * self.level_fanout + cell) as usize];
        if slot.epoch == self.epoch && slot.sig == sig {
            false
        } else {
            *slot = LevelStamp {
                epoch: self.epoch,
                sig,
            };
            true
        }
    }
}

/// Resolved per-call traversal context.
#[derive(Clone, Copy)]
struct VisitCtx {
    /// Effective visited mode (LevelPath falls back to PerNode when the
    /// packed path exceeds 64 bits).
    level_path: bool,
    /// Internal-node short-circuiting in effect.
    short_circuit: bool,
    /// Bits per path step in the packed signature.
    bits: u32,
}

/// Counts one transaction against the tree.
///
/// When `filter` is given, the transaction is first trimmed to the items
/// the filter admits (losslessly — see [`ItemFilter`]); `None` counts the
/// transaction as-is.
#[allow(clippy::too_many_arguments)] // the paper's knobs are orthogonal
pub fn count_transaction<S: WordStore, F: HashFn>(
    tree: &FrozenTree<S>,
    hash: &F,
    txn: &[Item],
    filter: Option<&ItemFilter>,
    scratch: &mut CountScratch,
    counter: &mut CounterRef<'_>,
    opts: CountOptions,
    meter: &mut WorkMeter,
) {
    debug_assert_eq!(hash.fanout(), tree.fanout);
    // The trim and memo buffers live in the scratch but are walked while
    // the scratch's stamps are mutated, so they are moved out for the call
    // and restored at the end (keeping their allocations).
    let mut trimmed = std::mem::take(&mut scratch.trimmed);
    let txn: &[Item] = match filter {
        Some(f) => {
            f.retain_into(txn, &mut trimmed);
            &trimmed
        }
        None => txn,
    };
    if (txn.len() as u32) < tree.k {
        scratch.trimmed = trimmed;
        return;
    }
    let bits = u64::BITS - u64::from(tree.fanout.max(2) - 1).leading_zeros();
    let level_path = opts.visited == VisitedMode::LevelPath && (tree.k + 1) * bits <= 64;
    let ctx = VisitCtx {
        level_path,
        // LevelPath soundness relies on subtrees never being re-entered,
        // i.e. on internal short-circuiting (see VisitedMode docs).
        short_circuit: opts.short_circuit || level_path,
        bits,
    };
    if level_path {
        scratch.ensure_levels(tree.k, tree.fanout);
    }
    scratch.begin_txn(txn);
    meter.txns += 1;
    let mut memo_buf = std::mem::take(&mut scratch.hash_memo);
    let memo: Option<&[u32]> = if opts.hash_memo {
        hash.hash_slice(txn, &mut memo_buf);
        Some(&memo_buf)
    } else {
        None
    };
    if opts.iterative {
        walk_iterative(tree, hash, txn, memo, ctx, scratch, counter, meter);
    } else {
        walk(
            tree, hash, txn, memo, 0, tree.root, 0, 0, 0, ctx, scratch, counter, meter,
        );
    }
    scratch.hash_memo = memo_buf;
    scratch.trimmed = trimmed;
}

/// Counts a contiguous range of database transactions (one processor's
/// partition in CCPD).
#[allow(clippy::too_many_arguments)] // mirrors count_transaction's knobs
pub fn count_partition<S: WordStore, F: HashFn>(
    tree: &FrozenTree<S>,
    hash: &F,
    db: &Database,
    range: Range<usize>,
    filter: Option<&ItemFilter>,
    scratch: &mut CountScratch,
    counter: &mut CounterRef<'_>,
    opts: CountOptions,
    meter: &mut WorkMeter,
) {
    for i in range {
        count_transaction(
            tree,
            hash,
            db.transaction(i),
            filter,
            scratch,
            counter,
            opts,
            meter,
        );
    }
}

/// Resolves the hash cell for transaction position `i`: memo lookup when
/// memoized, direct hash otherwise.
#[inline(always)]
fn cell_at<F: HashFn>(hash: &F, txn: &[Item], memo: Option<&[u32]>, i: usize) -> u32 {
    match memo {
        Some(m) => m[i],
        None => hash.hash(txn[i]),
    }
}

/// Enters `handle` during a walk: performs the VISITED bookkeeping, scans
/// the node if it is a leaf, and otherwise returns the expansion frame for
/// its children. Shared by the recursive and iterative drivers so their
/// per-node semantics (and [`WorkMeter`] tallies) cannot drift apart.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn enter_node<S: WordStore>(
    tree: &FrozenTree<S>,
    txn: &[Item],
    handle: u32,
    pos: usize,
    depth: u32,
    cell: u32,
    sig: u64,
    ctx: VisitCtx,
    scratch: &mut CountScratch,
    counter: &mut CounterRef<'_>,
    meter: &mut WorkMeter,
) -> Option<Frame> {
    let header = tree.store.load(handle, 0);
    let node_id = header >> 1;
    let is_leaf = header & 1 == 1;

    if is_leaf {
        // Leaf stamps are mandatory: the same leaf is reachable through
        // many subset prefixes and must contribute once per transaction.
        let first = if ctx.level_path {
            scratch.first_visit_level(depth, cell, sig)
        } else {
            scratch.first_visit(node_id)
        };
        if !first {
            return None;
        }
        meter.node_visits += 1;
        meter.leaf_scans += 1;
        scan_leaf(tree, handle, scratch, counter, meter);
        return None;
    }

    if ctx.short_circuit {
        let first = if ctx.level_path {
            scratch.first_visit_level(depth, cell, sig)
        } else {
            scratch.first_visit(node_id)
        };
        if !first {
            return None;
        }
    }
    meter.node_visits += 1;

    // At depth d we may hash on transaction items [pos ..= n - (k - d)]:
    // enough items must remain to complete a k-subset.
    let remaining_needed = (tree.k - depth) as usize;
    let last = txn.len() - remaining_needed;
    Some(Frame {
        handle,
        i: pos as u32,
        last: last as u32,
        depth,
        sig,
    })
}

#[allow(clippy::too_many_arguments)]
fn walk<S: WordStore, F: HashFn>(
    tree: &FrozenTree<S>,
    hash: &F,
    txn: &[Item],
    memo: Option<&[u32]>,
    pos: usize,
    handle: u32,
    depth: u32,
    cell: u32,
    sig: u64,
    ctx: VisitCtx,
    scratch: &mut CountScratch,
    counter: &mut CounterRef<'_>,
    meter: &mut WorkMeter,
) {
    let Some(frame) = enter_node(
        tree, txn, handle, pos, depth, cell, sig, ctx, scratch, counter, meter,
    ) else {
        return;
    };
    for i in frame.i as usize..=frame.last as usize {
        let child_cell = cell_at(hash, txn, memo, i);
        let child = tree.store.load(handle, 1 + child_cell);
        if child != NULL_HANDLE {
            walk(
                tree,
                hash,
                txn,
                memo,
                i + 1,
                child,
                depth + 1,
                child_cell,
                (sig << ctx.bits) | u64::from(child_cell),
                ctx,
                scratch,
                counter,
                meter,
            );
        }
    }
}

/// The explicit-stack twin of [`walk`]: same depth-first order, same
/// stamps, same meter tallies, but the per-level state is a 24-byte
/// [`Frame`] in a reusable buffer instead of a native call frame carrying
/// a dozen spilled arguments.
#[allow(clippy::too_many_arguments)]
fn walk_iterative<S: WordStore, F: HashFn>(
    tree: &FrozenTree<S>,
    hash: &F,
    txn: &[Item],
    memo: Option<&[u32]>,
    ctx: VisitCtx,
    scratch: &mut CountScratch,
    counter: &mut CounterRef<'_>,
    meter: &mut WorkMeter,
) {
    let mut frames = std::mem::take(&mut scratch.frames);
    frames.clear();
    if let Some(f) = enter_node(
        tree, txn, tree.root, 0, 0, 0, 0, ctx, scratch, counter, meter,
    ) {
        frames.push(f);
    }
    while let Some(top) = frames.last_mut() {
        if top.i > top.last {
            frames.pop();
            continue;
        }
        let i = top.i as usize;
        top.i += 1;
        let (handle, depth, sig) = (top.handle, top.depth, top.sig);
        let child_cell = cell_at(hash, txn, memo, i);
        let child = tree.store.load(handle, 1 + child_cell);
        if child != NULL_HANDLE {
            if let Some(f) = enter_node(
                tree,
                txn,
                child,
                i + 1,
                depth + 1,
                child_cell,
                (sig << ctx.bits) | u64::from(child_cell),
                ctx,
                scratch,
                counter,
                meter,
            ) {
                frames.push(f);
            }
        }
    }
    scratch.frames = frames;
}

#[inline]
fn scan_leaf<S: WordStore>(
    tree: &FrozenTree<S>,
    leaf: u32,
    scratch: &mut CountScratch,
    counter: &mut CounterRef<'_>,
    meter: &mut WorkMeter,
) {
    let n = tree.store.load(leaf, 1);
    let k = tree.k;
    let count_words = u32::from(tree.counters_inline);
    let cand_words = 1 + k + count_words;
    for e in 0..n {
        // Resolve the candidate words' (block, offset).
        let (block, off) = match tree.leaf_layout {
            LeafLayout::Linked => (tree.store.load(leaf, 2 + e), 0),
            LeafLayout::Fused => (leaf, 2 + e * cand_words),
        };
        meter.subset_checks += 1;
        let mut contained = true;
        for j in 0..k {
            let item = tree.store.load(block, off + 1 + j);
            if !scratch.contains(item) {
                contained = false;
                break;
            }
        }
        if contained {
            meter.hits += 1;
            match counter {
                CounterRef::Inline => {
                    tree.store.fetch_add(block, off + 1 + k, 1);
                }
                CounterRef::Shared(c) => {
                    let cand = tree.store.load(block, off);
                    c.increment(cand);
                }
                CounterRef::Local(c) => {
                    let cand = tree.store.load(block, off);
                    c.increment(cand);
                }
            }
        }
    }
}

impl AnyFrozenTree {
    /// Counts a range of transactions, dispatching the storage backend
    /// once (outside the hot loop).
    #[allow(clippy::too_many_arguments)]
    pub fn count_partition<F: HashFn>(
        &self,
        hash: &F,
        db: &Database,
        range: Range<usize>,
        filter: Option<&ItemFilter>,
        scratch: &mut CountScratch,
        counter: &mut CounterRef<'_>,
        opts: CountOptions,
        meter: &mut WorkMeter,
    ) {
        match self {
            AnyFrozenTree::Contiguous(t) => {
                count_partition(t, hash, db, range, filter, scratch, counter, opts, meter)
            }
            AnyFrozenTree::Scatter(t) => {
                count_partition(t, hash, db, range, filter, scratch, counter, opts, meter)
            }
        }
    }

    /// Counts a single transaction.
    #[allow(clippy::too_many_arguments)]
    pub fn count_transaction<F: HashFn>(
        &self,
        hash: &F,
        txn: &[Item],
        filter: Option<&ItemFilter>,
        scratch: &mut CountScratch,
        counter: &mut CounterRef<'_>,
        opts: CountOptions,
        meter: &mut WorkMeter,
    ) {
        match self {
            AnyFrozenTree::Contiguous(t) => {
                count_transaction(t, hash, txn, filter, scratch, counter, opts, meter)
            }
            AnyFrozenTree::Scatter(t) => {
                count_transaction(t, hash, txn, filter, scratch, counter, opts, meter)
            }
        }
    }
}

/// Reference implementation: counts supports by brute-force subset testing
/// (no tree). Used by tests and property checks as ground truth.
pub fn naive_counts(cands: &crate::candidates::CandidateSet, db: &Database) -> Vec<u32> {
    let mut counts = vec![0u32; cands.len()];
    for t in db {
        for (id, items) in cands.iter() {
            if is_subset(items, t) {
                counts[id as usize] += 1;
            }
        }
    }
    counts
}

/// Two-pointer subset test over sorted slices.
pub fn is_subset(needle: &[Item], hay: &[Item]) -> bool {
    let mut h = 0usize;
    'outer: for &x in needle {
        while h < hay.len() {
            match hay[h].cmp(&x) {
                std::cmp::Ordering::Less => h += 1,
                std::cmp::Ordering::Equal => {
                    h += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;
    use crate::candidates::CandidateSet;
    use crate::freeze::freeze_policy;
    use crate::policy::PlacementPolicy;
    use arm_balance::{BitonicHash, HashFn, ModHash};
    use arm_mem::FlatCounters;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    fn c2() -> CandidateSet {
        let mut c = CandidateSet::new(2);
        for s in [[1u32, 2], [1, 4], [1, 5], [2, 4], [2, 5], [4, 5]] {
            c.push(&s);
        }
        c
    }

    #[test]
    fn is_subset_cases() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
        assert!(is_subset(&[2], &[2]));
    }

    #[test]
    fn paper_c2_counts() {
        // Expected supports (§2.1.3): (1,2)=2 (1,4)=2 (1,5)=2 (2,4)=1
        // (2,5)=1 (4,5)=3.
        let db = paper_db();
        let cands = c2();
        assert_eq!(naive_counts(&cands, &db), vec![2, 2, 2, 1, 1, 3]);
    }

    fn tree_counts_opts(
        policy: PlacementPolicy,
        cands: &CandidateSet,
        db: &Database,
        hash: &dyn HashFn,
        opts: CountOptions,
        trim: bool,
    ) -> Vec<u32> {
        // dyn HashFn is fine for tests.
        struct Dyn<'a>(&'a dyn HashFn);
        impl HashFn for Dyn<'_> {
            fn hash(&self, i: u32) -> u32 {
                self.0.hash(i)
            }
            fn fanout(&self) -> u32 {
                self.0.fanout()
            }
        }
        let hash = Dyn(hash);
        let b = TreeBuilder::new(cands, &hash, 2);
        b.insert_all();
        let tree = freeze_policy(&b, policy);
        let filter = trim.then(|| ItemFilter::from_candidates(cands, db.n_items()));
        let filter = filter.as_ref();
        let mut scratch = CountScratch::new(db.n_items(), tree.n_nodes());
        let mut meter = WorkMeter::default();
        if tree.counters_inline() {
            let mut cref = CounterRef::Inline;
            tree.count_partition(
                &hash,
                db,
                0..db.len(),
                filter,
                &mut scratch,
                &mut cref,
                opts,
                &mut meter,
            );
            tree.inline_counts()
        } else if policy.per_thread_counters() {
            let mut local = arm_mem::LocalCounters::new(cands.len());
            let mut cref = CounterRef::Local(&mut local);
            tree.count_partition(
                &hash,
                db,
                0..db.len(),
                filter,
                &mut scratch,
                &mut cref,
                opts,
                &mut meter,
            );
            arm_mem::counters::reduce(&[local])
        } else {
            let shared = FlatCounters::new(cands.len());
            let mut cref = CounterRef::Shared(&shared);
            tree.count_partition(
                &hash,
                db,
                0..db.len(),
                filter,
                &mut scratch,
                &mut cref,
                opts,
                &mut meter,
            );
            shared.snapshot()
        }
    }

    fn tree_counts(
        policy: PlacementPolicy,
        cands: &CandidateSet,
        db: &Database,
        hash: &dyn HashFn,
        short_circuit: bool,
    ) -> Vec<u32> {
        let opts = CountOptions {
            short_circuit,
            ..CountOptions::default()
        };
        tree_counts_opts(policy, cands, db, hash, opts, false)
    }

    #[test]
    fn all_policies_match_naive_counts() {
        let db = paper_db();
        let cands = c2();
        let expected = naive_counts(&cands, &db);
        let hashes: Vec<Box<dyn HashFn>> =
            vec![Box::new(ModHash::new(2)), Box::new(BitonicHash::new(3))];
        for policy in PlacementPolicy::ALL {
            for h in &hashes {
                for sc in [false, true] {
                    for fast in [false, true] {
                        let opts = CountOptions {
                            short_circuit: sc,
                            visited: VisitedMode::PerNode,
                            hash_memo: fast,
                            iterative: fast,
                        };
                        let got = tree_counts_opts(policy, &cands, &db, h.as_ref(), opts, fast);
                        assert_eq!(got, expected, "{policy} sc={sc} fast={fast}");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_c3_worked_example() {
        let db = paper_db();
        let mut cands = CandidateSet::new(3);
        cands.push(&[1, 4, 5]);
        let h = ModHash::new(2);
        let got = tree_counts(PlacementPolicy::Gpp, &cands, &db, &h, true);
        assert_eq!(got, vec![2]); // F3 = {(1,4,5)} with support 2
    }

    #[test]
    fn short_transactions_are_skipped() {
        let db = Database::from_transactions(8, [vec![1u32], vec![2, 3]]).unwrap();
        let mut cands = CandidateSet::new(3);
        cands.push(&[1, 2, 3]);
        let h = ModHash::new(2);
        let got = tree_counts(PlacementPolicy::Spp, &cands, &db, &h, true);
        assert_eq!(got, vec![0]);
    }

    /// The iterative and recursive walks must not merely agree on counts —
    /// their WorkMeter tallies must be bit-identical, since the simulated
    /// speedup model is built on those tallies.
    #[test]
    fn iterative_walk_meter_is_bit_identical() {
        let db = paper_db();
        let cands = c2();
        let h = BitonicHash::new(3);
        let b = TreeBuilder::new(&cands, &h, 2);
        b.insert_all();
        for visited in [VisitedMode::PerNode, VisitedMode::LevelPath] {
            for sc in [false, true] {
                for memo in [false, true] {
                    let mut meters = Vec::new();
                    for iterative in [false, true] {
                        let tree = freeze_policy(&b, PlacementPolicy::Gpp);
                        let mut scratch = CountScratch::new(db.n_items(), tree.n_nodes());
                        let mut meter = WorkMeter::default();
                        let mut cref = CounterRef::Inline;
                        let opts = CountOptions {
                            short_circuit: sc,
                            visited,
                            hash_memo: memo,
                            iterative,
                        };
                        tree.count_partition(
                            &h,
                            &db,
                            0..db.len(),
                            None,
                            &mut scratch,
                            &mut cref,
                            opts,
                            &mut meter,
                        );
                        assert_eq!(tree.inline_counts(), naive_counts(&cands, &db));
                        meters.push(meter);
                    }
                    assert_eq!(
                        meters[0], meters[1],
                        "visited={visited:?} sc={sc} memo={memo}"
                    );
                }
            }
        }
    }

    #[test]
    fn item_filter_retains_only_candidate_items() {
        let cands = c2(); // items {1, 2, 4, 5}
        let f = ItemFilter::from_candidates(&cands, 8);
        for i in [1u32, 2, 4, 5] {
            assert!(f.contains(i), "item {i}");
        }
        for i in [0u32, 3, 6, 7] {
            assert!(!f.contains(i), "item {i}");
        }
        let mut out = vec![9u32]; // stale contents must be cleared
        f.retain_into(&[0, 1, 2, 3, 4, 5, 6, 7], &mut out);
        assert_eq!(out, vec![1, 2, 4, 5]);

        let g = ItemFilter::from_items([0u32, 65, 127], 128);
        assert!(g.contains(65) && g.contains(0) && g.contains(127));
        assert!(!g.contains(64) && !g.contains(1));
    }

    /// Trimming edge cases: a transaction trimmed below k items (or to
    /// nothing) must simply count zero, and a transaction of all-frequent
    /// items must count exactly as if untrimmed.
    #[test]
    fn trimming_edge_cases() {
        let mut cands = CandidateSet::new(2);
        cands.push(&[1, 4]);
        let h = ModHash::new(3);
        let db = Database::from_transactions(
            16,
            [
                vec![1u32, 4, 7],      // all of {1,4} present + noise → count
                vec![1u32, 7, 9, 12],  // trims to [1]: below k
                vec![7u32, 9, 12, 15], // trims to empty
                vec![1u32, 4],         // all items frequent: untouched by trim
            ],
        )
        .unwrap();
        for trim in [false, true] {
            let got = tree_counts_opts(
                PlacementPolicy::Gpp,
                &cands,
                &db,
                &h,
                CountOptions::default(),
                trim,
            );
            assert_eq!(got, vec![2], "trim={trim}");
        }
    }

    /// Trimming must reduce the walk's work (that is its whole point) on
    /// transactions carrying non-candidate noise. Short-circuiting is off
    /// here so the reduction shows in the visit tally — with stamps on,
    /// every node is entered at most once per transaction either way and
    /// the saving moves to the per-position hash/probe loop instead.
    #[test]
    fn trimming_reduces_node_visits() {
        let mut cands = CandidateSet::new(3);
        cands.push(&[0, 2, 4]);
        cands.push(&[0, 4, 6]);
        let h = ModHash::new(4);
        let b = TreeBuilder::new(&cands, &h, 1);
        b.insert_all();
        // Transactions heavy in items 8..32, none of which appear in a
        // candidate.
        let txns: Vec<Vec<u32>> = (0..8)
            .map(|t| {
                let mut v: Vec<u32> = vec![0, 2, 4, 6];
                v.extend((8..32).filter(|i| (i + t) % 3 != 0));
                v.sort_unstable();
                v
            })
            .collect();
        let db = Database::from_transactions(32, txns).unwrap();
        let mut visits = Vec::new();
        for trim in [false, true] {
            let tree = freeze_policy(&b, PlacementPolicy::Gpp);
            let filter = trim.then(|| ItemFilter::from_candidates(&cands, db.n_items()));
            let mut scratch = CountScratch::new(db.n_items(), tree.n_nodes());
            let mut meter = WorkMeter::default();
            let mut cref = CounterRef::Inline;
            tree.count_partition(
                &h,
                &db,
                0..db.len(),
                filter.as_ref(),
                &mut scratch,
                &mut cref,
                CountOptions {
                    short_circuit: false,
                    ..CountOptions::default()
                },
                &mut meter,
            );
            assert_eq!(tree.inline_counts(), vec![8, 8], "trim={trim}");
            visits.push(meter.node_visits);
        }
        assert!(
            visits[1] < visits[0],
            "trimmed visits {} !< untrimmed visits {}",
            visits[1],
            visits[0]
        );
    }

    #[test]
    fn short_circuit_reduces_node_visits() {
        // A long transaction over a sizeable tree: with internal VISITED
        // stamps the walk touches strictly fewer nodes.
        let mut cands = CandidateSet::new(3);
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                for c in (b + 1)..12 {
                    cands.push(&[a, b, c]);
                }
            }
        }
        let db = Database::from_transactions(12, [(0..12u32).collect::<Vec<_>>()]).unwrap();
        let h = ModHash::new(3);
        let b = TreeBuilder::new(&cands, &h, 4);
        b.insert_all();
        let tree = freeze_policy(&b, PlacementPolicy::Gpp);

        let mut visits = Vec::new();
        for sc in [false, true] {
            let mut scratch = CountScratch::new(12, tree.n_nodes());
            let mut meter = WorkMeter::default();
            let mut cref = CounterRef::Inline;
            tree.count_partition(
                &h,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut cref,
                CountOptions {
                    short_circuit: sc,
                    ..CountOptions::default()
                },
                &mut meter,
            );
            visits.push(meter.node_visits);
            // Every candidate is a subset of the single transaction.
            assert_eq!(meter.hits, cands.len() as u64, "sc={sc}");
        }
        assert!(
            visits[1] < visits[0],
            "short-circuit visits {} !< base visits {}",
            visits[1],
            visits[0]
        );
    }

    /// Exercises both visited modes over an adversarial configuration:
    /// small fan-out (deep trees, many same-cell nodes per level) and
    /// long transactions (heavy node revisiting).
    #[test]
    fn level_path_mode_matches_per_node_counts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..12 {
            let n_items = 16u32;
            let k = 2 + trial % 3; // 2..=4
                                   // Random candidate set.
            let mut raw: Vec<Vec<u32>> = Vec::new();
            for _ in 0..40 {
                let mut s: Vec<u32> = (0..n_items).collect();
                for i in 0..k as usize {
                    let j = rng.gen_range(i..s.len());
                    s.swap(i, j);
                }
                s.truncate(k as usize);
                s.sort_unstable();
                raw.push(s);
            }
            raw.sort();
            raw.dedup();
            let mut cands = CandidateSet::new(k);
            for s in &raw {
                cands.push(s);
            }
            // Random database with long transactions.
            let txns: Vec<Vec<u32>> = (0..60)
                .map(|_| (0..12).map(|_| rng.gen_range(0..n_items)).collect())
                .collect();
            let db = Database::from_transactions(n_items, txns).unwrap();
            let expected = naive_counts(&cands, &db);

            for h in [2u32, 3, 5] {
                let hash = ModHash::new(h);
                let b = TreeBuilder::new(&cands, &hash, 2);
                b.insert_all();
                let tree = freeze_policy(&b, PlacementPolicy::Gpp);
                for visited in [VisitedMode::PerNode, VisitedMode::LevelPath] {
                    let mut scratch = CountScratch::new(n_items, tree.n_nodes());
                    let mut meter = WorkMeter::default();
                    let mut cref = CounterRef::Inline;
                    // Re-freeze per mode so inline counters start at zero.
                    let tree = freeze_policy(&b, PlacementPolicy::Gpp);
                    tree.count_partition(
                        &hash,
                        &db,
                        0..db.len(),
                        None,
                        &mut scratch,
                        &mut cref,
                        CountOptions {
                            short_circuit: true,
                            visited,
                            ..CountOptions::default()
                        },
                        &mut meter,
                    );
                    assert_eq!(
                        tree.inline_counts(),
                        expected,
                        "trial={trial} k={k} h={h} mode={visited:?}"
                    );
                    let _ = &tree;
                }
                let _ = &tree;
            }
        }
    }

    #[test]
    fn level_path_reduces_stamp_memory() {
        // A deep tree with far more nodes than `(k+1) * H` level slots —
        // the regime the paper's refinement targets (it cites ~0.5M
        // candidates in early iterations).
        let mut cands = CandidateSet::new(3);
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                for c in (b + 1)..40 {
                    if (a + b + c) % 2 == 0 {
                        cands.push(&[a, b, c]);
                    }
                }
            }
        }
        // Large fan-out: the per-node table scales with H^k node counts
        // while the level table stays at (k+1)*H slots.
        let h = ModHash::new(64);
        let b = TreeBuilder::new(&cands, &h, 1);
        b.insert_all();
        let tree = freeze_policy(&b, PlacementPolicy::Gpp);
        let db = Database::from_transactions(40, [(0..20u32).collect::<Vec<_>>()]).unwrap();
        assert!(
            tree.n_nodes() > 1000,
            "need a big tree, got {}",
            tree.n_nodes()
        );

        let measure = |visited: VisitedMode| {
            let mut scratch = CountScratch::new(60, tree.n_nodes());
            if visited == VisitedMode::LevelPath {
                // The kernel sizes the level table on first use; the
                // per-node table is what we avoid paying for.
                scratch = CountScratch::new(60, 0);
            }
            let mut meter = WorkMeter::default();
            let mut cref = CounterRef::Inline;
            tree.count_partition(
                &h,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut cref,
                CountOptions {
                    short_circuit: true,
                    visited,
                    ..CountOptions::default()
                },
                &mut meter,
            );
            scratch.stamp_bytes()
        };
        let per_node = measure(VisitedMode::PerNode);
        let level = measure(VisitedMode::LevelPath);
        assert!(
            level < per_node,
            "level-path stamps {level} B should undercut per-node {per_node} B"
        );
    }

    #[test]
    fn level_path_falls_back_when_path_too_deep() {
        // k=9, H=256 → 9 * 8 bits = 72 > 64: must fall back to per-node
        // stamps and still count correctly.
        let mut cands = CandidateSet::new(9);
        cands.push(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let h = ModHash::new(256);
        let b = TreeBuilder::new(&cands, &h, 1);
        b.insert_all();
        let tree = freeze_policy(&b, PlacementPolicy::Spp);
        let db = Database::from_transactions(300, [(0..10u32).collect::<Vec<_>>()]).unwrap();
        let mut scratch = CountScratch::new(300, tree.n_nodes());
        let mut meter = WorkMeter::default();
        let mut cref = CounterRef::Inline;
        tree.count_partition(
            &h,
            &db,
            0..db.len(),
            None,
            &mut scratch,
            &mut cref,
            CountOptions {
                short_circuit: true,
                visited: VisitedMode::LevelPath,
                ..CountOptions::default()
            },
            &mut meter,
        );
        assert_eq!(tree.inline_counts(), vec![1]);
    }

    #[test]
    fn meter_merge_and_units() {
        let mut a = WorkMeter {
            txns: 1,
            node_visits: 2,
            leaf_scans: 3,
            subset_checks: 4,
            hits: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.txns, 2);
        assert_eq!(a.subset_checks, 8);
        assert!(a.work_units() > 0);
    }

    #[test]
    fn scratch_epoch_wrap_resets_stamps() {
        let mut s = CountScratch::new(4, 2);
        s.epoch = u32::MAX;
        s.begin_txn(&[0, 1]);
        assert_eq!(s.epoch, 1);
        assert!(s.first_visit(0));
        assert!(!s.first_visit(0));
        assert!(s.first_visit(1));
    }

    #[test]
    fn scratch_bitmap_clears_between_txns() {
        let mut s = CountScratch::new(128, 1);
        s.begin_txn(&[0, 64, 127]);
        assert!(s.contains(64));
        s.begin_txn(&[1]);
        assert!(!s.contains(64));
        assert!(!s.contains(0));
        assert!(s.contains(1));
    }
}
