//! Flat storage for the candidate k-itemsets of one iteration.
//!
//! Candidates are identified by dense ids (`0 .. len`). Items of candidate
//! `c` occupy the k-stride slice `items[c*k .. (c+1)*k]`, giving the
//! generation and extraction phases a cache-friendly layout and the hash
//! tree a compact thing to reference.

use arm_dataset::Item;

/// The candidate set `C_k` for one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    k: u32,
    items: Vec<Item>,
}

impl CandidateSet {
    /// Creates an empty candidate set for k-itemsets (`k >= 1`).
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "candidate itemsets must have at least one item");
        CandidateSet {
            k,
            items: Vec::new(),
        }
    }

    /// Creates an empty set with capacity for `n` candidates.
    pub fn with_capacity(k: u32, n: usize) -> Self {
        let mut s = Self::new(k);
        s.items.reserve(n * k as usize);
        s
    }

    /// Itemset length `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len() / self.k as usize
    }

    /// True when no candidates are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a candidate (must be strictly sorted, length `k`); returns
    /// its id.
    pub fn push(&mut self, itemset: &[Item]) -> u32 {
        assert_eq!(itemset.len(), self.k as usize, "itemset length != k");
        debug_assert!(
            itemset.windows(2).all(|w| w[0] < w[1]),
            "itemset must be strictly sorted: {itemset:?}"
        );
        let id = self.len() as u32;
        self.items.extend_from_slice(itemset);
        id
    }

    /// The items of candidate `id`.
    #[inline]
    pub fn get(&self, id: u32) -> &[Item] {
        let k = self.k as usize;
        let base = id as usize * k;
        &self.items[base..base + k]
    }

    /// Iterates over `(id, items)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[Item])> + '_ {
        (0..self.len() as u32).map(move |id| (id, self.get(id)))
    }

    /// Returns the candidates for which `keep` holds, preserving order.
    pub fn filtered(&self, mut keep: impl FnMut(u32, &[Item]) -> bool) -> CandidateSet {
        let mut out = CandidateSet::new(self.k);
        for (id, items) in self.iter() {
            if keep(id, items) {
                out.items.extend_from_slice(items);
            }
        }
        out
    }

    /// Appends all candidates of `other` (same `k`).
    pub fn extend_from(&mut self, other: &CandidateSet) {
        assert_eq!(
            self.k, other.k,
            "cannot merge candidate sets of different k"
        );
        self.items.extend_from_slice(&other.items);
    }

    /// Sorts candidates lexicographically, making the set canonical
    /// regardless of (parallel) generation order. Returns the permutation
    /// applied (`perm[new_id] = old_id`).
    pub fn sort_lex(&mut self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by(|&a, &b| self.get(a).cmp(self.get(b)));
        let mut sorted = Vec::with_capacity(self.items.len());
        for &old in &order {
            sorted.extend_from_slice(self.get(old));
        }
        self.items = sorted;
        order
    }

    /// True if candidates are in strictly increasing lexicographic order
    /// (implies no duplicates).
    pub fn is_sorted_unique(&self) -> bool {
        (1..self.len() as u32).all(|id| self.get(id - 1) < self.get(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = CandidateSet::new(3);
        assert!(c.is_empty());
        let a = c.push(&[1, 4, 5]);
        let b = c.push(&[2, 3, 9]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), &[1, 4, 5]);
        assert_eq!(c.get(1), &[2, 3, 9]);
    }

    #[test]
    #[should_panic(expected = "length != k")]
    fn rejects_wrong_length() {
        CandidateSet::new(2).push(&[1, 2, 3]);
    }

    #[test]
    fn iter_yields_all() {
        let mut c = CandidateSet::new(2);
        c.push(&[0, 1]);
        c.push(&[0, 2]);
        let v: Vec<(u32, Vec<Item>)> = c.iter().map(|(i, s)| (i, s.to_vec())).collect();
        assert_eq!(v, vec![(0, vec![0, 1]), (1, vec![0, 2])]);
    }

    #[test]
    fn sort_lex_canonicalizes() {
        let mut c = CandidateSet::new(2);
        c.push(&[3, 5]);
        c.push(&[1, 2]);
        c.push(&[1, 9]);
        let perm = c.sort_lex();
        assert_eq!(perm, vec![1, 2, 0]);
        assert_eq!(c.get(0), &[1, 2]);
        assert_eq!(c.get(1), &[1, 9]);
        assert_eq!(c.get(2), &[3, 5]);
        assert!(c.is_sorted_unique());
    }

    #[test]
    fn sorted_unique_detects_duplicates() {
        let mut c = CandidateSet::new(2);
        c.push(&[1, 2]);
        c.push(&[1, 2]);
        assert!(!c.is_sorted_unique());
    }
}
