//! Freezing a built tree into its placement-policy memory image.
//!
//! After the (possibly parallel) build phase, the tree is *frozen*: every
//! node, itemset and counter is emitted as a block of `u32` words into a
//! [`WordStore`], in the order and layout dictated by the
//! [`PlacementPolicy`]. For GPP this emission **is** the paper's
//! depth-first remapping step; for SPP/LPP it replays creation order into
//! the region; for CCPD it reproduces the scattered standard-malloc image.
//!
//! # Block encodings (all words `u32`)
//!
//! * internal node: `[node_id << 1, child_0 .. child_{H-1}]` (children are
//!   handles, `NULL_HANDLE` = empty cell);
//! * leaf node (linked): `[node_id << 1 | 1, n, entry_handle * n]`;
//! * leaf node (fused): `[node_id << 1 | 1, n, (cand_id, item*k, count?) * n]`;
//! * itemset block (linked): `[cand_id, item*k, count?]`.
//!
//! The optional `count` word is present only for inline counter placement.

use crate::build::{NodeView, TreeBuilder};
use crate::policy::{CounterPlacement, EmitOrder, LeafLayout, PlacementPolicy, StoreKind};
use arm_balance::HashFn;
use arm_mem::{
    ContiguousBuilder, ContiguousStore, Handle, ScatterBuilder, ScatterStore, WordStore,
    WordStoreBuilder, NULL_HANDLE,
};

/// The immutable, placement-laid-out candidate hash tree used by the
/// support-counting phase.
pub struct FrozenTree<S: WordStore> {
    pub(crate) store: S,
    pub(crate) root: Handle,
    pub(crate) k: u32,
    pub(crate) fanout: u32,
    pub(crate) n_nodes: u32,
    pub(crate) n_cands: u32,
    pub(crate) leaf_layout: LeafLayout,
    pub(crate) counters_inline: bool,
    /// For inline counters: the block holding candidate `c`'s words
    /// (its count lives at word `1 + k`). `NULL_HANDLE` when external or
    /// when the candidate never got inserted.
    pub(crate) cand_block: Vec<Handle>,
    /// For fused layout the candidate words live *inside* a leaf block at
    /// this word offset; for linked layout the offset is 0.
    pub(crate) cand_offset: Vec<u32>,
}

impl<S: WordStore> FrozenTree<S> {
    /// Itemset length of this iteration.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash-table fan-out `H`.
    pub fn fanout(&self) -> u32 {
        self.fanout
    }

    /// Number of reachable nodes (bounds the visited-stamp array).
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Number of candidates the tree was built over.
    pub fn n_cands(&self) -> u32 {
        self.n_cands
    }

    /// True when support counters are stored inside the tree blocks.
    pub fn counters_inline(&self) -> bool {
        self.counters_inline
    }

    /// Total bytes of the frozen image (Fig. 6 accounting).
    pub fn total_bytes(&self) -> usize {
        self.store.total_bytes()
    }

    /// Reads candidate `c`'s inline counter. Panics when counters are
    /// external (the mining driver owns them in that case).
    pub fn inline_count(&self, cand: u32) -> u32 {
        assert!(self.counters_inline, "counters are external");
        let h = self.cand_block[cand as usize];
        if h == NULL_HANDLE {
            return 0;
        }
        self.store
            .load(h, self.cand_offset[cand as usize] + 1 + self.k)
    }

    /// Snapshot of all inline counters.
    pub fn inline_counts(&self) -> Vec<u32> {
        (0..self.n_cands).map(|c| self.inline_count(c)).collect()
    }

    /// Per-leaf entry counts, in emission order (balancing diagnostics).
    pub fn leaf_occupancy(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(h) = stack.pop() {
            let header = self.store.load(h, 0);
            if header & 1 == 1 {
                out.push(self.store.load(h, 1));
            } else {
                for cell in 0..self.fanout {
                    let c = self.store.load(h, 1 + cell);
                    if c != NULL_HANDLE {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }
}

/// A frozen tree over either storage backend, dispatched once per
/// counting call rather than per word access.
pub enum AnyFrozenTree {
    /// Region-placed (SPP/LPP/GPP/L-*/LCA).
    Contiguous(FrozenTree<ContiguousStore>),
    /// Standard-malloc baseline (CCPD).
    Scatter(FrozenTree<ScatterStore>),
}

impl AnyFrozenTree {
    /// Itemset length.
    pub fn k(&self) -> u32 {
        match self {
            AnyFrozenTree::Contiguous(t) => t.k(),
            AnyFrozenTree::Scatter(t) => t.k(),
        }
    }

    /// Number of reachable nodes.
    pub fn n_nodes(&self) -> u32 {
        match self {
            AnyFrozenTree::Contiguous(t) => t.n_nodes(),
            AnyFrozenTree::Scatter(t) => t.n_nodes(),
        }
    }

    /// Number of candidates.
    pub fn n_cands(&self) -> u32 {
        match self {
            AnyFrozenTree::Contiguous(t) => t.n_cands(),
            AnyFrozenTree::Scatter(t) => t.n_cands(),
        }
    }

    /// True when counters live inside tree blocks.
    pub fn counters_inline(&self) -> bool {
        match self {
            AnyFrozenTree::Contiguous(t) => t.counters_inline(),
            AnyFrozenTree::Scatter(t) => t.counters_inline(),
        }
    }

    /// Total bytes of the frozen image.
    pub fn total_bytes(&self) -> usize {
        match self {
            AnyFrozenTree::Contiguous(t) => t.total_bytes(),
            AnyFrozenTree::Scatter(t) => t.total_bytes(),
        }
    }

    /// Snapshot of inline counters (panics when external).
    pub fn inline_counts(&self) -> Vec<u32> {
        match self {
            AnyFrozenTree::Contiguous(t) => t.inline_counts(),
            AnyFrozenTree::Scatter(t) => t.inline_counts(),
        }
    }

    /// Per-leaf entry counts.
    pub fn leaf_occupancy(&self) -> Vec<u32> {
        match self {
            AnyFrozenTree::Contiguous(t) => t.leaf_occupancy(),
            AnyFrozenTree::Scatter(t) => t.leaf_occupancy(),
        }
    }
}

/// Freezes `tree` according to `policy`.
pub fn freeze_policy<F: HashFn>(
    tree: &TreeBuilder<'_, F>,
    policy: PlacementPolicy,
) -> AnyFrozenTree {
    let order = policy.emit_order();
    let layout = policy.leaf_layout();
    let counters = policy.counter_placement();
    match policy.store_kind() {
        StoreKind::Contiguous => AnyFrozenTree::Contiguous(freeze_with(
            tree,
            ContiguousBuilder::new(),
            order,
            layout,
            counters,
        )),
        StoreKind::Scatter => AnyFrozenTree::Scatter(freeze_with(
            tree,
            ScatterBuilder::new(),
            order,
            layout,
            counters,
        )),
    }
}

/// Freezes `tree` into `store_builder` with explicit layout knobs.
pub fn freeze_with<F: HashFn, B: WordStoreBuilder>(
    tree: &TreeBuilder<'_, F>,
    mut store_builder: B,
    order: EmitOrder,
    layout: LeafLayout,
    counters: CounterPlacement,
) -> FrozenTree<B::Store> {
    let k = tree.cands.k();
    let fanout = tree.hash.fanout();
    let n_cands = tree.cands.len() as u32;
    let inline = counters == CounterPlacement::Inline;
    let count_words = u32::from(inline);
    let cand_words = 1 + k + count_words; // cand_id + items + count?

    // Emission sequence of builder node indices.
    let mut seq = tree.reachable(); // DFS preorder
    if order == EmitOrder::Creation {
        seq.sort_unstable(); // StableVec index == creation order
    }

    // Snapshot the nodes once; sort leaf entries by candidate id so the
    // frozen image is canonical regardless of parallel insertion order.
    let views: Vec<(usize, NodeView)> = seq
        .iter()
        .map(|&idx| {
            let mut v = tree.node(idx);
            if let NodeView::Leaf { entries, .. } = &mut v {
                entries.sort_unstable();
            }
            (idx, v)
        })
        .collect();

    // Pass A: allocate blocks, assigning handles.
    let max_idx = views.iter().map(|(i, _)| *i).max().unwrap_or(0);
    let mut node_handle = vec![NULL_HANDLE; max_idx + 1];
    let mut cand_block = vec![NULL_HANDLE; n_cands as usize];
    let mut cand_offset = vec![0u32; n_cands as usize];

    // For Creation order + linked layout the itemset blocks are emitted as
    // a separate stretch in candidate order (see policy.rs docs); collect
    // them first.
    let mut creation_itemsets: Vec<u32> = Vec::new();

    for (idx, view) in &views {
        match view {
            NodeView::Internal { .. } => {
                node_handle[*idx] = store_builder.alloc(1 + fanout);
            }
            NodeView::Leaf { entries, .. } => {
                let n = entries.len() as u32;
                let leaf_words = match layout {
                    LeafLayout::Linked => 2 + n,
                    LeafLayout::Fused => 2 + n * cand_words,
                };
                let h = store_builder.alloc(leaf_words);
                node_handle[*idx] = h;
                match layout {
                    LeafLayout::Fused => {
                        for (e, &cand) in entries.iter().enumerate() {
                            cand_block[cand as usize] = h;
                            cand_offset[cand as usize] = 2 + e as u32 * cand_words;
                        }
                    }
                    LeafLayout::Linked => match order {
                        EmitOrder::DepthFirst => {
                            // Itemset blocks immediately follow their leaf
                            // (traversal order).
                            for &cand in entries {
                                cand_block[cand as usize] = store_builder.alloc(cand_words);
                            }
                        }
                        EmitOrder::Creation => {
                            creation_itemsets.extend(entries.iter().copied());
                        }
                    },
                }
            }
        }
    }
    if layout == LeafLayout::Linked && order == EmitOrder::Creation {
        creation_itemsets.sort_unstable();
        for cand in creation_itemsets {
            cand_block[cand as usize] = store_builder.alloc(cand_words);
        }
    }

    // Pass B: write contents.
    for (emit_id, (idx, view)) in views.iter().enumerate() {
        let h = node_handle[*idx];
        match view {
            NodeView::Internal { children, .. } => {
                store_builder.set(h, 0, (emit_id as u32) << 1);
                for (cell, child) in children.iter().enumerate() {
                    let ch = child.map_or(NULL_HANDLE, |c| node_handle[c]);
                    store_builder.set(h, 1 + cell as u32, ch);
                }
            }
            NodeView::Leaf { entries, .. } => {
                store_builder.set(h, 0, ((emit_id as u32) << 1) | 1);
                store_builder.set(h, 1, entries.len() as u32);
                for (e, &cand) in entries.iter().enumerate() {
                    match layout {
                        LeafLayout::Linked => {
                            let bh = cand_block[cand as usize];
                            store_builder.set(h, 2 + e as u32, bh);
                            write_cand_words(&mut store_builder, tree, bh, 0, cand);
                        }
                        LeafLayout::Fused => {
                            let off = 2 + e as u32 * cand_words;
                            write_cand_words(&mut store_builder, tree, h, off, cand);
                        }
                    }
                }
            }
        }
    }

    let root = node_handle[0];
    let n_nodes = views.len() as u32;
    FrozenTree {
        store: store_builder.finish(),
        root,
        k,
        fanout,
        n_nodes,
        n_cands,
        leaf_layout: layout,
        counters_inline: inline,
        cand_block,
        cand_offset,
    }
}

fn write_cand_words<F: HashFn, B: WordStoreBuilder>(
    b: &mut B,
    tree: &TreeBuilder<'_, F>,
    block: Handle,
    off: u32,
    cand: u32,
) {
    b.set(block, off, cand);
    for (j, &item) in tree.cands.get(cand).iter().enumerate() {
        b.set(block, off + 1 + j as u32, item);
    }
    // The count word (when present) was zero-initialized by alloc.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;
    use crate::candidates::CandidateSet;
    use arm_balance::ModHash;

    fn sample_tree() -> (CandidateSet, ModHash) {
        let mut c = CandidateSet::new(2);
        for s in [[0u32, 1], [0, 2], [1, 2], [1, 3], [2, 3], [2, 5], [3, 4]] {
            c.push(&s);
        }
        (c, ModHash::new(2))
    }

    fn all_policies_trees(c: &CandidateSet, h: &ModHash) -> Vec<(PlacementPolicy, AnyFrozenTree)> {
        PlacementPolicy::ALL
            .into_iter()
            .map(|p| {
                let b = TreeBuilder::new(c, h, 2);
                b.insert_all();
                (p, freeze_policy(&b, p))
            })
            .collect()
    }

    #[test]
    fn every_policy_preserves_structure() {
        let (c, h) = sample_tree();
        for (p, t) in all_policies_trees(&c, &h) {
            assert_eq!(t.k(), 2, "{p}");
            assert_eq!(t.n_cands(), 7, "{p}");
            let occ = t.leaf_occupancy();
            let total: u32 = occ.iter().sum();
            assert_eq!(total, 7, "{p}: leaf occupancy {occ:?}");
            assert!(t.n_nodes() >= occ.len() as u32);
            assert!(t.total_bytes() > 0);
        }
    }

    #[test]
    fn inline_counters_start_at_zero() {
        let (c, h) = sample_tree();
        for (p, t) in all_policies_trees(&c, &h) {
            if t.counters_inline() {
                assert_eq!(t.inline_counts(), vec![0; 7], "{p}");
            }
        }
    }

    #[test]
    fn contiguous_image_is_smaller_than_scatter() {
        let (c, h) = sample_tree();
        let trees = all_policies_trees(&c, &h);
        let ccpd = trees
            .iter()
            .find(|(p, _)| *p == PlacementPolicy::Ccpd)
            .unwrap();
        let spp = trees
            .iter()
            .find(|(p, _)| *p == PlacementPolicy::Spp)
            .unwrap();
        assert!(
            ccpd.1.total_bytes() > spp.1.total_bytes(),
            "scatter {} vs region {}",
            ccpd.1.total_bytes(),
            spp.1.total_bytes()
        );
    }

    #[test]
    fn external_counter_policies_have_no_count_word() {
        let (c, h) = sample_tree();
        let b = TreeBuilder::new(&c, &h, 2);
        b.insert_all();
        let inline = freeze_with(
            &b,
            ContiguousBuilder::new(),
            EmitOrder::DepthFirst,
            LeafLayout::Linked,
            CounterPlacement::Inline,
        );
        let external = freeze_with(
            &b,
            ContiguousBuilder::new(),
            EmitOrder::DepthFirst,
            LeafLayout::Linked,
            CounterPlacement::External,
        );
        assert!(inline.total_bytes() > external.total_bytes());
        assert!(!external.counters_inline());
    }

    #[test]
    #[should_panic(expected = "external")]
    fn inline_count_panics_when_external() {
        let (c, h) = sample_tree();
        let b = TreeBuilder::new(&c, &h, 2);
        b.insert_all();
        let t = freeze_with(
            &b,
            ContiguousBuilder::new(),
            EmitOrder::Creation,
            LeafLayout::Linked,
            CounterPlacement::External,
        );
        t.inline_count(0);
    }

    #[test]
    fn fused_layout_places_cands_inside_leaves() {
        let (c, h) = sample_tree();
        let b = TreeBuilder::new(&c, &h, 2);
        b.insert_all();
        let t = freeze_with(
            &b,
            ContiguousBuilder::new(),
            EmitOrder::Creation,
            LeafLayout::Fused,
            CounterPlacement::Inline,
        );
        // Every candidate's block is a leaf block (offset > 0).
        for cand in 0..7usize {
            assert_ne!(t.cand_block[cand], NULL_HANDLE);
            assert!(t.cand_offset[cand] >= 2, "cand {cand} fused offset");
        }
    }

    #[test]
    fn depth_first_emission_orders_root_first() {
        let (c, h) = sample_tree();
        let b = TreeBuilder::new(&c, &h, 2);
        b.insert_all();
        let t = freeze_with(
            &b,
            ContiguousBuilder::new(),
            EmitOrder::DepthFirst,
            LeafLayout::Linked,
            CounterPlacement::Inline,
        );
        assert_eq!(t.root, 0, "root is the first emitted block");
    }
}
