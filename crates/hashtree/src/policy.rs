//! The paper's memory placement policies (§5) as layout knobs.
//!
//! Every policy is a point in a small design space:
//!
//! | policy  | block store            | block order    | leaf layout | counters   |
//! |---------|------------------------|----------------|-------------|------------|
//! | CCPD    | scatter (std. malloc)  | creation       | linked      | inline     |
//! | SPP     | contiguous region      | creation       | linked      | inline     |
//! | LPP     | contiguous region      | creation       | fused       | inline     |
//! | GPP     | contiguous region      | depth-first    | linked      | inline     |
//! | L-SPP   | contiguous region      | creation       | linked      | external   |
//! | L-LPP   | contiguous region      | creation       | fused       | external   |
//! | L-GPP   | contiguous region      | depth-first    | linked      | external   |
//! | LCA-GPP | contiguous region      | depth-first    | linked      | per-thread |
//!
//! *Linked* leaves reference their itemsets through handles (the paper's
//! list node → itemset pointers); *fused* leaves store the items inline
//! (the paper's LPP "reservation" that keeps a list node and its itemset
//! adjacent). *Inline* counters share blocks with read-only itemset data
//! (the false-sharing worst case); *external* counters live in a separate
//! shared array (the paper's segregated read-write region); *per-thread*
//! counters are private arrays merged by reduction (privatization).
//!
//! Note on SPP fidelity: the original SPP placed blocks in true malloc-call
//! order, interleaving node and list blocks. We emit node blocks in node
//! creation order followed by itemset blocks in candidate order — the
//! paper's "grouped regions" SPP variation — because the parallel build
//! makes the exact interleaving nondeterministic.

/// Which backend stores the frozen blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// One heap allocation per block (standard-malloc baseline).
    Scatter,
    /// Single bump region.
    Contiguous,
}

/// The order blocks are emitted into the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitOrder {
    /// Node-creation order (SPP-style, implicit placement).
    Creation,
    /// Depth-first traversal order (GPP remapping).
    DepthFirst,
}

/// How leaf entries store their itemsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafLayout {
    /// Leaf holds handles to separately allocated itemset blocks.
    Linked,
    /// Leaf holds the itemset words inline (LPP reservation).
    Fused,
}

/// Where support counters live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterPlacement {
    /// A counter word inside each candidate's itemset block.
    Inline,
    /// Counters outside the tree (shared array or per-thread arrays,
    /// chosen by the mining driver).
    External,
}

/// A named placement policy from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Standard-malloc baseline.
    Ccpd,
    /// Simple placement policy.
    Spp,
    /// Localized placement policy.
    Lpp,
    /// Global (depth-first remapped) placement policy.
    Gpp,
    /// SPP + segregated lock/counter region.
    LSpp,
    /// LPP + segregated lock/counter region.
    LLpp,
    /// GPP + segregated lock/counter region.
    LGpp,
    /// GPP + per-thread local counter arrays.
    LcaGpp,
}

impl PlacementPolicy {
    /// All policies in the order Fig. 13 plots them.
    pub const ALL: [PlacementPolicy; 8] = [
        PlacementPolicy::Ccpd,
        PlacementPolicy::Spp,
        PlacementPolicy::LSpp,
        PlacementPolicy::LLpp,
        PlacementPolicy::Gpp,
        PlacementPolicy::LGpp,
        PlacementPolicy::LcaGpp,
        PlacementPolicy::Lpp,
    ];

    /// The uniprocessor policies of Fig. 12.
    pub const UNIPROCESSOR: [PlacementPolicy; 4] = [
        PlacementPolicy::Ccpd,
        PlacementPolicy::Spp,
        PlacementPolicy::Lpp,
        PlacementPolicy::Gpp,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Ccpd => "CCPD",
            PlacementPolicy::Spp => "SPP",
            PlacementPolicy::Lpp => "LPP",
            PlacementPolicy::Gpp => "GPP",
            PlacementPolicy::LSpp => "L-SPP",
            PlacementPolicy::LLpp => "L-LPP",
            PlacementPolicy::LGpp => "L-GPP",
            PlacementPolicy::LcaGpp => "LCA-GPP",
        }
    }

    /// Block store backend.
    pub fn store_kind(self) -> StoreKind {
        match self {
            PlacementPolicy::Ccpd => StoreKind::Scatter,
            _ => StoreKind::Contiguous,
        }
    }

    /// Block emission order.
    pub fn emit_order(self) -> EmitOrder {
        match self {
            PlacementPolicy::Gpp | PlacementPolicy::LGpp | PlacementPolicy::LcaGpp => {
                EmitOrder::DepthFirst
            }
            _ => EmitOrder::Creation,
        }
    }

    /// Leaf entry layout.
    pub fn leaf_layout(self) -> LeafLayout {
        match self {
            PlacementPolicy::Lpp | PlacementPolicy::LLpp => LeafLayout::Fused,
            _ => LeafLayout::Linked,
        }
    }

    /// Counter placement.
    pub fn counter_placement(self) -> CounterPlacement {
        match self {
            PlacementPolicy::Ccpd
            | PlacementPolicy::Spp
            | PlacementPolicy::Lpp
            | PlacementPolicy::Gpp => CounterPlacement::Inline,
            _ => CounterPlacement::External,
        }
    }

    /// True when the policy expects per-thread (privatized) counters.
    pub fn per_thread_counters(self) -> bool {
        matches!(self, PlacementPolicy::LcaGpp)
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_uppercase().replace('_', "-");
        PlacementPolicy::ALL
            .into_iter()
            .find(|p| p.name() == norm)
            .ok_or_else(|| format!("unknown placement policy: {s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        use PlacementPolicy::*;
        assert_eq!(Ccpd.store_kind(), StoreKind::Scatter);
        for p in [Spp, Lpp, Gpp, LSpp, LLpp, LGpp, LcaGpp] {
            assert_eq!(p.store_kind(), StoreKind::Contiguous);
        }
        assert_eq!(Gpp.emit_order(), EmitOrder::DepthFirst);
        assert_eq!(Spp.emit_order(), EmitOrder::Creation);
        assert_eq!(Lpp.leaf_layout(), LeafLayout::Fused);
        assert_eq!(Gpp.leaf_layout(), LeafLayout::Linked);
        assert_eq!(Spp.counter_placement(), CounterPlacement::Inline);
        assert_eq!(LSpp.counter_placement(), CounterPlacement::External);
        assert!(LcaGpp.per_thread_counters());
        assert!(!LGpp.per_thread_counters());
    }

    #[test]
    fn names_round_trip() {
        for p in PlacementPolicy::ALL {
            let parsed: PlacementPolicy = p.name().parse().unwrap();
            assert_eq!(parsed, p);
            assert_eq!(format!("{p}"), p.name());
        }
        assert!("nope".parse::<PlacementPolicy>().is_err());
        assert_eq!(
            "lca-gpp".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::LcaGpp
        );
    }
}
