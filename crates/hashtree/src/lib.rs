//! The candidate hash tree of Apriori, with pluggable memory placement.
//!
//! This crate implements the data structure at the heart of the paper:
//!
//! * [`candidates`] — flat candidate-itemset storage (`C_k`);
//! * [`build`] — the mutable tree with concurrent insertion and per-leaf
//!   locking (§3.1.4);
//! * [`policy`] — the paper's placement policies (§5) as layout knobs;
//! * [`freeze`] — emitting the built tree into its policy-defined memory
//!   image (the GPP case is the paper's depth-first remap);
//! * [`count`] — the support-counting kernel with VISITED short-circuiting
//!   (§4.2), counter-placement dispatch, and work accounting.
//!
//! A typical iteration:
//!
//! ```
//! use arm_balance::BitonicHash;
//! use arm_dataset::Database;
//! use arm_hashtree::{
//!     count::{CountOptions, CountScratch, CounterRef, WorkMeter},
//!     freeze::freeze_policy,
//!     build::TreeBuilder,
//!     candidates::CandidateSet,
//!     policy::PlacementPolicy,
//! };
//!
//! let db = Database::from_transactions(
//!     8,
//!     [vec![1u32, 4, 5], vec![1, 2], vec![3, 4, 5], vec![1, 2, 4, 5]],
//! )
//! .unwrap();
//! let mut c2 = CandidateSet::new(2);
//! for s in [[1u32, 2], [1, 4], [1, 5], [2, 4], [2, 5], [4, 5]] {
//!     c2.push(&s);
//! }
//! let hash = BitonicHash::new(3);
//! let builder = TreeBuilder::new(&c2, &hash, 3);
//! builder.insert_all();
//! let tree = freeze_policy(&builder, PlacementPolicy::Gpp);
//!
//! let mut scratch = CountScratch::new(db.n_items(), tree.n_nodes());
//! let mut meter = WorkMeter::default();
//! tree.count_partition(
//!     &hash,
//!     &db,
//!     0..db.len(),
//!     None, // no transaction trimming
//!     &mut scratch,
//!     &mut CounterRef::Inline,
//!     CountOptions::default(),
//!     &mut meter,
//! );
//! assert_eq!(tree.inline_counts(), vec![2, 2, 2, 1, 1, 3]);
//! ```

pub mod build;
pub mod candidates;
pub mod count;
pub mod freeze;
pub mod policy;

pub use build::TreeBuilder;
pub use candidates::CandidateSet;
pub use count::{
    count_partition, count_transaction, is_subset, naive_counts, CountOptions, CountScratch,
    CounterRef, ItemFilter, VisitedMode, WorkMeter,
};
pub use freeze::{freeze_policy, freeze_with, AnyFrozenTree, FrozenTree};
pub use policy::{CounterPlacement, EmitOrder, LeafLayout, PlacementPolicy, StoreKind};
