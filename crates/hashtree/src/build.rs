//! Concurrent candidate hash-tree construction (§2.1.1, §3.1.4).
//!
//! The builder supports the paper's parallel tree formation: every
//! processor inserts candidates concurrently, locking only the leaf it
//! lands on. Leaf-to-internal conversion happens under that leaf's lock;
//! descending threads that race with a conversion re-check the node state
//! after acquiring the lock and continue downwards.
//!
//! Nodes live in an append-only [`StableVec`], so threads can traverse
//! existing nodes lock-free while new nodes are created. Empty hash-table
//! slots are filled lazily with a CAS; a losing CAS simply orphans the
//! freshly pushed node (freezing walks only reachable nodes).

use crate::candidates::CandidateSet;
use arm_balance::HashFn;
use arm_mem::StableVec;
use arm_metrics::Shard;
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::OnceLock;

const STATE_LEAF: u8 = 0;
const STATE_INTERNAL: u8 = 1;

pub(crate) struct BuildNode {
    /// `STATE_LEAF` or `STATE_INTERNAL`. Stored with `Release` after the
    /// children table is published; read with `Acquire`.
    state: AtomicU8,
    /// Child table (`index + 1`, `0` = empty). Present once internal.
    children: OnceLock<Box<[AtomicU32]>>,
    /// Depth of this node (root = 0); a node at depth `d` routes on item
    /// `d` of an itemset.
    depth: u8,
    /// Candidate ids stored here while the node is a leaf.
    entries: Mutex<Vec<u32>>,
}

impl BuildNode {
    fn leaf(depth: u8) -> Self {
        BuildNode {
            state: AtomicU8::new(STATE_LEAF),
            children: OnceLock::new(),
            depth,
            entries: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn is_internal(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_INTERNAL
    }
}

/// A shared, concurrently insertable candidate hash tree. Freeze it with
/// [`crate::freeze::freeze_policy`] to obtain the compact counting structure.
pub struct TreeBuilder<'a, F: HashFn> {
    pub(crate) nodes: StableVec<BuildNode>,
    pub(crate) cands: &'a CandidateSet,
    pub(crate) hash: &'a F,
    /// Leaf split threshold (the paper's `T`): a leaf at splittable depth
    /// holding more than this many itemsets converts to an internal node.
    pub(crate) threshold: usize,
}

impl<'a, F: HashFn> TreeBuilder<'a, F> {
    /// Creates a builder over `cands` using hash function `hash` and leaf
    /// threshold `threshold` (≥ 1).
    pub fn new(cands: &'a CandidateSet, hash: &'a F, threshold: usize) -> Self {
        assert!(threshold >= 1, "leaf threshold must be at least 1");
        let nodes = StableVec::new();
        nodes.push(BuildNode::leaf(0));
        TreeBuilder {
            nodes,
            cands,
            hash,
            threshold,
        }
    }

    /// Inserts candidate `id`. Callable concurrently from many threads.
    pub fn insert(&self, id: u32) {
        self.insert_with(id, None);
    }

    /// [`TreeBuilder::insert`] with per-leaf-lock telemetry attributed to
    /// `shard` (acquisitions, contended acquisitions, wait time). With
    /// the telemetry feature disabled this is exactly `insert`.
    pub fn insert_tallied(&self, id: u32, shard: &Shard) {
        self.insert_with(id, Some(shard));
    }

    fn insert_with(&self, id: u32, shard: Option<&Shard>) {
        let items = self.cands.get(id);
        let k = items.len();
        let mut node_idx = 0usize;
        loop {
            let node = self.nodes.index(node_idx);
            let depth = node.depth as usize;
            if node.is_internal() {
                let children = node
                    .children
                    .get()
                    .expect("internal node must have children");
                let cell = self.hash.hash(items[depth]) as usize;
                node_idx = self.child_or_create(children, cell, depth + 1);
                continue;
            }
            // Leaf path: lock, then re-check state (a racing conversion may
            // have completed while we waited on the lock).
            let mut entries = lock_entries(node, shard);
            if node.is_internal() {
                drop(entries);
                continue;
            }
            entries.push(id);
            if entries.len() > self.threshold && depth < k {
                self.convert(node, &mut entries, shard);
            }
            return;
        }
    }

    /// Inserts every candidate (sequential convenience).
    pub fn insert_all(&self) {
        for id in 0..self.cands.len() as u32 {
            self.insert(id);
        }
    }

    /// [`TreeBuilder::insert_all`] with lock telemetry on `shard`.
    pub fn insert_all_tallied(&self, shard: &Shard) {
        for id in 0..self.cands.len() as u32 {
            self.insert_tallied(id, shard);
        }
    }

    /// Returns an existing child in `cell`, or pushes a fresh leaf and
    /// publishes it with a CAS (losers use the winner's node).
    fn child_or_create(&self, children: &[AtomicU32], cell: usize, depth: usize) -> usize {
        let cur = children[cell].load(Ordering::Acquire);
        if cur != 0 {
            return (cur - 1) as usize;
        }
        let fresh = self.nodes.push(BuildNode::leaf(depth as u8)) as u32;
        match children[cell].compare_exchange(0, fresh + 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => fresh as usize,
            Err(winner) => (winner - 1) as usize, // fresh node is orphaned
        }
    }

    /// Converts a leaf (whose `entries` lock is held) into an internal
    /// node, redistributing entries one level down. Cascades while a child
    /// still exceeds the threshold and can split.
    fn convert(&self, node: &BuildNode, entries: &mut Vec<u32>, shard: Option<&Shard>) {
        let depth = node.depth as usize;
        let h = self.hash.fanout() as usize;
        let children: Box<[AtomicU32]> = (0..h).map(|_| AtomicU32::new(0)).collect();

        for &id in entries.iter() {
            let item = self.cands.get(id)[depth];
            let cell = self.hash.hash(item) as usize;
            let child_idx = self.child_or_create(&children, cell, depth + 1);
            let child = self.nodes.index(child_idx);
            let mut child_entries = lock_entries(child, shard);
            child_entries.push(id);
            let child_depth = child.depth as usize;
            if child_entries.len() > self.threshold && child_depth < self.cands.k() as usize {
                self.convert(child, &mut child_entries, shard);
            }
        }
        entries.clear();
        entries.shrink_to_fit();
        // Publish children before flipping the state so descending threads
        // that observe INTERNAL always find the table.
        node.children
            .set(children)
            .unwrap_or_else(|_| panic!("leaf converted twice"));
        node.state.store(STATE_INTERNAL, Ordering::Release);
    }

    /// Number of nodes created (including conversion orphans).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of candidates this builder covers.
    pub fn n_candidates(&self) -> usize {
        self.cands.len()
    }

    /// Walks the reachable tree, returning `(reachable_node_indices,
    /// max_leaf_entries, leaf_count)`. Used by freezing and tests.
    pub(crate) fn reachable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            out.push(idx);
            let node = self.nodes.index(idx);
            if node.is_internal() {
                let children = node.children.get().unwrap();
                // Push in reverse so DFS emission visits cell 0 first.
                for cell in (0..children.len()).rev() {
                    let c = children[cell].load(Ordering::Acquire);
                    if c != 0 {
                        stack.push((c - 1) as usize);
                    }
                }
            }
        }
        out
    }

    pub(crate) fn node(&self, idx: usize) -> NodeView {
        let node = self.nodes.index(idx);
        if node.is_internal() {
            let children = node.children.get().unwrap();
            NodeView::Internal {
                depth: node.depth,
                children: children
                    .iter()
                    .map(|c| {
                        let v = c.load(Ordering::Acquire);
                        (v != 0).then(|| (v - 1) as usize)
                    })
                    .collect(),
            }
        } else {
            NodeView::Leaf {
                depth: node.depth,
                entries: node.entries.lock().clone(),
            }
        }
    }
}

/// Acquires a node's entry lock, through the telemetry shard when one is
/// attached (build locks are the §3.1.4 contention point the observability
/// layer measures).
#[inline]
fn lock_entries<'n>(node: &'n BuildNode, shard: Option<&Shard>) -> MutexGuard<'n, Vec<u32>> {
    match shard {
        Some(s) => s.lock_timed(&node.entries),
        None => node.entries.lock(),
    }
}

/// A read-only snapshot of one builder node (freeze/test interface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum NodeView {
    Internal {
        depth: u8,
        children: Vec<Option<usize>>,
    },
    Leaf {
        depth: u8,
        entries: Vec<u32>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_balance::ModHash;

    fn cands(k: u32, sets: &[&[u32]]) -> CandidateSet {
        let mut c = CandidateSet::new(k);
        for s in sets {
            c.push(s);
        }
        c
    }

    fn collect_leaf_entries<F: HashFn>(b: &TreeBuilder<'_, F>) -> Vec<u32> {
        let mut all = Vec::new();
        for idx in b.reachable() {
            if let NodeView::Leaf { entries, .. } = b.node(idx) {
                all.extend(entries);
            }
        }
        all.sort_unstable();
        all
    }

    #[test]
    fn single_leaf_under_threshold() {
        let c = cands(2, &[&[0, 1], &[0, 2], &[1, 3]]);
        let h = ModHash::new(2);
        let b = TreeBuilder::new(&c, &h, 4);
        b.insert_all();
        assert_eq!(b.node_count(), 1);
        assert_eq!(collect_leaf_entries(&b), vec![0, 1, 2]);
    }

    #[test]
    fn splits_when_threshold_exceeded() {
        let c = cands(2, &[&[0, 1], &[0, 2], &[1, 2], &[1, 3], &[2, 3]]);
        let h = ModHash::new(2);
        let b = TreeBuilder::new(&c, &h, 2);
        b.insert_all();
        // Root must have converted.
        assert!(matches!(b.node(0), NodeView::Internal { .. }));
        assert_eq!(collect_leaf_entries(&b), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn routing_follows_hash_of_depth_item() {
        let c = cands(2, &[&[0, 2], &[1, 3], &[2, 4]]);
        let h = ModHash::new(2);
        let b = TreeBuilder::new(&c, &h, 1);
        b.insert_all();
        // Root splits on item[0] mod 2: {0,2} -> cell 0, {1,3} -> cell 1,
        // {2,4} -> cell 0 again.
        let NodeView::Internal { children, .. } = b.node(0) else {
            panic!("root should be internal");
        };
        let left = children[0].expect("cell 0 populated");
        let right = children[1].expect("cell 1 populated");
        // Cell 0 received 2 entries (> threshold 1) and split again on
        // item[1]: 2 -> cell 0, 4 -> cell 0 ... both even -> same cell,
        // leaf at depth 2 == k cannot split further.
        match b.node(left) {
            NodeView::Internal { children, .. } => {
                let grand = children[0].expect("even second items");
                match b.node(grand) {
                    NodeView::Leaf { entries, depth } => {
                        assert_eq!(depth, 2);
                        let mut e = entries.clone();
                        e.sort_unstable();
                        assert_eq!(e, vec![0, 2]);
                    }
                    v => panic!("expected leaf, got {v:?}"),
                }
            }
            v => panic!("expected internal, got {v:?}"),
        }
        match b.node(right) {
            NodeView::Leaf { entries, .. } => assert_eq!(entries, vec![1]),
            v => panic!("expected leaf, got {v:?}"),
        }
    }

    #[test]
    fn deep_leaf_may_exceed_threshold() {
        // All candidates identical under the hash at every level: the leaf
        // at depth k holds them all and cannot split.
        let c = cands(2, &[&[0, 2], &[0, 4], &[2, 4], &[2, 6], &[4, 6]]);
        let h = ModHash::new(2);
        let b = TreeBuilder::new(&c, &h, 1);
        b.insert_all();
        let mut max_depth = 0;
        for idx in b.reachable() {
            if let NodeView::Leaf { depth, entries } = b.node(idx) {
                max_depth = max_depth.max(depth);
                if depth == 2 {
                    assert!(entries.len() > 1);
                }
            }
        }
        assert_eq!(max_depth, 2);
        assert_eq!(collect_leaf_entries(&b), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_insert_preserves_all_entries() {
        // Many random-ish candidates, inserted from 4 threads.
        let mut sets: Vec<Vec<u32>> = Vec::new();
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                for c in (b + 1)..20 {
                    if (a + b + c) % 3 == 0 {
                        sets.push(vec![a, b, c]);
                    }
                }
            }
        }
        let mut cs = CandidateSet::new(3);
        for s in &sets {
            cs.push(s);
        }
        let h = ModHash::new(3);
        let b = TreeBuilder::new(&cs, &h, 3);
        let n = cs.len() as u32;
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let b = &b;
                scope.spawn(move || {
                    let mut id = t;
                    while id < n {
                        b.insert(id);
                        id += 4;
                    }
                });
            }
        });
        let all = collect_leaf_entries(&b);
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn tallied_insert_builds_identical_tree_and_counts_locks() {
        use arm_metrics::{Counter, MetricsRegistry};
        let mut sets: Vec<Vec<u32>> = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                sets.push(vec![a, b]);
            }
        }
        let mut cs = CandidateSet::new(2);
        for s in &sets {
            cs.push(s);
        }
        let h = ModHash::new(3);
        let plain = TreeBuilder::new(&cs, &h, 2);
        plain.insert_all();
        let reg = MetricsRegistry::new(4);
        let tallied = TreeBuilder::new(&cs, &h, 2);
        let n = cs.len() as u32;
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let tallied = &tallied;
                let reg = &reg;
                scope.spawn(move || {
                    let shard = reg.shard(t as usize);
                    let mut id = t;
                    while id < n {
                        tallied.insert_tallied(id, shard);
                        id += 4;
                    }
                });
            }
        });
        assert_eq!(collect_leaf_entries(&tallied), collect_leaf_entries(&plain));
        let snap = reg.snapshot();
        if MetricsRegistry::enabled() {
            // Every insert acquires at least one leaf lock; conversions
            // acquire more.
            assert!(snap.total(Counter::LeafLockAcquires) >= n as u64);
            assert!(
                snap.total(Counter::LeafLockContended) <= snap.total(Counter::LeafLockAcquires)
            );
        } else {
            assert_eq!(snap.total(Counter::LeafLockAcquires), 0);
        }
    }

    #[test]
    fn reachable_excludes_orphans() {
        let c = cands(2, &[&[0, 1], &[2, 3], &[4, 5], &[6, 7]]);
        let h = ModHash::new(4);
        let b = TreeBuilder::new(&c, &h, 1);
        b.insert_all();
        // All reachable nodes, no duplicates.
        let r = b.reachable();
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.len());
        assert!(r.len() <= b.node_count());
        assert_eq!(r[0], 0, "DFS starts at root");
    }
}
