//! Experiment harness shared by the `table2`/`fig*` binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index). Datasets default to 10% of paper scale so
//! the whole suite runs in minutes; set `ARM_SCALE=full` for paper-scale
//! transaction counts or `ARM_SCALE=quick` for smoke-test sizes. Results
//! are printed as aligned text tables and, when `ARM_OUT` is set (or the
//! `experiments` driver is used), written as CSV.

use arm_dataset::Database;
use arm_metrics::{reports_to_json, RunReport};
use arm_quest::{generate, QuestParams};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Dataset scale relative to the paper's transaction counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleMode {
    /// 2% of paper scale (CI smoke tests).
    Quick,
    /// 10% of paper scale (default; minutes for the full suite).
    Default,
    /// Paper-scale transaction counts.
    Full,
}

impl ScaleMode {
    /// Reads `ARM_SCALE` from the environment.
    pub fn from_env() -> Self {
        match std::env::var("ARM_SCALE").as_deref() {
            Ok("full") => ScaleMode::Full,
            Ok("quick") => ScaleMode::Quick,
            _ => ScaleMode::Default,
        }
    }

    /// The multiplier applied to `D`.
    pub fn factor(self) -> f64 {
        match self {
            ScaleMode::Quick => 0.02,
            ScaleMode::Default => 0.1,
            ScaleMode::Full => 1.0,
        }
    }

    /// Human-readable tag for report headers.
    pub fn label(self) -> &'static str {
        match self {
            ScaleMode::Quick => "quick (2% of paper D)",
            ScaleMode::Default => "default (10% of paper D)",
            ScaleMode::Full => "full paper scale",
        }
    }
}

/// A memoizing dataset provider so multi-figure drivers generate each
/// database once.
pub struct DatasetCache {
    scale: ScaleMode,
    cache: Mutex<HashMap<String, std::sync::Arc<Database>>>,
}

impl DatasetCache {
    /// Creates a cache at the given scale.
    pub fn new(scale: ScaleMode) -> Self {
        DatasetCache {
            scale,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The scale in effect.
    pub fn scale(&self) -> ScaleMode {
        self.scale
    }

    /// Returns the (scaled) `T{t}.I{i}.D{d}` dataset, generating it on
    /// first use. The name keyed on is the *paper* name; the actual
    /// transaction count is `d * scale`.
    pub fn get(&self, t: u32, i: u32, d_paper: usize) -> std::sync::Arc<Database> {
        let params = scaled_params(t, i, d_paper, self.scale);
        let key = QuestParams::paper(t, i, d_paper).name();
        let mut cache = self.cache.lock().unwrap();
        if let Some(db) = cache.get(&key) {
            return std::sync::Arc::clone(db);
        }
        let db = std::sync::Arc::new(generate(&params));
        cache.insert(key, std::sync::Arc::clone(&db));
        db
    }
}

/// Scaled parameters for a paper dataset. Only the transaction count `D`
/// shrinks; the pattern pool stays at the paper's `L = 2000`. Because
/// transactions draw patterns by (exponential) weight, the fraction of
/// patterns whose support clears a *relative* minimum support is
/// scale-invariant, so the frequent-itemset profile at e.g. 0.5% matches
/// the paper's at any `D` (compare `fig7` output with the paper's Fig. 7).
pub fn scaled_params(t: u32, i: u32, d_paper: usize, scale: ScaleMode) -> QuestParams {
    let d = ((d_paper as f64 * scale.factor()).round() as usize).max(1_000);
    QuestParams::paper(t, i, d_paper).with_txns(d)
}

/// Iteration cap applied to the *timing* experiments (Figs. 8, 9, 13) at
/// reduced scale: the deep tail of T20-style datasets multiplies run time
/// by C(20, k) per transaction while contributing little to the totals the
/// figures compare. `None` (no cap) at full scale.
pub fn timing_max_k(scale: ScaleMode) -> Option<u32> {
    match scale {
        ScaleMode::Quick => Some(5),
        ScaleMode::Default => Some(7),
        ScaleMode::Full => None,
    }
}

/// The six datasets of Figs. 8 & 12 (paper `D` values).
pub const FIG_DATASETS_6: [(u32, u32, usize); 6] = [
    (5, 2, 100_000),
    (10, 4, 100_000),
    (15, 4, 100_000),
    (10, 6, 400_000),
    (10, 6, 800_000),
    (10, 6, 1_600_000),
];

/// The full Table 2 grid.
pub const TABLE2_DATASETS: [(u32, u32, usize); 8] = [
    (5, 2, 100_000),
    (10, 4, 100_000),
    (15, 4, 100_000),
    (20, 6, 100_000),
    (10, 6, 400_000),
    (10, 6, 800_000),
    (10, 6, 1_600_000),
    (10, 6, 3_200_000),
];

/// Paper name of a dataset tuple.
pub fn paper_name(t: u32, i: u32, d: usize) -> String {
    QuestParams::paper(t, i, d).name()
}

/// Times `f`, returning `(best_seconds, result_of_last_run)`. Runs `reps`
/// times and keeps the minimum (the standard way to strip scheduler
/// noise from single-threaded kernels).
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps >= 1);
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

/// Repetition count appropriate for the scale (fewer reps at full scale).
pub fn reps_for(scale: ScaleMode) -> usize {
    match scale {
        // Short runs need best-of-N to strip scheduler noise.
        ScaleMode::Quick => 3,
        ScaleMode::Default => 3,
        ScaleMode::Full => 1,
    }
}

/// A simple CSV sink; rows are written verbatim.
pub struct Csv {
    path: PathBuf,
    buf: String,
}

impl Csv {
    /// Opens a CSV report with a header row.
    pub fn new(name: &str, header: &str) -> Self {
        let dir = std::env::var("ARM_OUT").unwrap_or_else(|_| "EXPERIMENTS-data".into());
        std::fs::create_dir_all(&dir).ok();
        let path = Path::new(&dir).join(name);
        Csv {
            path,
            buf: format!("{header}\n"),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, row: impl AsRef<str>) {
        self.buf.push_str(row.as_ref());
        self.buf.push('\n');
    }

    /// Flushes to disk, returning the path written.
    pub fn finish(self) -> PathBuf {
        if let Ok(mut f) = std::fs::File::create(&self.path) {
            f.write_all(self.buf.as_bytes()).ok();
        }
        self.path
    }
}

/// Writes `reports` as one `arm-run-report/v1` JSON document next to the
/// CSV outputs (`ARM_OUT`, else `EXPERIMENTS-data/`), returning the path
/// written. Every figure binary funnels its runs through this so all
/// machine-readable output shares one schema.
pub fn write_reports(name: &str, reports: &[RunReport]) -> PathBuf {
    let dir = std::env::var("ARM_OUT").unwrap_or_else(|_| "EXPERIMENTS-data".into());
    std::fs::create_dir_all(&dir).ok();
    let path = Path::new(&dir).join(name);
    if let Err(e) = std::fs::write(&path, reports_to_json(reports)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Percent improvement of `optimized` over `base` (positive = faster).
pub fn pct_improvement(base: f64, optimized: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (base - optimized) / base * 100.0
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, scale: ScaleMode) {
    println!("== {what} ==");
    println!(
        "scale: {} | host cores: {} | reproduction of Zaki et al. SC'96/KAIS'01",
        scale.label(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors() {
        assert_eq!(ScaleMode::Full.factor(), 1.0);
        assert!(ScaleMode::Quick.factor() < ScaleMode::Default.factor());
    }

    #[test]
    fn scaled_params_floor() {
        let p = scaled_params(10, 4, 100_000, ScaleMode::Quick);
        assert_eq!(p.n_txns, 2_000);
        let tiny = scaled_params(10, 4, 10_000, ScaleMode::Quick);
        assert_eq!(tiny.n_txns, 1_000, "floor at 1000 txns");
    }

    #[test]
    fn cache_returns_same_instance() {
        let c = DatasetCache::new(ScaleMode::Quick);
        let a = c.get(5, 2, 100_000);
        let b = c.get(5, 2, 100_000);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2_000);
    }

    #[test]
    fn improvement_math() {
        assert_eq!(pct_improvement(2.0, 1.0), 50.0);
        assert_eq!(pct_improvement(0.0, 1.0), 0.0);
        assert!(pct_improvement(1.0, 1.2) < 0.0);
    }

    #[test]
    fn time_best_returns_result() {
        let (t, v) = time_best(2, || 42);
        assert!(t >= 0.0);
        assert_eq!(v, 42);
    }
}
