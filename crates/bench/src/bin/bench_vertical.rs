//! Vertical-mining snapshot: tidset backends × thread counts
//! (`BENCH_vertical.json`).
//!
//! Runs the parallel Eclat driver with both forced tidset backends (and
//! the density-adaptive default) at P = 1/2/4/8 on three QUEST
//! workloads:
//!
//! * **dense** — `T10.I4` squeezed onto a 50-item universe, so every
//!   tidset covers a fifth of the database and the word-AND kernel's
//!   fixed `n/64`-word cost crushes the length-proportional merge;
//! * **sparse** — the paper's 1000-item `T10.I4.D100K`, where tidsets
//!   are ~1% dense and sorted lists win;
//! * **skewed** — the sparse workload under a Zipf-tailed transaction
//!   length distribution (the scheduling stressor), used for the
//!   thread-scaling headline.
//!
//! The hybrid driver rides along on the sparse workload for reference.
//!
//! Three gates, reflected in the exit code so CI can smoke-run this:
//!
//! 1. **Correctness** — every backend × P × mode must match the
//!    sequential sorted-backend oracle (hard failure).
//! 2. **Backend** — on dense at P = 8, the bitmap backend must beat the
//!    sorted-list backend on wall time (hard failure; wall is total CPU
//!    work on a serialized host, so this holds on any core count).
//! 3. **Scaling** — on skewed, the work-model simulated time at P = 8
//!    must be ≥ 3× better than at P = 1 (hard failure). Wall-clock
//!    scaling is also printed but only warns: on a single-core host all
//!    thread counts serialize (see DESIGN.md §5 on the work model).

use arm_bench::{banner, reps_for, scaled_params, time_best, ScaleMode};
use arm_dataset::{Database, Item};
use arm_metrics::Counter;
use arm_quest::{generate, LengthDist};
use arm_vertical::{mine_vertical, TidBackend, VerticalConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn backend_name(b: TidBackend) -> &'static str {
    match b {
        TidBackend::Auto => "auto",
        TidBackend::Sorted => "sorted",
        TidBackend::Bitmap => "bitmap",
    }
}

struct Row {
    dataset: &'static str,
    algorithm: &'static str,
    backend: &'static str,
    threads: usize,
    wall_seconds: f64,
    simulated_seconds: f64,
    mine_imbalance: f64,
    intersections: u64,
    words_anded: u64,
    tidset_kb: u64,
    steals: u64,
}

fn main() {
    let scale = ScaleMode::from_env();
    banner("Vertical mining snapshot (BENCH_vertical.json)", scale);
    let reps = reps_for(scale);

    // Dense: the paper workload on a 50-item universe. Depth is capped —
    // a 20%-dense universe mines thousands of deep itemsets that add
    // nothing to the backend comparison but multiply run time.
    let mut dense_params = scaled_params(10, 4, 100_000, scale);
    dense_params.n_items = 50;
    dense_params.n_patterns = 100;
    let dense = generate(&dense_params);
    let dense_minsup = dense.absolute_support(0.05);
    let dense_max_k = Some(4);

    let sparse = generate(&scaled_params(10, 4, 100_000, scale));
    let sparse_minsup = sparse.absolute_support(0.005);

    let skewed = generate(&scaled_params(10, 4, 100_000, scale).with_length_dist(
        LengthDist::ZipfTail {
            exponent: 1.7,
            max_factor: 16,
        },
    ));
    let skewed_minsup = skewed.absolute_support(0.005);

    let workloads: [(&str, &Database, u32, Option<u32>); 3] = [
        ("T10.I4.D100K-n50-dense", &dense, dense_minsup, dense_max_k),
        ("T10.I4.D100K", &sparse, sparse_minsup, None),
        ("T10.I4.D100K-zipf16", &skewed, skewed_minsup, None),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut diverged = false;
    println!(
        "{:<24} {:<9} {:<7} {:>2} {:>10} {:>10} {:>7} {:>12} {:>12} {:>9} {:>7}",
        "dataset",
        "algo",
        "backend",
        "P",
        "wall(s)",
        "sim(s)",
        "imbal",
        "intersects",
        "words&",
        "tidsetKB",
        "steals"
    );
    for (name, db, minsup, max_k) in workloads {
        // Sequential sorted-backend run is the correctness oracle.
        let oracle: Vec<(Vec<Item>, u32)> = mine_vertical(
            db,
            minsup,
            max_k,
            &VerticalConfig::default().with_backend(TidBackend::Sorted),
        );
        assert!(!oracle.is_empty(), "{name}: degenerate workload");
        for backend in [TidBackend::Sorted, TidBackend::Bitmap, TidBackend::Auto] {
            let cfg = VerticalConfig::default().with_backend(backend);
            for p in THREADS {
                let (wall, (itemsets, stats)) = time_best(reps, || {
                    arm_vertical::mine_eclat_parallel(db, minsup, max_k, &cfg, p)
                });
                if itemsets != oracle {
                    eprintln!("DIVERGENCE: {name} {} P={p}", backend_name(backend));
                    diverged = true;
                }
                let row = Row {
                    dataset: name,
                    algorithm: "eclat",
                    backend: backend_name(backend),
                    threads: p,
                    wall_seconds: wall,
                    simulated_seconds: stats.simulated_time(),
                    mine_imbalance: stats.imbalance_of_heaviest("mine"),
                    intersections: stats.metrics.total(Counter::TidsetIntersections),
                    words_anded: stats.metrics.total(Counter::TidsetWordsAnded),
                    tidset_kb: stats.metrics.total(Counter::TidsetBytes) / 1024,
                    steals: stats.metrics.total(Counter::ChunksStolen),
                };
                print_row(&row);
                rows.push(row);
            }
        }
    }

    // Hybrid reference rows (sparse workload, adaptive backend).
    {
        use arm_core::{AprioriConfig, Support};
        use arm_parallel::ParallelConfig;
        let base = AprioriConfig {
            min_support: Support::Fraction(0.005),
            ..AprioriConfig::default()
        };
        let expected = mine_vertical(&sparse, sparse_minsup, None, &VerticalConfig::default());
        for p in THREADS {
            let pcfg = ParallelConfig::new(base.clone(), p);
            let vcfg = VerticalConfig::default();
            let (wall, (itemsets, stats)) =
                time_best(reps, || arm_vertical::mine_hybrid(&sparse, &pcfg, &vcfg));
            if itemsets != expected {
                eprintln!("DIVERGENCE: hybrid P={p}");
                diverged = true;
            }
            let row = Row {
                dataset: "T10.I4.D100K",
                algorithm: "hybrid",
                backend: "auto",
                threads: p,
                wall_seconds: wall,
                simulated_seconds: stats.simulated_time(),
                mine_imbalance: stats.imbalance_of_heaviest("mine"),
                intersections: stats.metrics.total(Counter::TidsetIntersections),
                words_anded: stats.metrics.total(Counter::TidsetWordsAnded),
                tidset_kb: stats.metrics.total(Counter::TidsetBytes) / 1024,
                steals: stats.metrics.total(Counter::ChunksStolen),
            };
            print_row(&row);
            rows.push(row);
        }
    }

    // ---- gate 2: bitmap vs sorted on dense at max P -------------------
    let p_max = *THREADS.last().unwrap();
    let at = |ds: &str, backend: &str, p: usize| {
        rows.iter()
            .find(|r| {
                r.dataset == ds && r.algorithm == "eclat" && r.backend == backend && r.threads == p
            })
            .unwrap()
    };
    let dense_sorted = at("T10.I4.D100K-n50-dense", "sorted", p_max);
    let dense_bitmap = at("T10.I4.D100K-n50-dense", "bitmap", p_max);
    println!();
    println!(
        "dense P={p_max}: sorted {:.4}s vs bitmap {:.4}s ({:.1}x)",
        dense_sorted.wall_seconds,
        dense_bitmap.wall_seconds,
        dense_sorted.wall_seconds / dense_bitmap.wall_seconds.max(1e-12)
    );
    let bitmap_wins = dense_bitmap.wall_seconds < dense_sorted.wall_seconds;
    if !bitmap_wins {
        eprintln!("FAIL: bitmap backend lost to sorted lists on the dense workload");
    }

    // ---- gate 3: thread scaling on the skewed workload ----------------
    let skew1 = at("T10.I4.D100K-zipf16", "auto", 1);
    let skew8 = at("T10.I4.D100K-zipf16", "auto", p_max);
    let sim_scaling = skew1.simulated_seconds / skew8.simulated_seconds.max(1e-12);
    let wall_scaling = skew1.wall_seconds / skew8.wall_seconds.max(1e-12);
    println!(
        "skewed auto P=1 -> P={p_max}: simulated {:.2}x (wall {:.2}x)",
        sim_scaling, wall_scaling
    );
    let scales = sim_scaling >= 3.0;
    if !scales {
        eprintln!("FAIL: simulated speedup at P={p_max} below 3x on the skewed workload");
    }
    if wall_scaling < 1.0 {
        eprintln!("note: wall does not scale on this host (threads serialize on few cores)");
    }

    // ---- hand-formatted JSON snapshot ---------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"vertical-mining\",\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    json.push_str(
        "  \"datasets\": [\"T10.I4.D100K-n50-dense\", \"T10.I4.D100K\", \"T10.I4.D100K-zipf16\"],\n",
    );
    json.push_str(&format!(
        "  \"dense_p{p_max}_sorted_wall_seconds\": {:.6},\n",
        dense_sorted.wall_seconds
    ));
    json.push_str(&format!(
        "  \"dense_p{p_max}_bitmap_wall_seconds\": {:.6},\n",
        dense_bitmap.wall_seconds
    ));
    json.push_str(&format!(
        "  \"dense_p{p_max}_bitmap_speedup\": {:.4},\n",
        dense_sorted.wall_seconds / dense_bitmap.wall_seconds.max(1e-12)
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_simulated_scaling\": {:.4},\n",
        sim_scaling
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_wall_scaling\": {:.4},\n",
        wall_scaling
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"algorithm\": \"{}\", \"backend\": \"{}\", \
             \"threads\": {}, \"wall_seconds\": {:.6}, \"simulated_seconds\": {:.6}, \
             \"mine_imbalance\": {:.4}, \"intersections\": {}, \"words_anded\": {}, \
             \"tidset_kb\": {}, \"steals\": {}}}{}\n",
            r.dataset,
            r.algorithm,
            r.backend,
            r.threads,
            r.wall_seconds,
            r.simulated_seconds,
            r.mine_imbalance,
            r.intersections,
            r.words_anded,
            r.tidset_kb,
            r.steals,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_vertical.json", &json).expect("write BENCH_vertical.json");
    println!("wrote BENCH_vertical.json");

    if diverged || !bitmap_wins || !scales {
        std::process::exit(1);
    }
}

fn print_row(r: &Row) {
    println!(
        "{:<24} {:<9} {:<7} {:>2} {:>10.4} {:>10.4} {:>7.3} {:>12} {:>12} {:>9} {:>7}",
        r.dataset,
        r.algorithm,
        r.backend,
        r.threads,
        r.wall_seconds,
        r.simulated_seconds,
        r.mine_imbalance,
        r.intersections,
        r.words_anded,
        r.tidset_kb,
        r.steals
    );
}
