//! Fig. 11 — CCPD speedup with all optimizations (0.5% support).
//!
//! Reports the work-model speedup (host-independent; see DESIGN.md) and
//! the measured wall time per thread count. The paper reaches ~8x on 12
//! processors for its largest dataset, capped by the serial fraction
//! (their disk I/O; here the freeze/extract phases).

use arm_bench::{banner, paper_name, reps_for, Csv, DatasetCache, ScaleMode, TABLE2_DATASETS};
use arm_core::{AprioriConfig, Support};
use arm_parallel::{ccpd, ParallelConfig};

fn main() {
    let scale = ScaleMode::from_env();
    banner("Fig. 11: CCPD parallel speedup (0.5% support)", scale);
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale);
    let mut csv = Csv::new(
        "fig11.csv",
        "dataset,procs,model_speedup,wall_s,serial_fraction",
    );

    // At quick/default scale skip the two largest generations.
    let datasets: Vec<_> = TABLE2_DATASETS
        .iter()
        .copied()
        .filter(|&(_, _, d)| scale == ScaleMode::Full || d <= 1_600_000)
        .collect();

    println!(
        "{:<16} {:>2} {:>14} {:>10} {:>16}",
        "dataset", "P", "model speedup", "wall (s)", "serial fraction"
    );
    for (t, i, d) in datasets {
        let name = paper_name(t, i, d);
        let db = cache.get(t, i, d);
        for p in [1usize, 2, 4, 8, 12] {
            let base = AprioriConfig {
                min_support: Support::Fraction(0.005),
                max_k: arm_bench::timing_max_k(scale),
                ..AprioriConfig::default()
            };
            let cfg = ParallelConfig::new(base, p);
            let mut best_speedup = 0.0f64;
            let mut best_wall = f64::MAX;
            let mut serial_frac = 0.0;
            for _ in 0..reps {
                let (_, stats) = ccpd::mine(&db, &cfg);
                best_speedup = best_speedup.max(stats.simulated_speedup());
                best_wall = best_wall.min(stats.wall.as_secs_f64());
                serial_frac = stats.serial_wall().as_secs_f64() / stats.serialized_time();
            }
            println!(
                "{name:<16} {p:>2} {best_speedup:>14.2} {best_wall:>10.4} {serial_frac:>16.3}"
            );
            csv.row(format!(
                "{name},{p},{best_speedup:.3},{best_wall:.4},{serial_frac:.4}"
            ));
        }
    }
    let path = csv.finish();
    println!("\nexpected shape (paper): near-linear to P=4, flattening toward ~8x at");
    println!("P=12 for the largest datasets; small datasets cap early (Amdahl).");
    println!("csv: {}", path.display());
}
