//! Algorithm shoot-out (beyond the paper's figures): optimized Apriori
//! vs the unoptimized baseline vs DHP pair filtering vs vertical
//! (Eclat-style) mining vs the two-scan Partition algorithm — all
//! producing identical output on the same dataset.

use arm_bench::{banner, paper_name, reps_for, time_best, Csv, DatasetCache, ScaleMode};
use arm_core::{mine, mine_eclat, mine_partition, AprioriConfig, Support};

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Baselines: Apriori (opt/unopt/DHP) vs Eclat vs Partition",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale).max(2);
    let mut csv = Csv::new("baselines.csv", "dataset,algorithm,seconds,frequent");

    let frac = 0.005;
    let max_k = arm_bench::timing_max_k(scale);
    for (t, i, d) in [
        (5u32, 2u32, 100_000usize),
        (10, 4, 100_000),
        (10, 6, 400_000),
    ] {
        let name = paper_name(t, i, d);
        let db = cache.get(t, i, d);
        let minsup = db.absolute_support(frac);

        let opt_cfg = AprioriConfig {
            min_support: Support::Fraction(frac),
            max_k,
            ..AprioriConfig::default()
        };
        let unopt_cfg = AprioriConfig {
            min_support: Support::Fraction(frac),
            max_k,
            ..AprioriConfig::unoptimized()
        };
        let dhp_cfg = AprioriConfig {
            pair_filter_buckets: Some(1 << 16),
            ..opt_cfg.clone()
        };

        let (t_opt, r_opt) = time_best(reps, || mine(&db, &opt_cfg).total_frequent());
        let (t_unopt, _) = time_best(reps, || mine(&db, &unopt_cfg).total_frequent());
        let (t_dhp, r_dhp) = time_best(reps, || mine(&db, &dhp_cfg).total_frequent());
        let (t_eclat, r_eclat) = time_best(reps, || mine_eclat(&db, minsup, max_k).len());
        let (t_part, r_part) = time_best(reps, || mine_partition(&db, frac, 4, max_k).len());
        assert_eq!(r_opt, r_eclat, "{name}: Apriori vs Eclat disagree");
        assert_eq!(r_opt, r_part, "{name}: Apriori vs Partition disagree");
        assert_eq!(r_opt, r_dhp, "{name}: Apriori vs DHP disagree");

        println!("{name}  ({} frequent itemsets)", r_opt);
        for (alg, secs) in [
            ("apriori-opt", t_opt),
            ("apriori-unopt", t_unopt),
            ("apriori-dhp", t_dhp),
            ("eclat", t_eclat),
            ("partition", t_part),
        ] {
            println!("  {alg:<14} {secs:>9.4}s");
            csv.row(format!("{name},{alg},{secs:.5},{r_opt}"));
        }
    }
    let path = csv.finish();
    println!("\nexpected: the full optimization stack beats the unoptimized Apriori by");
    println!("an order of magnitude or more; DHP shrinks C2 further; the vertical");
    println!("miner and Partition land in the same ballpark as optimized Apriori.");
    println!("csv: {}", path.display());
}
