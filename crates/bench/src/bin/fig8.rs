//! Fig. 8 — effect of computation balancing (COMP) and hash tree
//! balancing (TREE), 0.5% support.
//!
//! Four configurations per dataset and processor count:
//! * base: block-partitioned candidate generation + interleaved `mod` hash;
//! * COMP: greedy/bitonic class balancing (§3.1.2);
//! * TREE: bitonic indirection hash (§4.1);
//! * COMP-TREE: both.
//!
//! Reported: % improvement in work-model execution time over the base
//! (the paper's metric is computation-time improvement; the work model
//! removes the single-host-core limitation, see DESIGN.md).

use arm_balance::Scheme;
use arm_bench::{
    banner, paper_name, pct_improvement, reps_for, write_reports, Csv, DatasetCache, ScaleMode,
    FIG_DATASETS_6,
};
use arm_core::{AprioriConfig, HashScheme, MiningResult, Support};
use arm_dataset::Database;
use arm_parallel::{ccpd, run_report, ParallelConfig, ParallelRunStats};

fn run(
    db: &Database,
    p: usize,
    candgen: Scheme,
    hash: HashScheme,
    reps: usize,
    max_k: Option<u32>,
) -> (f64, f64, MiningResult, ParallelRunStats) {
    let base = AprioriConfig {
        min_support: Support::Fraction(0.005),
        hash_scheme: hash,
        max_k,
        ..AprioriConfig::default()
    };
    let mut cfg = ParallelConfig::new(base, p).with_candgen(candgen);
    cfg.parallel_candgen_min = 2; // always exercise the COMP knob
    let mut best = f64::MAX;
    let mut imbalance = 1.0f64;
    // One discarded warm-up run stabilizes allocator and cache state.
    let _ = ccpd::mine(db, &cfg);
    let mut last = None;
    for _ in 0..reps {
        let (result, stats) = ccpd::mine(db, &cfg);
        // The paper reports improvements "only based on the computation
        // time" — candidate generation, tree build, and counting.
        best = best.min(stats.simulated_time_of(&["candgen", "build", "count"]));
        imbalance = stats.imbalance_of_heaviest("candgen");
        last = Some((result, stats));
    }
    let (result, stats) = last.unwrap();
    (best, imbalance, result, stats)
}

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Fig. 8: computation and hash tree balancing (0.5% support)",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale);
    let mut csv = Csv::new(
        "fig8.csv",
        "dataset,procs,comp_pct,tree_pct,comp_tree_pct,candgen_imbalance_block,candgen_imbalance_greedy",
    );
    let mut reports = Vec::new();

    println!(
        "{:<16} {:>2} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "dataset", "P", "COMP %", "TREE %", "COMP-TREE %", "imbal(block)", "imbal(greedy)"
    );
    for (t, i, d) in FIG_DATASETS_6 {
        let name = paper_name(t, i, d);
        let db = cache.get(t, i, d);
        for p in [1usize, 2, 4, 8] {
            let mk = arm_bench::timing_max_k(scale);
            let (base, imb_block, ..) =
                run(&db, p, Scheme::Block, HashScheme::Interleaved, reps, mk);
            let (comp, imb_greedy, ..) =
                run(&db, p, Scheme::Greedy, HashScheme::Interleaved, reps, mk);
            let (tree, ..) = run(&db, p, Scheme::Block, HashScheme::Bitonic, reps, mk);
            let (both, _, result, stats) =
                run(&db, p, Scheme::Greedy, HashScheme::Bitonic, reps, mk);
            // The COMP-TREE run (the configuration the figure argues for)
            // doubles as this dataset/P cell's RunReport.
            reports.push(run_report("ccpd-comp-tree", &name, &result, &stats));
            let (ci, ti, bi) = (
                pct_improvement(base, comp),
                pct_improvement(base, tree),
                pct_improvement(base, both),
            );
            println!(
                "{name:<16} {p:>2} {ci:>10.1} {ti:>10.1} {bi:>12.1} {imb_block:>12.2} {imb_greedy:>12.2}"
            );
            csv.row(format!(
                "{name},{p},{ci:.2},{ti:.2},{bi:.2},{imb_block:.3},{imb_greedy:.3}"
            ));
        }
    }
    let path = csv.finish();
    let report_path = write_reports("fig8.report.json", &reports);
    println!("\nexpected shape (paper): COMP ≈ 0% at P=1, ~20% at P=8; TREE helps even");
    println!("at P=1 (~30%); COMP-TREE is the best, reaching ~40% on multiprocessors.");
    println!("csv: {}", path.display());
    println!("reports: {}", report_path.display());
}
