//! Fig. 7 — frequent itemsets found per iteration (0.5% support).
//!
//! Characterizes dataset complexity: the number of iterations and the
//! per-level frequent counts (log scale in the paper).

use arm_bench::{banner, paper_name, Csv, DatasetCache, ScaleMode, TABLE2_DATASETS};
use arm_core::{mine, AprioriConfig, Support};

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Fig. 7: frequent itemsets per iteration (0.5% support)",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let mut csv = Csv::new("fig7.csv", "dataset,k,n_frequent,n_candidates");

    for (t, i, d) in TABLE2_DATASETS {
        let name = paper_name(t, i, d);
        let db = cache.get(t, i, d);
        let cfg = AprioriConfig {
            min_support: Support::Fraction(0.005),
            ..AprioriConfig::default()
        };
        let r = mine(&db, &cfg);
        print!("{name:<16}");
        for s in &r.iter_stats {
            print!(" k{}:{}", s.k, s.n_frequent);
            csv.row(format!(
                "{},{},{},{}",
                name, s.k, s.n_frequent, s.n_candidates
            ));
        }
        println!("  (total {})", r.total_frequent());
    }
    let path = csv.finish();
    println!("\nexpected shape: counts rise to a hump around k=2..4 then decay;");
    println!("longer transactions / patterns sustain more iterations (paper: up to k=12).");
    println!("csv: {}", path.display());
}
