//! Table 2 — database properties of the synthetic benchmark datasets.
//!
//! Regenerates the paper's dataset grid (at the configured scale) and
//! reports the measured properties next to the paper's figures.

use arm_bench::{banner, paper_name, scaled_params, Csv, ScaleMode, TABLE2_DATASETS};
use arm_dataset::DatasetStats;
use arm_quest::generate;

fn main() {
    let scale = ScaleMode::from_env();
    banner("Table 2: database properties", scale);

    let mut csv = Csv::new(
        "table2.csv",
        "dataset,T,I,D,avg_len_measured,max_len,distinct_items,size_mb",
    );
    println!(
        "{:<16} {:>3} {:>3} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "Database", "T", "I", "D", "avg len", "max len", "items", "size MB"
    );
    for (t, i, d) in TABLE2_DATASETS {
        let params = scaled_params(t, i, d, scale);
        let db = generate(&params);
        let stats = DatasetStats::measure(paper_name(t, i, d), &db);
        println!(
            "{:<16} {:>3} {:>3} {:>9} {:>9.2} {:>8} {:>9} {:>9.2}",
            stats.name,
            t,
            i,
            stats.n_txns,
            stats.avg_txn_len,
            stats.max_txn_len,
            stats.distinct_items_used,
            stats.total_mb()
        );
        csv.row(format!(
            "{},{},{},{},{:.3},{},{},{:.3}",
            stats.name,
            t,
            i,
            stats.n_txns,
            stats.avg_txn_len,
            stats.max_txn_len,
            stats.distinct_items_used,
            stats.total_mb()
        ));
    }
    let path = csv.finish();
    println!("\npaper sizes at full scale: 2.6–136.9 MB for 100K–3.2M transactions.");
    println!("csv: {}", path.display());
}
