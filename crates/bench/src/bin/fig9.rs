//! Fig. 9 — effect of short-circuited subset checking (0.5% support).
//!
//! Compares the full miner with internal-node VISITED stamps on and off,
//! across datasets and processor counts. The paper sees the largest wins
//! (~25%) on large-transaction datasets (T20).

use arm_bench::{banner, paper_name, pct_improvement, reps_for, Csv, DatasetCache, ScaleMode};
use arm_core::{AprioriConfig, Support};
use arm_dataset::Database;
use arm_parallel::{ccpd, ParallelConfig};

const DATASETS: [(u32, u32, usize); 4] = [
    (5, 2, 100_000),
    (10, 6, 800_000),
    (15, 4, 100_000),
    (20, 6, 100_000),
];

fn run(db: &Database, p: usize, short_circuit: bool, reps: usize, max_k: Option<u32>) -> f64 {
    let base = AprioriConfig {
        min_support: Support::Fraction(0.005),
        short_circuit,
        max_k,
        ..AprioriConfig::default()
    };
    let cfg = ParallelConfig::new(base, p);
    let mut best = f64::MAX;
    let _ = ccpd::mine(db, &cfg); // warm-up
    for _ in 0..reps {
        let (_, stats) = ccpd::mine(db, &cfg);
        best = best.min(stats.simulated_time_of(&["candgen", "build", "count"]));
    }
    best
}

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Fig. 9: short-circuited subset checking (0.5% support)",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale);
    let mut csv = Csv::new("fig9.csv", "dataset,procs,improvement_pct");

    println!("{:<16} {:>2} {:>14}", "dataset", "P", "improvement %");
    for (t, i, d) in DATASETS {
        let name = paper_name(t, i, d);
        let db = cache.get(t, i, d);
        for p in [1usize, 2, 4, 8] {
            let mk = arm_bench::timing_max_k(scale);
            let off = run(&db, p, false, reps, mk);
            let on = run(&db, p, true, reps, mk);
            let imp = pct_improvement(off, on);
            println!("{name:<16} {p:>2} {imp:>14.1}");
            csv.row(format!("{name},{p},{imp:.2}"));
        }
    }
    let path = csv.finish();
    println!("\nexpected shape (paper): small gains on T5, up to ~25% on T20 —");
    println!("long transactions revisit internal nodes far more often.");
    println!("csv: {}", path.display());
}
