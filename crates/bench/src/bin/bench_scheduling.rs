//! Scheduling-mode snapshot: static block splits vs the adaptive
//! executor (`BENCH_scheduling.json`).
//!
//! Runs CCPD under every `Scheduling` mode at P = 1/2/4/8 on two
//! datasets: the paper's (scaled) `T10.I4.D100K` and a Zipf-tailed
//! variant of it whose handful of giant transactions makes the paper's
//! equal-transaction static split lopsided. For each run it records
//! wall time, the work-model simulated time, the count-phase imbalance,
//! and the executor telemetry (chunks, steals, CAS retries).
//!
//! Two gates, reflected in the exit code so CI can smoke-run this:
//!
//! 1. **Correctness** — every mode must produce frequent itemsets
//!    byte-identical to the `Static` oracle (hard failure).
//! 2. **Balance** — on the skewed dataset at P = 8, the best dynamic
//!    mode must improve the count-phase imbalance over `Static`
//!    (hard failure: this is the point of the executor). Wall and
//!    simulated time are reported for the same comparison; on a
//!    single-core host only the simulated (work-model) time is
//!    meaningful, so time regressions warn rather than fail.

use arm_bench::{banner, scaled_params, timing_max_k, ScaleMode};
use arm_core::{AprioriConfig, Support};
use arm_dataset::{Database, Item};
use arm_metrics::Counter;
use arm_parallel::{ccpd, run_report, ParallelConfig, Scheduling};
use arm_quest::{generate, LengthDist};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn modes() -> [Scheduling; 4] {
    [
        Scheduling::Static,
        Scheduling::Chunked { chunk: 256 },
        Scheduling::Guided,
        Scheduling::Stealing,
    ]
}

struct Row {
    dataset: &'static str,
    mode: &'static str,
    threads: usize,
    wall_seconds: f64,
    simulated_seconds: f64,
    count_imbalance: f64,
    chunks: u64,
    steals: u64,
    steal_attempts: u64,
    cursor_retries: u64,
}

fn main() {
    let scale = ScaleMode::from_env();
    banner("Scheduling-mode snapshot (BENCH_scheduling.json)", scale);

    let base = AprioriConfig {
        min_support: Support::Fraction(0.005),
        max_k: timing_max_k(scale),
        ..AprioriConfig::default()
    };

    let uniform = generate(&scaled_params(10, 4, 100_000, scale));
    let skewed = generate(&scaled_params(10, 4, 100_000, scale).with_length_dist(
        LengthDist::ZipfTail {
            exponent: 1.7,
            max_factor: 16,
        },
    ));
    let datasets: [(&str, &Database); 2] =
        [("T10.I4.D100K", &uniform), ("T10.I4.D100K-zipf16", &skewed)];

    let mut rows: Vec<Row> = Vec::new();
    let mut reports = Vec::new();
    let mut diverged = false;

    println!(
        "{:<22} {:<9} {:>2} {:>10} {:>10} {:>9} {:>8} {:>7} {:>9}",
        "dataset", "mode", "P", "wall(s)", "sim(s)", "imbal", "chunks", "steals", "retries"
    );
    for (name, db) in datasets {
        let mut oracle: Option<Vec<(Vec<Item>, u32)>> = None;
        for p in THREADS {
            for mode in modes() {
                let cfg = ParallelConfig::new(base.clone(), p).with_scheduling(mode);
                let (result, stats) = ccpd::mine(db, &cfg);
                let itemsets = result.all_itemsets();
                match &oracle {
                    None => {
                        assert_eq!(mode, Scheduling::Static, "static runs first");
                        oracle = Some(itemsets);
                    }
                    Some(expected) => {
                        if &itemsets != expected {
                            eprintln!(
                                "DIVERGENCE: {name} {} P={p} disagrees with Static",
                                mode.name()
                            );
                            diverged = true;
                        }
                    }
                }
                let row = Row {
                    dataset: name,
                    mode: mode.name(),
                    threads: p,
                    wall_seconds: stats.wall.as_secs_f64(),
                    simulated_seconds: stats.simulated_time(),
                    count_imbalance: stats.imbalance_of_heaviest("count"),
                    chunks: stats.metrics.total(Counter::ChunksExecuted),
                    steals: stats.metrics.total(Counter::ChunksStolen),
                    steal_attempts: stats.metrics.total(Counter::StealAttempts),
                    cursor_retries: stats.metrics.total(Counter::CursorCasRetries),
                };
                println!(
                    "{:<22} {:<9} {:>2} {:>10.4} {:>10.4} {:>9.3} {:>8} {:>7} {:>9}",
                    row.dataset,
                    row.mode,
                    row.threads,
                    row.wall_seconds,
                    row.simulated_seconds,
                    row.count_imbalance,
                    row.chunks,
                    row.steals,
                    row.cursor_retries
                );
                reports.push(run_report(
                    &format!("ccpd-{}-p{p}", mode.name()),
                    name,
                    &result,
                    &stats,
                ));
                rows.push(row);
            }
        }
    }

    // ---- headline comparison: skewed dataset at max P -----------------
    let at = |mode: &str, p: usize| {
        rows.iter()
            .find(|r| r.dataset == "T10.I4.D100K-zipf16" && r.mode == mode && r.threads == p)
            .unwrap()
    };
    let p_max = *THREADS.last().unwrap();
    let static_row = at("static", p_max);
    let dynamic: Vec<&Row> = ["chunked", "guided", "stealing"]
        .iter()
        .map(|m| at(m, p_max))
        .collect();
    let best_balance = dynamic
        .iter()
        .min_by(|a, b| a.count_imbalance.total_cmp(&b.count_imbalance))
        .unwrap();
    let best_time = dynamic
        .iter()
        .min_by(|a, b| a.simulated_seconds.total_cmp(&b.simulated_seconds))
        .unwrap();
    println!();
    println!(
        "skewed P={p_max}: static imbalance {:.3} / sim {:.4}s -> best balance {} ({:.3}), \
         best time {} ({:.4}s)",
        static_row.count_imbalance,
        static_row.simulated_seconds,
        best_balance.mode,
        best_balance.count_imbalance,
        best_time.mode,
        best_time.simulated_seconds
    );
    let balanced = best_balance.count_imbalance < static_row.count_imbalance;
    if !balanced {
        eprintln!("FAIL: no dynamic mode improved count-phase balance over static");
    }
    if best_time.simulated_seconds >= static_row.simulated_seconds {
        eprintln!("WARNING: balance gain did not translate into simulated-time gain");
    }

    // ---- hand-formatted JSON snapshot ---------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"scheduling-modes\",\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    json.push_str("  \"datasets\": [\"T10.I4.D100K\", \"T10.I4.D100K-zipf16\"],\n");
    json.push_str(&format!(
        "  \"skewed_p{p_max}_static_imbalance\": {:.4},\n",
        static_row.count_imbalance
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_best_balance_mode\": \"{}\",\n",
        best_balance.mode
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_best_balance_imbalance\": {:.4},\n",
        best_balance.count_imbalance
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_static_simulated_seconds\": {:.6},\n",
        static_row.simulated_seconds
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_best_time_mode\": \"{}\",\n",
        best_time.mode
    ));
    json.push_str(&format!(
        "  \"skewed_p{p_max}_best_time_simulated_seconds\": {:.6},\n",
        best_time.simulated_seconds
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"wall_seconds\": {:.6}, \"simulated_seconds\": {:.6}, \
             \"count_imbalance\": {:.4}, \"chunks\": {}, \"steals\": {}, \
             \"steal_attempts\": {}, \"cursor_retries\": {}}}{}\n",
            r.dataset,
            r.mode,
            r.threads,
            r.wall_seconds,
            r.simulated_seconds,
            r.count_imbalance,
            r.chunks,
            r.steals,
            r.steal_attempts,
            r.cursor_retries,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scheduling.json", &json).expect("write BENCH_scheduling.json");
    println!("wrote BENCH_scheduling.json");

    std::fs::write(
        "BENCH_scheduling.report.json",
        arm_metrics::reports_to_json(&reports),
    )
    .expect("write BENCH_scheduling.report.json");
    println!("wrote BENCH_scheduling.report.json");

    if diverged || !balanced {
        std::process::exit(1);
    }
}
