//! Runs the full experiment suite: Table 2 and every figure, in order.
//!
//! Each experiment is also available as its own binary (`table2`,
//! `fig6`..`fig13`). Scale via `ARM_SCALE` (quick | default | full);
//! CSV output lands in `ARM_OUT` (default `EXPERIMENTS-data/`).

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablations",
    "baselines",
    "scaling",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in EXPERIMENTS-data/ (or $ARM_OUT).");
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
