//! Fig. 12 — memory placement policies, uniprocessor (0.5% and 0.1%
//! support). Execution times normalized to the CCPD (standard malloc)
//! baseline; locality effects are per-core and fully reproducible on any
//! host.

use arm_bench::{
    banner, paper_name, reps_for, time_best, Csv, DatasetCache, ScaleMode, FIG_DATASETS_6,
};
use arm_core::{mine, AprioriConfig, Support};
use arm_hashtree::PlacementPolicy;

fn main() {
    let scale = ScaleMode::from_env();
    banner("Fig. 12: placement policies on one processor", scale);
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale).max(2);
    let mut csv = Csv::new("fig12.csv", "support,dataset,policy,seconds,normalized");

    for support in [0.005f64, 0.001] {
        println!("support = {}%", support * 100.0);
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}",
            "dataset", "CCPD", "SPP", "LPP", "GPP"
        );
        for (t, i, d) in FIG_DATASETS_6 {
            let name = paper_name(t, i, d);
            let db = cache.get(t, i, d);
            let mut base = 0.0f64;
            let mut row = format!("{name:<16}");
            for policy in PlacementPolicy::UNIPROCESSOR {
                let cfg = AprioriConfig {
                    min_support: Support::Fraction(support),
                    placement: policy,
                    ..AprioriConfig::default()
                };
                let (secs, _) = time_best(reps, || mine(&db, &cfg));
                if policy == PlacementPolicy::Ccpd {
                    base = secs;
                }
                let norm = secs / base;
                row.push_str(&format!(" {norm:>8.3}"));
                csv.row(format!(
                    "{support},{name},{},{secs:.4},{norm:.4}",
                    policy.name()
                ));
            }
            println!("{row}");
        }
        println!();
    }
    let path = csv.finish();
    println!("expected shape (paper): SPP ≈ 0.45–0.60 of CCPD; GPP best on the");
    println!("larger datasets (remap cost amortized), slightly behind SPP on tiny ones.");
    println!("csv: {}", path.display());
}
