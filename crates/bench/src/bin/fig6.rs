//! Fig. 6 — intermediate hash tree size per iteration (0.1% support).
//!
//! The tree size peaks at k = 2 (the candidate explosion) and decays as
//! pruning bites; larger/denser datasets build larger trees, which is what
//! makes them more amenable to locality placement.
//!
//! Runs the CCPD driver at `P = 1` (bit-identical to sequential mining)
//! so every dataset also yields a full [`arm_metrics::RunReport`] —
//! per-iteration tree sizes land in the report's `iters` section, the
//! counterpart of this figure's CSV.

use arm_bench::{banner, paper_name, write_reports, Csv, DatasetCache, ScaleMode};
use arm_core::{AprioriConfig, Support};
use arm_parallel::{ccpd, run_report, ParallelConfig};

const DATASETS: [(u32, u32, usize); 6] = [
    (5, 2, 100_000),
    (10, 4, 100_000),
    (20, 6, 100_000),
    (10, 6, 400_000),
    (10, 6, 800_000),
    (10, 6, 1_600_000),
];

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Fig. 6: intermediate hash tree size per iteration (0.1% support)",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let mut csv = Csv::new("fig6.csv", "dataset,k,tree_bytes,tree_nodes,n_candidates");
    let mut reports = Vec::with_capacity(DATASETS.len());

    for (t, i, d) in DATASETS {
        let name = paper_name(t, i, d);
        let db = cache.get(t, i, d);
        let cfg = AprioriConfig {
            min_support: Support::Fraction(0.001),
            ..AprioriConfig::default()
        };
        let (r, stats) = ccpd::mine(&db, &ParallelConfig::new(cfg, 1));
        print!("{name:<16}");
        for s in r.iter_stats.iter().filter(|s| s.k >= 2) {
            print!(" k{}:{:.3}MB", s.k, s.tree_bytes as f64 / 1048576.0);
            csv.row(format!(
                "{},{},{},{},{}",
                name, s.k, s.tree_bytes, s.tree_nodes, s.n_candidates
            ));
        }
        println!();
        reports.push(run_report("ccpd", &name, &r, &stats));
    }
    let path = csv.finish();
    let report_path = write_reports("fig6.report.json", &reports);
    println!("\nexpected shape: size peaks at k=2 and falls by orders of magnitude;");
    println!("larger T/I/D move the whole curve up (paper: 0.01–100 MB log scale).");
    println!("csv: {}", path.display());
    println!("reports: {}", report_path.display());
}
