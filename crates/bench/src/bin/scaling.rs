//! Database scale-up (extends Fig. 11's dataset-size axis): CCPD run
//! time vs transaction count at fixed relative support should be linear
//! in `D` — Apriori scans the whole database every iteration, and the
//! candidate structure is `D`-invariant at a fixed support fraction.

use arm_bench::{banner, reps_for, write_reports, Csv, ScaleMode};
use arm_core::{AprioriConfig, Support};
use arm_parallel::{ccpd, run_report, ParallelConfig};
use arm_quest::QuestParams;

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Scale-up: CCPD time vs D (T10.I6 family, 0.5% support)",
        scale,
    );
    let reps = reps_for(scale);
    let mut csv = Csv::new("scaling.csv", "txns,seconds,per_txn_us,frequent");

    let base_d = match scale {
        ScaleMode::Quick => 2_000usize,
        ScaleMode::Default => 10_000,
        ScaleMode::Full => 100_000,
    };
    println!(
        "{:>9} {:>10} {:>12} {:>10}",
        "D", "seconds", "us/txn", "frequent"
    );
    let mut first_per_txn = None;
    let mut reports = Vec::new();
    for mult in [1usize, 2, 4, 8] {
        let d = base_d * mult;
        let db = arm_quest::generate(&QuestParams::paper(10, 6, 100_000).with_txns(d));
        let cfg = ParallelConfig::new(
            AprioriConfig {
                min_support: Support::Fraction(0.005),
                max_k: arm_bench::timing_max_k(scale),
                ..AprioriConfig::default()
            },
            1,
        );
        let mut secs = f64::MAX;
        let mut frequent = 0usize;
        let mut last = None;
        for _ in 0..reps {
            let (r, stats) = ccpd::mine(&db, &cfg);
            secs = secs.min(stats.wall.as_secs_f64());
            frequent = r.total_frequent();
            last = Some((r, stats));
        }
        let (r, stats) = last.unwrap();
        reports.push(run_report("ccpd", &format!("T10.I6.D{d}"), &r, &stats));
        let per_txn = secs / d as f64 * 1e6;
        first_per_txn.get_or_insert(per_txn);
        println!("{d:>9} {secs:>10.4} {per_txn:>12.3} {frequent:>10}");
        csv.row(format!("{d},{secs:.5},{per_txn:.4},{frequent}"));
    }
    let path = csv.finish();
    let report_path = write_reports("scaling.report.json", &reports);
    println!("\nexpected: us/txn roughly constant across the sweep (linear scale-up,");
    println!("matching the paper's D=100K..3.2M series behaving uniformly in Fig. 11).");
    println!("csv: {}", path.display());
    println!("reports: {}", report_path.display());
}
