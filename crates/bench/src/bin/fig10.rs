//! Fig. 10 — per-iteration improvement of short-circuited subset
//! checking on T20.I6.D100K (0.5% support, one processor).
//!
//! The benefit grows with k (deeper trees → more internal nodes to
//! preempt) until the candidate set — and hence the tree — shrinks near
//! the end of the run.

use arm_bench::{banner, paper_name, pct_improvement, reps_for, Csv, DatasetCache, ScaleMode};
use arm_core::{AprioriConfig, Support};
use arm_parallel::{ccpd, ParallelConfig, ParallelRunStats};

/// Per-iteration count-phase seconds and node visits.
fn per_iteration(stats: &ParallelRunStats) -> Vec<(u32, f64)> {
    stats
        .phases
        .iter()
        .filter(|p| p.name == "count")
        .map(|p| (p.k, p.wall.as_secs_f64()))
        .collect()
}

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Fig. 10: per-iteration short-circuit improvement (T20.I6.D100K, P=1)",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale).max(2);
    let db = cache.get(20, 6, 100_000);
    let name = paper_name(20, 6, 100_000);

    type IterSeries = (Vec<(u32, f64)>, Vec<(u32, u64)>);
    let run = |short_circuit: bool| -> IterSeries {
        let base = AprioriConfig {
            min_support: Support::Fraction(0.005),
            short_circuit,
            // Fig. 10 needs the deep iterations (the trend peaks near
            // k=10), so its cap is looser than the other timing figures'.
            max_k: match scale {
                arm_bench::ScaleMode::Quick => Some(6),
                arm_bench::ScaleMode::Default => Some(9),
                arm_bench::ScaleMode::Full => None,
            },
            ..AprioriConfig::default()
        };
        let cfg = ParallelConfig::new(base, 1);
        let mut best: Option<Vec<(u32, f64)>> = None;
        let mut visits = Vec::new();
        for _ in 0..reps {
            let (res, stats) = ccpd::mine(&db, &cfg);
            let cur = per_iteration(&stats);
            best = Some(match best {
                None => cur,
                Some(prev) => prev
                    .into_iter()
                    .zip(cur)
                    .map(|((k, a), (_, b))| (k, a.min(b)))
                    .collect(),
            });
            visits = res
                .iter_stats
                .iter()
                .filter(|s| s.k >= 2)
                .map(|s| (s.k, s.meter.node_visits))
                .collect();
        }
        (best.unwrap(), visits)
    };

    let (off_t, off_v) = run(false);
    let (on_t, on_v) = run(true);

    let mut csv = Csv::new("fig10.csv", "k,time_improvement_pct,visit_reduction_pct");
    println!(
        "{:>3} {:>12} {:>16}",
        "k", "time impr %", "visit reduction %"
    );
    for ((k, toff), (_, ton)) in off_t.iter().zip(&on_t) {
        let ti = pct_improvement(*toff, *ton);
        let vi = off_v
            .iter()
            .find(|(vk, _)| vk == k)
            .zip(on_v.iter().find(|(vk, _)| vk == k))
            .map(|((_, a), (_, b))| pct_improvement(*a as f64, *b as f64))
            .unwrap_or(0.0);
        println!("{k:>3} {ti:>12.1} {vi:>16.1}");
        csv.row(format!("{k},{ti:.2},{vi:.2}"));
    }
    let path = csv.finish();
    println!("\ndataset: {name}; expected shape (paper): rising benefit with k,");
    println!("peaking around 60%, falling off once the candidate set shrinks.");
    println!("csv: {}", path.display());
}
