//! Fig. 13 — memory placement policies on multiple processors (0.5% and
//! 0.1% support, 4 and 8 threads).
//!
//! All seven policies of the paper, normalized to CCPD. Note for 1-core
//! hosts: false-sharing *cannot* manifest without concurrent caches, so
//! the L-*/LCA columns mostly show their (small) overheads there; the
//! locality ordering (CCPD vs SPP vs GPP) reproduces everywhere. The
//! work-model time is reported alongside wall time.

use arm_bench::{banner, paper_name, reps_for, Csv, DatasetCache, ScaleMode};
use arm_core::{AprioriConfig, Support};
use arm_hashtree::PlacementPolicy;
use arm_parallel::{ccpd, ParallelConfig};

const DATASETS: [(u32, u32, usize); 5] = [
    (5, 2, 100_000),
    (10, 4, 100_000),
    (20, 6, 100_000),
    (10, 6, 800_000),
    (10, 6, 3_200_000),
];

const POLICIES: [PlacementPolicy; 7] = [
    PlacementPolicy::Ccpd,
    PlacementPolicy::Spp,
    PlacementPolicy::LSpp,
    PlacementPolicy::LLpp,
    PlacementPolicy::Gpp,
    PlacementPolicy::LGpp,
    PlacementPolicy::LcaGpp,
];

fn main() {
    let scale = ScaleMode::from_env();
    banner("Fig. 13: placement policies on 4 and 8 processors", scale);
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale);
    let mut csv = Csv::new(
        "fig13.csv",
        "support,procs,dataset,policy,model_seconds,normalized",
    );

    let datasets: Vec<_> = DATASETS
        .iter()
        .copied()
        .filter(|&(_, _, d)| scale == ScaleMode::Full || d <= 800_000)
        .collect();

    for support in [0.005f64, 0.001] {
        for procs in [4usize, 8] {
            println!("support = {}%, P = {procs}", support * 100.0);
            print!("{:<16}", "dataset");
            for p in POLICIES {
                print!(" {:>8}", p.name());
            }
            println!();
            for &(t, i, d) in &datasets {
                let name = paper_name(t, i, d);
                let db = cache.get(t, i, d);
                let mut base = 0.0f64;
                let mut row = format!("{name:<16}");
                for policy in POLICIES {
                    let base_cfg = AprioriConfig {
                        min_support: Support::Fraction(support),
                        placement: policy,
                        max_k: arm_bench::timing_max_k(scale),
                        ..AprioriConfig::default()
                    };
                    let cfg = ParallelConfig::new(base_cfg, procs);
                    let mut secs = f64::MAX;
                    for _ in 0..reps {
                        let (_, stats) = ccpd::mine(&db, &cfg);
                        secs = secs.min(stats.simulated_time());
                    }
                    if policy == PlacementPolicy::Ccpd {
                        base = secs;
                    }
                    let norm = secs / base;
                    row.push_str(&format!(" {norm:>8.3}"));
                    csv.row(format!(
                        "{support},{procs},{name},{},{secs:.4},{norm:.4}",
                        policy.name()
                    ));
                }
                println!("{row}");
            }
            println!();
        }
    }
    let path = csv.finish();
    println!("expected shape (paper): every region policy beats CCPD by 40–60%;");
    println!("L-* adds a little on big data; LCA-GPP is best overall at scale.");
    println!("csv: {}", path.display());
}
