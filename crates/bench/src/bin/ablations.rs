//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Counter placement** (§5.2): inline vs segregated vs cache-line
//!    padded (the paper's rejected scheme) vs per-thread privatized —
//!    kernel-level counting time and counter footprint.
//! 2. **Leaf threshold `T`**: split threshold vs mining time, tree size,
//!    and worst leaf occupancy ("fan-out large, threshold small").
//! 3. **Fan-out**: the adaptive rule (§3.1.1) vs fixed values.
//! 4. **VISITED scheme** (§4.2): per-node vs the reduced `k·H` path
//!    stamps — time and stamp memory.
//! 5. **Database partitioning** (§3.2.2): block vs weighted on a
//!    length-skewed database.

use arm_bench::{banner, reps_for, time_best, Csv, DatasetCache, ScaleMode};
use arm_core::{
    equivalence_classes, frequent_singletons, generate_class, make_hash, mine, AprioriConfig,
    HashScheme, Support,
};
use arm_dataset::{Database, DatabaseBuilder};
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, PlacementPolicy,
    TreeBuilder, VisitedMode, WorkMeter,
};
use arm_mem::{FlatCounters, LocalCounters, PaddedCounters, SharedCounters};
use arm_parallel::{ccpd, DbPartition, ParallelConfig};
use arm_quest::{generate, QuestParams};

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Ablations: counters, leaf threshold, fan-out, visited scheme, db partition",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let reps = reps_for(scale).max(2);
    let db = cache.get(10, 4, 100_000);

    counter_placement(&db, reps);
    leaf_threshold(&db, reps);
    fanout(&db, reps);
    visited_scheme(&db, reps);
    db_partitioning(scale, reps);
}

/// Builds the C2 tree of `db` at 0.5% support for kernel-level ablations.
fn c2_fixture(db: &Database) -> (CandidateSet, arm_balance::AnyHash) {
    let minsup = db.absolute_support(0.005);
    let f1 = frequent_singletons(db, minsup);
    let classes = equivalence_classes(&f1);
    let mut cands = CandidateSet::new(2);
    let mut scratch = Vec::new();
    for c in &classes {
        generate_class(&f1, c.clone(), &mut cands, &mut scratch);
    }
    let h = arm_core::adaptive_fanout(&classes, 8, 2);
    let f1_items = arm_core::f1_items(&f1);
    let hash = make_hash(HashScheme::Bitonic, h, &f1_items, db.n_items());
    (cands, hash)
}

fn counter_placement(db: &Database, reps: usize) {
    println!("-- counter placement (C2 kernel, one full scan) --");
    let (cands, hash) = c2_fixture(db);
    let builder = TreeBuilder::new(&cands, &hash, 8);
    builder.insert_all();
    let mut csv = Csv::new("ablation_counters.csv", "mode,seconds,footprint_bytes");

    // Inline counters (count words inside itemset blocks).
    let inline_tree = freeze_policy(&builder, PlacementPolicy::Gpp);
    let (t_inline, _) = time_best(reps, || {
        let mut scratch = CountScratch::new(db.n_items(), inline_tree.n_nodes());
        let mut meter = WorkMeter::default();
        inline_tree.count_partition(
            &hash,
            db,
            0..db.len(),
            None,
            &mut scratch,
            &mut CounterRef::Inline,
            CountOptions::default(),
            &mut meter,
        );
        meter.hits
    });
    let rows: Vec<(&str, f64, usize)> = {
        let external = freeze_policy(&builder, PlacementPolicy::LGpp);
        let run_shared = |counters: &dyn SharedCounters| {
            let mut scratch = CountScratch::new(db.n_items(), external.n_nodes());
            let mut meter = WorkMeter::default();
            external.count_partition(
                &hash,
                db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Shared(counters),
                CountOptions::default(),
                &mut meter,
            );
            meter.hits
        };
        let flat = FlatCounters::new(cands.len());
        let (t_flat, _) = time_best(reps, || run_shared(&flat));
        let padded = PaddedCounters::new(cands.len());
        let (t_padded, _) = time_best(reps, || run_shared(&padded));
        let (t_local, _) = time_best(reps, || {
            let mut local = LocalCounters::new(cands.len());
            let mut scratch = CountScratch::new(db.n_items(), external.n_nodes());
            let mut meter = WorkMeter::default();
            external.count_partition(
                &hash,
                db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Local(&mut local),
                CountOptions::default(),
                &mut meter,
            );
            meter.hits
        });
        vec![
            ("inline", t_inline, 4 * cands.len()),
            ("segregated-flat", t_flat, flat.footprint_bytes()),
            ("padded-line", t_padded, padded.footprint_bytes()),
            ("per-thread", t_local, 4 * cands.len()),
        ]
    };
    println!("{:<18} {:>10} {:>14}", "mode", "seconds", "footprint B");
    for (name, secs, bytes) in rows {
        println!("{name:<18} {secs:>10.4} {bytes:>14}");
        csv.row(format!("{name},{secs:.5},{bytes}"));
    }
    println!("  (paper: padding removes false sharing at a 16x footprint; it rejects it)\n");
    csv.finish();
}

fn leaf_threshold(db: &Database, reps: usize) {
    println!("-- leaf split threshold T --");
    let mut csv = Csv::new("ablation_threshold.csv", "threshold,seconds,max_tree_bytes");
    println!("{:>4} {:>10} {:>14}", "T", "seconds", "max tree B");
    for t in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = AprioriConfig {
            min_support: Support::Fraction(0.005),
            leaf_threshold: t,
            max_k: Some(4),
            ..AprioriConfig::default()
        };
        let (secs, r) = time_best(reps, || mine(db, &cfg));
        let bytes = r.iter_stats.iter().map(|s| s.tree_bytes).max().unwrap_or(0);
        println!("{t:>4} {secs:>10.4} {bytes:>14}");
        csv.row(format!("{t},{secs:.5},{bytes}"));
    }
    println!("  (small T = fast leaf scans but bigger trees; the paper favors small T)\n");
    csv.finish();
}

fn fanout(db: &Database, reps: usize) {
    println!("-- hash-table fan-out H --");
    let mut csv = Csv::new("ablation_fanout.csv", "fanout,seconds");
    println!("{:>8} {:>10}", "H", "seconds");
    for f in ["auto", "2", "8", "32", "128"] {
        let cfg = AprioriConfig {
            min_support: Support::Fraction(0.005),
            adaptive_fanout: f == "auto",
            fixed_fanout: f.parse().unwrap_or(8),
            max_k: Some(4),
            ..AprioriConfig::default()
        };
        let (secs, _) = time_best(reps, || mine(db, &cfg));
        println!("{f:>8} {secs:>10.4}");
        csv.row(format!("{f},{secs:.5}"));
    }
    println!("  (the adaptive rule should sit near the best fixed value)\n");
    csv.finish();
}

fn visited_scheme(db: &Database, reps: usize) {
    println!("-- VISITED stamp scheme (§4.2) --");
    let (cands, hash) = c2_fixture(db);
    let builder = TreeBuilder::new(&cands, &hash, 8);
    builder.insert_all();
    let tree = freeze_policy(&builder, PlacementPolicy::Gpp);
    let mut csv = Csv::new("ablation_visited.csv", "mode,seconds,stamp_bytes");
    println!("{:<10} {:>10} {:>12}", "mode", "seconds", "stamp B");
    for (name, visited) in [
        ("per-node", VisitedMode::PerNode),
        ("level", VisitedMode::LevelPath),
    ] {
        let mut stamp_bytes = 0usize;
        let (secs, _) = time_best(reps, || {
            let n_nodes = if visited == VisitedMode::LevelPath {
                0 // the per-node table is the memory being avoided
            } else {
                tree.n_nodes()
            };
            let mut scratch = CountScratch::new(db.n_items(), n_nodes);
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions {
                    short_circuit: true,
                    visited,
                    ..CountOptions::default()
                },
                &mut meter,
            );
            stamp_bytes = scratch.stamp_bytes();
            meter.hits
        });
        println!("{name:<10} {secs:>10.4} {stamp_bytes:>12}");
        csv.row(format!("{name},{secs:.5},{stamp_bytes}"));
    }
    println!("  (identical counts; level stamps cost k·H memory instead of H^k)\n");
    csv.finish();
}

fn db_partitioning(scale: ScaleMode, reps: usize) {
    println!("-- database partitioning under length skew (P = 4) --");
    // A deliberately skewed database: a T25 head followed by a T5 tail,
    // so blocked splits hand the head block far more work.
    let d = (20_000.0 * scale.factor()).max(1_000.0) as usize;
    let mut head = QuestParams::paper(25, 6, d / 4);
    head.seed = 11;
    let mut tail = QuestParams::paper(5, 2, d - d / 4);
    tail.seed = 12;
    let head_db = generate(&head);
    let tail_db = generate(&tail);
    let mut b = DatabaseBuilder::new(1000);
    for t in &head_db {
        b.push(t.iter().copied()).unwrap();
    }
    for t in &tail_db {
        b.push(t.iter().copied()).unwrap();
    }
    let db = b.finish();

    let mut csv = Csv::new(
        "ablation_db_partition.csv",
        "strategy,model_seconds,count_imbalance",
    );
    println!(
        "{:<22} {:>12} {:>16}",
        "strategy", "model (s)", "count imbalance"
    );
    for (name, part) in [
        ("block", DbPartition::Block),
        ("weighted-static", DbPartition::WeightedStatic { kmax: 6 }),
        ("weighted-per-iter", DbPartition::WeightedPerIteration),
    ] {
        let base = AprioriConfig {
            min_support: Support::Fraction(0.005),
            max_k: Some(4),
            ..AprioriConfig::default()
        };
        let cfg = ParallelConfig::new(base, 4).with_db_partition(part);
        let mut secs = f64::MAX;
        let mut imb = 0.0;
        for _ in 0..reps {
            let (_, stats) = ccpd::mine(&db, &cfg);
            secs = secs.min(stats.simulated_time_of(&["count"]));
            imb = stats.imbalance_of_heaviest("count");
        }
        println!("{name:<22} {secs:>12.4} {imb:>16.3}");
        csv.row(format!("{name},{secs:.5},{imb:.4}"));
    }
    println!("  (weighted splits should cut the count-phase imbalance on skewed data)");
    csv.finish();
}
