//! Machine-readable perf snapshot of the counting fast path.
//!
//! Times one full C2 counting scan of the (scaled) `T10.I4.D100K`
//! dataset for **every** combination of the four fast-path knobs
//! (hash memoization, transaction trimming, explicit-stack traversal,
//! scratch reuse) and writes the results to `BENCH_counting.json` so
//! future PRs can regress-check against this snapshot. The JSON is
//! hand-formatted — the workspace deliberately has no serde.
//!
//! The `seed` row is the kernel exactly as the growth seed shipped it
//! (all knobs off, fresh scratch per scan); `all` is the fully
//! optimized kernel. Every combination must produce the same hit
//! count — the knobs are performance-only — and `all` is expected to
//! beat `seed` (the process exit code reports it so CI can gate on
//! the comparison).

use arm_bench::{
    banner, pct_improvement, reps_for, time_best, timing_max_k, DatasetCache, ScaleMode,
};
use arm_core::{
    equivalence_classes, frequent_singletons, generate_class, make_hash, AprioriConfig, HashScheme,
    Support,
};
use arm_dataset::Database;
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter,
    PlacementPolicy, TreeBuilder, WorkMeter,
};

/// One knob setting and its measurement.
struct Row {
    name: String,
    hash_memo: bool,
    trim: bool,
    iterative: bool,
    reuse: bool,
    seconds: f64,
    meter: WorkMeter,
}

/// Builds the C2 tree of `db` at 0.5% support (the paper's counting
/// hotspot: the widest candidate level).
fn c2_fixture(db: &Database) -> (CandidateSet, arm_balance::AnyHash) {
    let minsup = db.absolute_support(0.005);
    let f1 = frequent_singletons(db, minsup);
    let classes = equivalence_classes(&f1);
    let mut cands = CandidateSet::new(2);
    let mut scratch = Vec::new();
    for c in &classes {
        generate_class(&f1, c.clone(), &mut cands, &mut scratch);
    }
    let h = arm_core::adaptive_fanout(&classes, 8, 2);
    let f1_items = arm_core::f1_items(&f1);
    let hash = make_hash(HashScheme::Bitonic, h, &f1_items, db.n_items());
    (cands, hash)
}

fn combo_name(memo: bool, trim: bool, iterative: bool, reuse: bool) -> String {
    let mut parts = Vec::new();
    if memo {
        parts.push("memo");
    }
    if trim {
        parts.push("trim");
    }
    if iterative {
        parts.push("iter");
    }
    if reuse {
        parts.push("reuse");
    }
    match parts.len() {
        0 => "seed".to_string(),
        4 => "all".to_string(),
        _ => parts.join("+"),
    }
}

fn main() {
    let scale = ScaleMode::from_env();
    banner(
        "Counting-kernel fast-path snapshot (BENCH_counting.json)",
        scale,
    );
    let cache = DatasetCache::new(scale);
    let db = cache.get(10, 4, 100_000);
    let reps = reps_for(scale).max(3);

    let (cands, hash) = c2_fixture(&db);
    let builder = TreeBuilder::new(&cands, &hash, 8);
    builder.insert_all();
    let tree = freeze_policy(&builder, PlacementPolicy::Gpp);
    let filter = ItemFilter::from_candidates(&cands, db.n_items());

    let mut rows: Vec<Row> = Vec::with_capacity(16);
    for mask in 0u32..16 {
        let memo = mask & 1 != 0;
        let trim = mask & 2 != 0;
        let iterative = mask & 4 != 0;
        let reuse = mask & 8 != 0;
        let opts = CountOptions {
            hash_memo: memo,
            iterative,
            ..CountOptions::default()
        };
        let filter_ref = trim.then_some(&filter);
        // Scratch reuse: the pooled scratch lives across timed scans
        // (only stamps are re-zeroed); without it every scan pays the
        // seed's fresh allocation.
        let mut outer = CountScratch::new(db.n_items(), tree.n_nodes());
        let (seconds, meter) = time_best(reps, || {
            let mut fresh;
            let scratch: &mut CountScratch = if reuse {
                outer.retarget(tree.n_nodes());
                &mut outer
            } else {
                fresh = CountScratch::new(db.n_items(), tree.n_nodes());
                &mut fresh
            };
            let mut meter = WorkMeter::default();
            tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                filter_ref,
                scratch,
                &mut CounterRef::Inline,
                opts,
                &mut meter,
            );
            meter
        });
        rows.push(Row {
            name: combo_name(memo, trim, iterative, reuse),
            hash_memo: memo,
            trim,
            iterative,
            reuse,
            seconds,
            meter,
        });
    }

    // The knobs are performance-only: every combination must agree on
    // the candidate hits (trimming may legitimately change txns/visits).
    let hits = rows[0].meter.hits;
    for r in &rows {
        assert_eq!(r.meter.hits, hits, "combo {} changed the counts", r.name);
    }

    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12}",
        "combo", "seconds", "txns", "node visits", "hits"
    );
    for r in &rows {
        println!(
            "{:<22} {:>10.4} {:>12} {:>14} {:>12}",
            r.name, r.seconds, r.meter.txns, r.meter.node_visits, r.meter.hits
        );
    }

    let seed = rows.iter().find(|r| r.name == "seed").unwrap().seconds;
    let all = rows.iter().find(|r| r.name == "all").unwrap().seconds;
    let gain = pct_improvement(seed, all);
    println!();
    println!("seed {seed:.4}s -> all {all:.4}s ({gain:+.1}% improvement)");

    // ---- hand-formatted JSON snapshot ---------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"counting-kernel-fast-path\",\n");
    json.push_str("  \"dataset\": \"T10.I4.D100K\",\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    json.push_str(&format!("  \"transactions\": {},\n", db.len()));
    json.push_str(&format!("  \"candidates\": {},\n", cands.len()));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"seed_seconds\": {seed:.6},\n"));
    json.push_str(&format!("  \"optimized_seconds\": {all:.6},\n"));
    json.push_str(&format!("  \"improvement_pct\": {gain:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"hash_memo\": {}, \"trim\": {}, \"iterative\": {}, \
             \"reuse_scratch\": {}, \"seconds\": {:.6}, \"txns\": {}, \"node_visits\": {}, \
             \"subset_checks\": {}, \"hits\": {}}}{}\n",
            r.name,
            r.hash_memo,
            r.trim,
            r.iterative,
            r.reuse,
            r.seconds,
            r.meter.txns,
            r.meter.node_visits,
            r.meter.subset_checks,
            r.meter.hits,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_counting.json";
    std::fs::write(path, &json).expect("write BENCH_counting.json");
    println!("wrote {path}");

    // ---- RunReport: one instrumented CCPD run over the same dataset ----
    // Exercises the observability layer end-to-end: phase timers, lock
    // telemetry on the shared tree build, and per-thread work land in one
    // `arm-run-report/v1` document alongside the knob snapshot above.
    let base = AprioriConfig {
        min_support: Support::Fraction(0.005),
        max_k: timing_max_k(scale),
        ..AprioriConfig::default()
    };
    let (result, stats) =
        arm_parallel::ccpd::mine(&db, &arm_parallel::ParallelConfig::new(base, 2));
    let report = arm_parallel::run_report("ccpd", "T10.I4.D100K", &result, &stats);
    let report_path = "BENCH_counting.report.json";
    std::fs::write(report_path, arm_metrics::reports_to_json(&[report]))
        .expect("write BENCH_counting.report.json");
    println!("wrote {report_path}");

    if all >= seed {
        eprintln!("WARNING: optimized kernel did not beat the seed kernel");
        std::process::exit(1);
    }
}
