//! Hash-tree construction and freezing benchmarks: sequential vs
//! concurrent insertion, and the freeze cost of each placement policy
//! (the paper reports GPP's remap at <2% of run time).

use arm_balance::BitonicHash;
use arm_hashtree::{freeze_policy, CandidateSet, PlacementPolicy, TreeBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn candidate_set(n_items: u32, k: usize) -> CandidateSet {
    // Dense synthetic candidate population: every (a, a+s, a+2s) triple.
    let mut c = CandidateSet::new(k as u32);
    let mut buf = Vec::with_capacity(k);
    for a in 0..n_items {
        for s in 1..6u32 {
            buf.clear();
            for j in 0..k as u32 {
                buf.push(a + s * j);
            }
            if *buf.last().unwrap() < n_items {
                c.push(&buf);
            }
        }
    }
    c
}

fn bench_build(c: &mut Criterion) {
    let cands = candidate_set(400, 3);
    let hash = BitonicHash::new(16);
    let mut g = c.benchmark_group("treebuild");
    g.sample_size(20);
    g.bench_function("sequential_insert", |b| {
        b.iter(|| {
            let t = TreeBuilder::new(&cands, &hash, 8);
            t.insert_all();
            t.node_count()
        })
    });
    g.bench_function("concurrent_insert_4t", |b| {
        b.iter(|| {
            let t = TreeBuilder::new(&cands, &hash, 8);
            std::thread::scope(|s| {
                for part in 0..4u32 {
                    let t = &t;
                    s.spawn(move || {
                        let n = t.n_candidates() as u32;
                        let mut id = part;
                        while id < n {
                            t.insert(id);
                            id += 4;
                        }
                    });
                }
            });
            t.node_count()
        })
    });
    g.finish();
}

fn bench_freeze(c: &mut Criterion) {
    let cands = candidate_set(400, 3);
    let hash = BitonicHash::new(16);
    let builder = TreeBuilder::new(&cands, &hash, 8);
    builder.insert_all();
    let mut g = c.benchmark_group("freeze");
    g.sample_size(20);
    for policy in PlacementPolicy::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| b.iter(|| freeze_policy(&builder, p).total_bytes()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_freeze);
criterion_main!(benches);
