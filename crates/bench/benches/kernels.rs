//! Micro-benchmarks of the hot kernels: hash functions, partitioning
//! schemes, subset checking, and word-store access patterns.

use arm_balance::{
    bitonic_assignment, block_assignment, greedy_assignment, interleaved_assignment, BitonicHash,
    HashFn, IndirectionHash, ModHash,
};
use arm_hashtree::is_subset;
use arm_mem::{ContiguousBuilder, ScatterBuilder, WordStore, WordStoreBuilder};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_hash_functions(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashfn");
    let items: Vec<u32> = (0..1024u32).collect();
    let m = ModHash::new(97);
    let b = BitonicHash::new(97);
    let ind = IndirectionHash::for_frequent_items(&items, 1024, 97);
    g.bench_function("mod", |bch| {
        bch.iter(|| items.iter().map(|&i| m.hash(black_box(i))).sum::<u32>())
    });
    g.bench_function("bitonic", |bch| {
        bch.iter(|| items.iter().map(|&i| b.hash(black_box(i))).sum::<u32>())
    });
    g.bench_function("indirection", |bch| {
        bch.iter(|| items.iter().map(|&i| ind.hash(black_box(i))).sum::<u32>())
    });
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    let weights: Vec<u64> = (0..5000u64).rev().collect();
    g.bench_function("block", |b| {
        b.iter(|| block_assignment(black_box(&weights), 8).max_load())
    });
    g.bench_function("interleaved", |b| {
        b.iter(|| interleaved_assignment(black_box(&weights), 8).max_load())
    });
    g.bench_function("bitonic", |b| {
        b.iter(|| bitonic_assignment(black_box(&weights), 8).max_load())
    });
    g.bench_function("greedy", |b| {
        b.iter(|| greedy_assignment(black_box(&weights), 8).max_load())
    });
    g.finish();
}

fn bench_subset_check(c: &mut Criterion) {
    let hay: Vec<u32> = (0..40).map(|i| i * 7).collect();
    let hit: Vec<u32> = vec![0, 70, 210];
    let miss: Vec<u32> = vec![0, 71, 210];
    c.bench_function("is_subset_hit", |b| {
        b.iter(|| is_subset(black_box(&hit), black_box(&hay)))
    });
    c.bench_function("is_subset_miss", |b| {
        b.iter(|| is_subset(black_box(&miss), black_box(&hay)))
    });
}

fn bench_word_stores(c: &mut Criterion) {
    let mut g = c.benchmark_group("word_store");
    // 10k blocks of 8 words, walked in order — the traversal access shape.
    const BLOCKS: u32 = 10_000;
    let contiguous = {
        let mut b = ContiguousBuilder::new();
        let hs: Vec<u32> = (0..BLOCKS).map(|_| b.alloc(8)).collect();
        for &h in &hs {
            b.set(h, 0, h);
        }
        (b.finish(), hs)
    };
    let scatter = {
        let mut b = ScatterBuilder::new();
        let hs: Vec<u32> = (0..BLOCKS).map(|_| b.alloc(8)).collect();
        for &h in &hs {
            b.set(h, 0, h);
        }
        (b.finish(), hs)
    };
    g.bench_function("contiguous_walk", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for &h in &contiguous.1 {
                acc += contiguous.0.load(h, 0) as u64;
            }
            acc
        })
    });
    g.bench_function("scatter_walk", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for &h in &scatter.1 {
                acc += scatter.0.load(h, 0) as u64;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hash_functions,
    bench_partitioning,
    bench_subset_check,
    bench_word_stores
);
criterion_main!(benches);
