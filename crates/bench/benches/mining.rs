//! End-to-end mining benchmarks: generation, sequential Apriori, and
//! CCPD at several thread counts on a small synthetic dataset.

use arm_core::{mine, AprioriConfig, Support};
use arm_parallel::{ccpd, pccd, ParallelConfig};
use arm_quest::{generate, QuestParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params() -> QuestParams {
    let mut p = QuestParams::paper(10, 4, 4_000);
    p.n_patterns = 200;
    p
}

fn bench_generation(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("quest_generate");
    g.sample_size(10);
    g.bench_function("T10.I4.D4K", |b| b.iter(|| generate(&p).len()));
    g.finish();
}

fn bench_sequential(c: &mut Criterion) {
    let db = generate(&params());
    let cfg = AprioriConfig {
        min_support: Support::Fraction(0.01),
        ..AprioriConfig::default()
    };
    let mut g = c.benchmark_group("mine_sequential");
    g.sample_size(10);
    g.bench_function("optimized", |b| b.iter(|| mine(&db, &cfg).total_frequent()));
    let base = AprioriConfig {
        min_support: Support::Fraction(0.01),
        ..AprioriConfig::unoptimized()
    };
    g.bench_function("unoptimized", |b| {
        b.iter(|| mine(&db, &base).total_frequent())
    });
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let db = generate(&params());
    let base = AprioriConfig {
        min_support: Support::Fraction(0.01),
        ..AprioriConfig::default()
    };
    let mut g = c.benchmark_group("mine_parallel");
    g.sample_size(10);
    for p in [1usize, 2, 4] {
        let cfg = ParallelConfig::new(base.clone(), p);
        g.bench_with_input(BenchmarkId::new("ccpd", p), &cfg, |b, cfg| {
            b.iter(|| ccpd::mine(&db, cfg).0.total_frequent())
        });
    }
    let cfg = ParallelConfig::new(base, 2);
    g.bench_with_input(BenchmarkId::new("pccd", 2), &cfg, |b, cfg| {
        b.iter(|| pccd::mine(&db, cfg).0.total_frequent())
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_sequential, bench_parallel);
criterion_main!(benches);
