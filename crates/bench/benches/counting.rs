//! Support-counting kernel benchmarks: placement policy, short-circuit,
//! fast-path knobs, and counter-placement effects on the hot loop.

use arm_balance::BitonicHash;
use arm_dataset::Database;
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter,
    PlacementPolicy, TreeBuilder, WorkMeter,
};
use arm_mem::{FlatCounters, LocalCounters};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: u32 = 200;

fn fixture() -> (Database, CandidateSet) {
    let mut rng = StdRng::seed_from_u64(7);
    let txns: Vec<Vec<u32>> = (0..2_000)
        .map(|_| (0..12).map(|_| rng.gen_range(0..N_ITEMS)).collect())
        .collect();
    let db = Database::from_transactions(N_ITEMS, txns).unwrap();
    let mut cands = CandidateSet::new(3);
    for a in (0..N_ITEMS).step_by(2) {
        for s in 1..4u32 {
            let set = [a, a + s, a + 2 * s];
            if set[2] < N_ITEMS {
                cands.push(&set);
            }
        }
    }
    let mut sorted = cands.clone();
    sorted.sort_lex();
    (db, sorted)
}

fn bench_policies(c: &mut Criterion) {
    let (db, cands) = fixture();
    let hash = BitonicHash::new(12);
    let mut g = c.benchmark_group("count_by_policy");
    g.sample_size(15);
    for policy in [
        PlacementPolicy::Ccpd,
        PlacementPolicy::Spp,
        PlacementPolicy::Lpp,
        PlacementPolicy::Gpp,
    ] {
        let builder = TreeBuilder::new(&cands, &hash, 6);
        builder.insert_all();
        let tree = freeze_policy(&builder, policy);
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &tree,
            |b, tree| {
                b.iter(|| {
                    let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
                    let mut meter = WorkMeter::default();
                    tree.count_partition(
                        &hash,
                        &db,
                        0..db.len(),
                        None,
                        &mut scratch,
                        &mut CounterRef::Inline,
                        CountOptions::default(),
                        &mut meter,
                    );
                    meter.hits
                })
            },
        );
    }
    g.finish();
}

fn bench_short_circuit(c: &mut Criterion) {
    let (db, cands) = fixture();
    let hash = BitonicHash::new(12);
    let builder = TreeBuilder::new(&cands, &hash, 6);
    builder.insert_all();
    let tree = freeze_policy(&builder, PlacementPolicy::Gpp);
    let mut g = c.benchmark_group("short_circuit");
    g.sample_size(15);
    for sc in [false, true] {
        g.bench_with_input(BenchmarkId::from_parameter(sc), &sc, |b, &sc| {
            b.iter(|| {
                let mut scratch = CountScratch::new(N_ITEMS, tree.n_nodes());
                let mut meter = WorkMeter::default();
                tree.count_partition(
                    &hash,
                    &db,
                    0..db.len(),
                    None,
                    &mut scratch,
                    &mut CounterRef::Inline,
                    CountOptions {
                        short_circuit: sc,
                        ..CountOptions::default()
                    },
                    &mut meter,
                );
                meter.node_visits
            })
        });
    }
    g.finish();
}

/// The four counting fast-path knobs, off→on one at a time plus the
/// all-on/all-off endpoints (scratch reuse shows up as allocating the
/// scratch inside vs outside the timed loop).
fn bench_fast_path(c: &mut Criterion) {
    let (db, cands) = fixture();
    let hash = BitonicHash::new(12);
    let builder = TreeBuilder::new(&cands, &hash, 6);
    builder.insert_all();
    let tree = freeze_policy(&builder, PlacementPolicy::Gpp);
    let filter = ItemFilter::from_candidates(&cands, N_ITEMS);
    let mut g = c.benchmark_group("fast_path");
    g.sample_size(15);
    let base = CountOptions {
        hash_memo: false,
        iterative: false,
        ..CountOptions::default()
    };
    let cases: [(&str, CountOptions, bool, bool); 6] = [
        ("none", base, false, false),
        (
            "memo",
            CountOptions {
                hash_memo: true,
                ..base
            },
            false,
            false,
        ),
        ("trim", base, true, false),
        (
            "iterative",
            CountOptions {
                iterative: true,
                ..base
            },
            false,
            false,
        ),
        ("reuse", base, false, true),
        ("all", CountOptions::default(), true, true),
    ];
    for (name, opts, trim, reuse) in cases {
        let filter = trim.then_some(&filter);
        let mut outer = CountScratch::new(N_ITEMS, tree.n_nodes());
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut fresh;
                let scratch: &mut CountScratch = if reuse {
                    outer.retarget(tree.n_nodes());
                    &mut outer
                } else {
                    fresh = CountScratch::new(N_ITEMS, tree.n_nodes());
                    &mut fresh
                };
                let mut meter = WorkMeter::default();
                tree.count_partition(
                    &hash,
                    &db,
                    0..db.len(),
                    filter,
                    scratch,
                    &mut CounterRef::Inline,
                    opts,
                    &mut meter,
                );
                meter.hits
            })
        });
    }
    g.finish();
}

fn bench_counter_modes(c: &mut Criterion) {
    let (db, cands) = fixture();
    let hash = BitonicHash::new(12);
    let mut g = c.benchmark_group("counter_mode");
    g.sample_size(15);

    let builder = TreeBuilder::new(&cands, &hash, 6);
    builder.insert_all();
    let inline_tree = freeze_policy(&builder, PlacementPolicy::Gpp);
    let external_tree = freeze_policy(&builder, PlacementPolicy::LGpp);

    g.bench_function("inline", |b| {
        b.iter(|| {
            let mut scratch = CountScratch::new(N_ITEMS, inline_tree.n_nodes());
            let mut meter = WorkMeter::default();
            inline_tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Inline,
                CountOptions::default(),
                &mut meter,
            );
            meter.hits
        })
    });
    g.bench_function("shared_segregated", |b| {
        b.iter(|| {
            let counters = FlatCounters::new(cands.len());
            let mut scratch = CountScratch::new(N_ITEMS, external_tree.n_nodes());
            let mut meter = WorkMeter::default();
            external_tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Shared(&counters),
                CountOptions::default(),
                &mut meter,
            );
            meter.hits
        })
    });
    g.bench_function("local_privatized", |b| {
        b.iter(|| {
            let mut counters = LocalCounters::new(cands.len());
            let mut scratch = CountScratch::new(N_ITEMS, external_tree.n_nodes());
            let mut meter = WorkMeter::default();
            external_tree.count_partition(
                &hash,
                &db,
                0..db.len(),
                None,
                &mut scratch,
                &mut CounterRef::Local(&mut counters),
                CountOptions::default(),
                &mut meter,
            );
            meter.hits
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_short_circuit,
    bench_fast_path,
    bench_counter_modes
);
criterion_main!(benches);
