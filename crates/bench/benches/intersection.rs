//! Micro-benchmarks of the tidset intersection kernels: linear merge vs
//! galloping search vs bitmap word-AND, across densities bracketing the
//! 1/64 break-even the adaptive backend choice is built on.

use arm_vertical::{and_words, intersect_galloping, intersect_linear, TidSet};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const UNIVERSE: u32 = 65_536;

/// Deterministic sorted tid sample of `len` ids out of [`UNIVERSE`].
fn sample(len: usize, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(len);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32 % UNIVERSE
    };
    while out.len() < len {
        out.push(next());
        if out.len() == len {
            out.sort_unstable();
            out.dedup();
        }
    }
    out
}

fn bench_intersection_by_density(c: &mut Criterion) {
    // Density as tids per 64-transaction word; 1.0 = the break-even.
    for (label, frac) in [
        ("d1-256", 256usize),
        ("d1-64", 64),
        ("d1-16", 16),
        ("d1-4", 4),
    ] {
        let len = UNIVERSE as usize / frac;
        let a = sample(len, 0xA5A5);
        let b = sample(len, 0x5A5A);
        let words = (UNIVERSE as usize).div_ceil(64);
        let (abm, bbm) = (
            TidSet::Sorted(a.clone()).to_bitmap(words),
            TidSet::Sorted(b.clone()).to_bitmap(words),
        );
        let (aw, bw) = match (&abm, &bbm) {
            (TidSet::Bitmap { words: x, .. }, TidSet::Bitmap { words: y, .. }) => {
                (x.clone(), y.clone())
            }
            _ => unreachable!(),
        };
        let mut g = c.benchmark_group(format!("intersection/{label}"));
        g.bench_function("linear", |bch| {
            let mut out = Vec::with_capacity(len);
            bch.iter(|| {
                out.clear();
                intersect_linear(black_box(&a), black_box(&b), &mut out);
                out.len()
            })
        });
        g.bench_function("galloping", |bch| {
            let mut out = Vec::with_capacity(len);
            bch.iter(|| {
                out.clear();
                intersect_galloping(black_box(&a), black_box(&b), &mut out);
                out.len()
            })
        });
        g.bench_function("word-and", |bch| {
            let mut out = Vec::with_capacity(words);
            bch.iter(|| and_words(black_box(&aw), black_box(&bw), &mut out))
        });
        g.finish();
    }
}

fn bench_galloping_asymmetry(c: &mut Criterion) {
    // The galloping kernel's home turf: a short deep-prefix tidset
    // against a long singleton tidlist (1:256 length ratio).
    let small = sample(64, 0x1234);
    let large = sample(16_384, 0x9876);
    let mut g = c.benchmark_group("intersection/asymmetric-1-256");
    g.bench_function("linear", |bch| {
        let mut out = Vec::with_capacity(64);
        bch.iter(|| {
            out.clear();
            intersect_linear(black_box(&small), black_box(&large), &mut out);
            out.len()
        })
    });
    g.bench_function("galloping", |bch| {
        let mut out = Vec::with_capacity(64);
        bch.iter(|| {
            out.clear();
            intersect_galloping(black_box(&small), black_box(&large), &mut out);
            out.len()
        })
    });
    g.finish();
}

criterion_group!(
    intersection,
    bench_intersection_by_density,
    bench_galloping_asymmetry
);
criterion_main!(intersection);
