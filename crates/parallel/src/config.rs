//! Configuration of the parallel mining drivers.

use arm_balance::Scheme;
use arm_core::AprioriConfig;
use arm_exec::Scheduling;

/// How the database is split across counting threads (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DbPartition {
    /// Plain blocked split (the paper's implementation).
    #[default]
    Block,
    /// One static split weighted by the mean estimated workload over the
    /// expected iterations, `(Σ_{k=1..kmax} C(l,k)) / kmax`.
    WeightedStatic {
        /// The `kmax` horizon of the estimate.
        kmax: usize,
    },
    /// Re-partition every iteration by the exact per-transaction workload
    /// `C(l, k)` (the paper's re-partitioning alternative; contiguity is
    /// preserved so transactions rarely change owners).
    WeightedPerIteration,
}

/// Parallel CCPD/PCCD configuration (wraps the sequential knobs).
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Sequential algorithm knobs (support, hash scheme, placement, ...).
    pub base: AprioriConfig,
    /// Worker thread count (the paper's `P`).
    pub n_threads: usize,
    /// How candidate-generation work units are balanced across threads
    /// (the COMP knob of Fig. 8: `Block` = unoptimized, `Greedy` =
    /// the paper's multi-class bitonic generalization).
    pub candgen_scheme: Scheme,
    /// Adaptive parallelism (§3.1.3): candidate generation runs on one
    /// thread unless `|F_{k-1}|` reaches this size.
    pub parallel_candgen_min: usize,
    /// Database partitioning strategy for the counting phase.
    pub db_partition: DbPartition,
    /// How data-parallel phases (F1, tree build, counting) distribute
    /// their index space at run time. `Static` is the paper's fixed split
    /// (and the differential-test oracle); the dynamic modes re-balance
    /// the same partition via an `arm-exec` chunk pool without changing
    /// any result.
    pub scheduling: Scheduling,
}

impl ParallelConfig {
    /// A fully optimized configuration with `n_threads` workers.
    pub fn new(base: AprioriConfig, n_threads: usize) -> Self {
        ParallelConfig {
            base,
            n_threads: n_threads.max(1),
            candgen_scheme: Scheme::Greedy,
            parallel_candgen_min: 64,
            db_partition: DbPartition::Block,
            scheduling: Scheduling::default(),
        }
    }

    /// Builder-style candidate-generation scheme setter.
    pub fn with_candgen(mut self, s: Scheme) -> Self {
        self.candgen_scheme = s;
        self
    }

    /// Builder-style database-partition setter.
    pub fn with_db_partition(mut self, p: DbPartition) -> Self {
        self.db_partition = p;
        self
    }

    /// Builder-style scheduling setter.
    pub fn with_scheduling(mut self, s: Scheduling) -> Self {
        self.scheduling = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ParallelConfig::new(AprioriConfig::default(), 4);
        assert_eq!(c.n_threads, 4);
        assert_eq!(c.candgen_scheme, Scheme::Greedy);
        let c0 = ParallelConfig::new(AprioriConfig::default(), 0);
        assert_eq!(c0.n_threads, 1, "thread count clamps to 1");
        assert_eq!(c.scheduling, Scheduling::Stealing);
    }

    #[test]
    fn builders() {
        let c = ParallelConfig::new(AprioriConfig::default(), 2)
            .with_candgen(Scheme::Block)
            .with_db_partition(DbPartition::WeightedPerIteration)
            .with_scheduling(Scheduling::Chunked { chunk: 128 });
        assert_eq!(c.candgen_scheme, Scheme::Block);
        assert_eq!(c.db_partition, DbPartition::WeightedPerIteration);
        assert_eq!(c.scheduling, Scheduling::Chunked { chunk: 128 });
        assert_eq!(DbPartition::default(), DbPartition::Block);
    }
}
