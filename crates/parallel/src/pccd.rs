//! PCCD — Partitioned Candidate, Common Database (§3.3).
//!
//! The comparison baseline: candidates are split across workers, each
//! worker builds a *local* hash tree and scans the **entire** database
//! against it. Total counting work is therefore ~`P×` the CCPD work —
//! the paper measured a speed-*down* and dropped the approach; we keep it
//! as the baseline it is (Fig. 11 commentary, DESIGN.md experiment index).

use crate::ccpd::record_exec;
use crate::config::ParallelConfig;
use crate::scratch::ScratchPool;
use crate::stats::ParallelRunStats;
use arm_faults::{try_run_threads, MiningError, RunControl};
use arm_metrics::{Counter, MetricsRegistry, TalliedCounters};

use arm_core::{
    adaptive_fanout, count_singletons, equivalence_classes, f1_items, frequent_from_counts,
    generate_class, make_hash, FrequentLevel, IterStats, MiningResult,
};
use arm_dataset::{block_ranges, Database};
use arm_exec::{ChunkPool, Scheduling};
use arm_hashtree::{
    freeze_policy, AnyFrozenTree, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter,
    TreeBuilder, WorkMeter,
};
use arm_mem::{FlatCounters, LocalCounters};
use std::ops::Range;
use std::time::Instant;

/// Runs PCCD, returning the mining result (identical to sequential) and
/// phase statistics.
///
/// Infallible wrapper over [`try_mine`] with an inert [`RunControl`]; a
/// contained worker panic is re-raised on the caller.
pub fn mine(db: &Database, cfg: &ParallelConfig) -> (MiningResult, ParallelRunStats) {
    try_mine(db, cfg, &RunControl::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs PCCD under a [`RunControl`]: cancellation is observed once per
/// worker scan under `Static` scheduling and once per (bin, db-chunk)
/// claim under the dynamic modes; fault-plan sites fire in phase `count`.
/// Same `Err` guarantees as [`crate::ccpd::try_mine`].
pub fn try_mine(
    db: &Database,
    cfg: &ParallelConfig,
    ctrl: &RunControl,
) -> Result<(MiningResult, ParallelRunStats), MiningError> {
    let run_start = Instant::now();
    let p = cfg.n_threads.max(1);
    let min_support = cfg.base.min_support.absolute(db.len());
    let metrics = MetricsRegistry::new(p);
    let mut run_meters = vec![WorkMeter::default(); p];

    // F1 is identical to CCPD (histograms are cheap; keep it serial here
    // to emphasize that PCCD's pathology is in the counting phase).
    let span = metrics.phase("f1", 1);
    let counts = count_singletons(db, 0..db.len());
    let f1 = frequent_from_counts(&counts, min_support);
    span.finish_serial();
    ctrl.gate("f1", run_start)?;

    let f1_item_list = f1_items(&f1);
    // Same pooling as CCPD: one scratch per worker across all iterations.
    let scratch_pool = cfg
        .base
        .reuse_scratch
        .then(|| ScratchPool::new(p, db.n_items()));
    let mut iter_stats = vec![IterStats {
        k: 1,
        n_candidates: db.n_items() as usize,
        n_frequent: f1.len(),
        fanout: 0,
        tree_bytes: 0,
        tree_nodes: 0,
        join_pairs: 0,
        meter: WorkMeter::default(),
    }];
    // Uniform `max_k` semantics: a cap of 0 admits no level at all (the
    // k-loop below then breaks immediately on `k > m`).
    let mut levels = if cfg.base.max_k == Some(0) {
        Vec::new()
    } else {
        vec![f1]
    };

    let mut k = 2u32;
    loop {
        if cfg.base.max_k.is_some_and(|m| k > m) {
            break;
        }
        let Some(prev) = levels.last() else { break };
        if prev.len() < 2 {
            break;
        }

        // Sequential candidate generation (master), as in the paper's
        // PCCD variant; the candidates are then *partitioned*.
        let span = metrics.phase("candgen", k);
        let classes = equivalence_classes(prev);
        let mut cands = CandidateSet::new(k);
        let mut scratch = Vec::with_capacity(k as usize);
        let mut join_pairs = 0u64;
        for class in &classes {
            join_pairs += generate_class(prev, class.clone(), &mut cands, &mut scratch);
        }
        span.finish_serial();
        ctrl.gate("candgen", run_start)?;
        if cands.is_empty() {
            break;
        }

        let fanout = if cfg.base.adaptive_fanout {
            adaptive_fanout(&classes, cfg.base.leaf_threshold, k)
        } else {
            cfg.base.fixed_fanout
        };
        let hash = make_hash(cfg.base.hash_scheme, fanout, &f1_item_list, db.n_items());

        // Partition candidates across threads (greedy over uniform
        // weights ≈ equal tree sizes, §3.2.1).
        let weights = vec![1u64; cands.len()];
        let assignment = cfg.candgen_scheme.assign(&weights, p);

        // Each thread: local tree over its candidates, full database scan.
        // Under `Static` each bin is scanned start-to-finish by its owner
        // (the paper's formulation, kept verbatim as the oracle); the
        // dynamic modes chunk every bin's scan over (bin, db-chunk) units
        // so a thread that finishes its own tree helps scan the others.
        let span = metrics.phase("count", k);
        let opts = CountOptions {
            short_circuit: cfg.base.short_circuit,
            visited: cfg.base.visited,
            hash_memo: cfg.base.hash_memo,
            iterative: cfg.base.iterative_walk,
        };
        let (bin_counts, meters, tree_bytes, tree_nodes) = if cfg.scheduling == Scheduling::Static {
            count_static(
                db,
                cfg,
                &cands,
                &hash,
                &assignment.bins,
                &scratch_pool,
                opts,
                &metrics,
                p,
                ctrl,
            )?
        } else {
            count_dynamic(
                db,
                cfg,
                &cands,
                &hash,
                &assignment.bins,
                &scratch_pool,
                opts,
                &metrics,
                p,
                ctrl,
            )?
        };
        let count_work: Vec<u64> = meters.iter().map(|m| m.work_units()).collect();
        for (rm, m) in run_meters.iter_mut().zip(&meters) {
            rm.merge(m);
        }
        span.finish(count_work);
        ctrl.gate("count", run_start)?;

        // Reduction: scatter local counts back to global candidate ids.
        let span = metrics.phase("extract", k);
        let mut final_counts = vec![0u32; cands.len()];
        let mut total_meter = WorkMeter::default();
        for (ids, local_counts) in &bin_counts {
            for (slot, &id) in ids.iter().enumerate() {
                final_counts[id as usize] = local_counts[slot];
            }
        }
        for m in &meters {
            total_meter.merge(m);
        }
        let mut fk_sets = CandidateSet::new(k);
        let mut fk_supports = Vec::new();
        for (id, items) in cands.iter() {
            if final_counts[id as usize] >= min_support {
                fk_sets.push(items);
                fk_supports.push(final_counts[id as usize]);
            }
        }
        let fk = FrequentLevel::new(fk_sets, fk_supports);
        span.finish_serial();

        iter_stats.push(IterStats {
            k,
            n_candidates: cands.len(),
            n_frequent: fk.len(),
            fanout,
            tree_bytes,
            tree_nodes,
            join_pairs,
            meter: total_meter,
        });

        let done = fk.is_empty();
        if !done {
            levels.push(fk);
        }
        k += 1;
        if done {
            break;
        }
    }

    metrics
        .shard(0)
        .add(Counter::FaultsInjected, ctrl.faults.injected());

    let result = MiningResult {
        levels,
        iter_stats,
        min_support,
    };
    let stats = ParallelRunStats {
        n_threads: p,
        phases: metrics.take_phases(),
        wall: run_start.elapsed(),
        count_meters: run_meters,
        metrics: metrics.snapshot(),
    };
    Ok((result, stats))
}

/// Per-bin scatter-back data: the bin's global candidate ids and their
/// final counts, slot-aligned.
type BinCounts = Vec<(Vec<u32>, Vec<u32>)>;

/// The paper's static formulation, kept verbatim as the differential
/// oracle: bin `t`'s owner builds its local tree and scans the entire
/// database alone, accumulating into private `LocalCounters`.
///
/// Returns per-bin (ids, counts), per-thread meters, and total tree
/// bytes/nodes across bins.
#[allow(clippy::too_many_arguments)]
fn count_static(
    db: &Database,
    cfg: &ParallelConfig,
    cands: &CandidateSet,
    hash: &arm_balance::AnyHash,
    bins: &[Vec<usize>],
    scratch_pool: &Option<ScratchPool>,
    opts: CountOptions,
    metrics: &MetricsRegistry,
    p: usize,
    ctrl: &RunControl,
) -> Result<(BinCounts, Vec<WorkMeter>, usize, u32), MiningError> {
    let k = cands.k();
    // (global candidate ids, their counts, meter, tree bytes, tree nodes)
    type ThreadOutcome = (Vec<u32>, Vec<u32>, WorkMeter, usize, u32);
    let outcomes: Vec<ThreadOutcome> = try_run_threads(p, "count", &ctrl.cancel, |t| {
        let shard = metrics.shard(t);
        let ids = &bins[t]; // sorted → lexicographic subset
        let mut local_set = CandidateSet::new(k);
        for &id in ids {
            local_set.push(cands.get(id as u32));
        }
        let mut meter = WorkMeter::default();
        // The static formulation is one indivisible full-database scan per
        // thread, so this single checkpoint is its whole cancellation
        // surface — the latency bound counts it as one claim. The caller's
        // phase gate discards the empty partial on cancellation.
        ctrl.faults.fire("count", t, 0);
        if local_set.is_empty() || !ctrl.cancel.checkpoint() {
            return (Vec::new(), Vec::new(), meter, 0, 0);
        }
        // Local trees are private, so lock telemetry here records the
        // uncontended baseline PCCD trades CCPD's shared tree for.
        let builder = TreeBuilder::new(&local_set, hash, cfg.base.leaf_threshold);
        builder.insert_all_tallied(shard);
        let tree = freeze_policy(&builder, cfg.base.placement);
        shard.add(Counter::TreeBytes, tree.total_bytes() as u64);
        shard.add(Counter::TreeNodes, tree.n_nodes() as u64);
        // Each worker trims against its *own* candidate subset — a
        // tighter (still lossless) filter than the global one.
        let filter = cfg
            .base
            .trim_transactions
            .then(|| ItemFilter::from_candidates(&local_set, db.n_items()));
        let filter = filter.as_ref();
        let mut pooled;
        let mut fresh;
        let scratch: &mut CountScratch = match scratch_pool {
            Some(pool) => {
                shard.incr(Counter::ScratchRetargets);
                pooled = pool.slot(t);
                pooled.retarget(tree.n_nodes());
                &mut pooled
            }
            None => {
                shard.incr(Counter::ScratchAllocs);
                fresh = CountScratch::new(db.n_items(), tree.n_nodes());
                &mut fresh
            }
        };
        let local_counts: Vec<u32> = if tree.counters_inline() {
            let mut cref = CounterRef::Inline;
            tree.count_partition(
                hash,
                db,
                0..db.len(),
                filter,
                scratch,
                &mut cref,
                opts,
                &mut meter,
            );
            tree.inline_counts()
        } else {
            let mut local = LocalCounters::new(local_set.len());
            {
                let mut cref = CounterRef::Local(&mut local);
                tree.count_partition(
                    hash,
                    db,
                    0..db.len(),
                    filter,
                    scratch,
                    &mut cref,
                    opts,
                    &mut meter,
                );
            }
            local.slots().to_vec()
        };
        shard.add(Counter::ScratchStampBytes, scratch.stamp_bytes() as u64);
        let ids_u32: Vec<u32> = ids.iter().map(|&i| i as u32).collect();
        (
            ids_u32,
            local_counts,
            meter,
            tree.total_bytes(),
            tree.n_nodes(),
        )
    })?;
    let mut bin_counts = Vec::with_capacity(p);
    let mut meters = Vec::with_capacity(p);
    let mut tree_bytes = 0usize;
    let mut tree_nodes = 0u32;
    for (ids, counts, meter, tb, tn) in outcomes {
        bin_counts.push((ids, counts));
        meters.push(meter);
        tree_bytes += tb;
        tree_nodes += tn;
    }
    Ok((bin_counts, meters, tree_bytes, tree_nodes))
}

/// One bin's shared state for the dynamic count: the frozen local tree,
/// the bin's trim filter, its global candidate ids, and (when the tree's
/// counters are not inline) a shared atomic counter array any thread can
/// increment.
struct BinTree {
    tree: AnyFrozenTree,
    filter: Option<ItemFilter>,
    ids: Vec<u32>,
    shared: Option<FlatCounters>,
}

/// The dynamic formulation: tree builds stay with the bin owner (one per
/// thread, as in the paper), but the `P` full database scans are chunked
/// into (bin, db-chunk) units drawn from a [`ChunkPool`]. Bin `t`'s units
/// seed thread `t`'s share, so under low skew threads mostly scan their
/// own tree (warm cache); a thread that runs dry helps scan another bin's
/// tree, incrementing that bin's *shared atomic* counters.
///
/// Counts are bit-identical to [`count_static`]: every (transaction, bin)
/// pair is scanned exactly once and counter increments are commutative
/// atomic adds — only their distribution over threads changes. (Placement
/// policies whose counters live outside the tree use `FlatCounters` here
/// instead of per-thread arrays; same totals, now steal-safe.)
#[allow(clippy::too_many_arguments)]
fn count_dynamic(
    db: &Database,
    cfg: &ParallelConfig,
    cands: &CandidateSet,
    hash: &arm_balance::AnyHash,
    bins: &[Vec<usize>],
    scratch_pool: &Option<ScratchPool>,
    opts: CountOptions,
    metrics: &MetricsRegistry,
    p: usize,
    ctrl: &RunControl,
) -> Result<(BinCounts, Vec<WorkMeter>, usize, u32), MiningError> {
    let k = cands.k();
    // Bin `t`'s tree is built by thread `t`, exactly as in the static path.
    let bin_trees: Vec<Option<BinTree>> = try_run_threads(p, "count", &ctrl.cancel, |t| {
        let shard = metrics.shard(t);
        let ids = &bins[t];
        let mut local_set = CandidateSet::new(k);
        for &id in ids {
            local_set.push(cands.get(id as u32));
        }
        if local_set.is_empty() {
            return None;
        }
        let builder = TreeBuilder::new(&local_set, hash, cfg.base.leaf_threshold);
        builder.insert_all_tallied(shard);
        let tree = freeze_policy(&builder, cfg.base.placement);
        shard.add(Counter::TreeBytes, tree.total_bytes() as u64);
        shard.add(Counter::TreeNodes, tree.n_nodes() as u64);
        let filter = cfg
            .base
            .trim_transactions
            .then(|| ItemFilter::from_candidates(&local_set, db.n_items()));
        let shared = (!tree.counters_inline()).then(|| FlatCounters::new(local_set.len()));
        Some(BinTree {
            tree,
            filter,
            ids: ids.iter().map(|&i| i as u32).collect(),
            shared,
        })
    })?;

    // Unit space: bin b × database chunk c, flattened as b·n_chunks + c.
    // Chunks never cross a seed boundary, so every claimed range lies in
    // one bin.
    let n_chunks = db.len().min(4 * p).max(1);
    let db_chunks = block_ranges(db.len(), n_chunks);
    let seeds: Vec<Range<usize>> = (0..p).map(|t| t * n_chunks..(t + 1) * n_chunks).collect();
    let pool =
        ChunkPool::with_floor(&seeds, cfg.scheduling, 1).with_cancel_token(ctrl.cancel.clone());
    let meters: Vec<WorkMeter> = try_run_threads(p, "count", &ctrl.cancel, |t| {
        let shard = metrics.shard(t);
        let mut meter = WorkMeter::default();
        let mut pooled;
        let mut fresh;
        let scratch: &mut CountScratch = match scratch_pool {
            Some(sp) => {
                pooled = sp.slot(t);
                &mut pooled
            }
            None => {
                shard.incr(Counter::ScratchAllocs);
                fresh = CountScratch::new(db.n_items(), 0);
                &mut fresh
            }
        };
        let mut cur_bin = usize::MAX;
        let mut claim = 0u64;
        while let Some(units) = pool.next(t) {
            ctrl.faults.fire("count", t, claim);
            claim += 1;
            for u in units {
                let (bin, chunk) = (u / n_chunks, u % n_chunks);
                let Some(bt) = &bin_trees[bin] else { continue };
                if bin != cur_bin {
                    // Different tree: the stamp tables must be re-zeroed.
                    scratch.retarget(bt.tree.n_nodes());
                    shard.incr(Counter::ScratchRetargets);
                    cur_bin = bin;
                }
                let tallied = bt.shared.as_ref().map(|s| TalliedCounters::new(s, shard));
                let mut cref = match tallied.as_ref() {
                    Some(tc) => CounterRef::Shared(tc),
                    None => CounterRef::Inline,
                };
                bt.tree.count_partition(
                    hash,
                    db,
                    db_chunks[chunk].clone(),
                    bt.filter.as_ref(),
                    scratch,
                    &mut cref,
                    opts,
                    &mut meter,
                );
            }
        }
        shard.add(Counter::ScratchStampBytes, scratch.stamp_bytes() as u64);
        meter
    })?;
    record_exec(metrics, &pool);

    let mut bin_counts = Vec::with_capacity(p);
    let mut tree_bytes = 0usize;
    let mut tree_nodes = 0u32;
    for bt in bin_trees {
        match bt {
            None => bin_counts.push((Vec::new(), Vec::new())),
            Some(bt) => {
                tree_bytes += bt.tree.total_bytes();
                tree_nodes += bt.tree.n_nodes();
                let counts = match &bt.shared {
                    Some(s) => s.snapshot(),
                    None => bt.tree.inline_counts(),
                };
                bin_counts.push((bt.ids, counts));
            }
        }
    }
    Ok((bin_counts, meters, tree_bytes, tree_nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccpd;
    use arm_core::{mine as mine_seq, AprioriConfig, Support};

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    fn base_cfg() -> AprioriConfig {
        AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        }
    }

    #[test]
    fn matches_sequential() {
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        for p in [1usize, 2, 3] {
            let (r, _) = mine(&db, &ParallelConfig::new(base_cfg(), p));
            assert_eq!(r.all_itemsets(), expected, "P={p}");
        }
    }

    #[test]
    fn scheduling_modes_agree_with_static() {
        let db = paper_db();
        let static_cfg = ParallelConfig::new(base_cfg(), 3).with_scheduling(Scheduling::Static);
        let (oracle, _) = mine(&db, &static_cfg);
        for mode in [
            Scheduling::Chunked { chunk: 1 },
            Scheduling::Guided,
            Scheduling::Stealing,
        ] {
            for p in [1usize, 2, 3, 8] {
                let cfg = ParallelConfig::new(base_cfg(), p).with_scheduling(mode);
                let (r, _) = mine(&db, &cfg);
                assert_eq!(r.all_itemsets(), oracle.all_itemsets(), "{mode:?} P={p}");
            }
        }
    }

    #[test]
    fn duplicated_scan_work_exceeds_ccpd() {
        // PCCD's defining pathology: total counting work grows with P
        // because every thread scans the full database. Trimming is off so
        // the transaction tallies reflect the raw duplicated scans (PCCD's
        // per-thread filters would otherwise skip trimmed-short txns).
        let db = paper_db();
        let cfg = AprioriConfig {
            trim_transactions: false,
            ..base_cfg()
        };
        let (_, ccpd_stats) = ccpd::mine(&db, &ParallelConfig::new(cfg.clone(), 3));
        let (_, pccd_stats) = mine(&db, &ParallelConfig::new(cfg, 3));
        let ccpd_txns: u64 = ccpd_stats.count_meters.iter().map(|m| m.txns).sum();
        let pccd_txns: u64 = pccd_stats.count_meters.iter().map(|m| m.txns).sum();
        assert!(
            pccd_txns > 2 * ccpd_txns,
            "PCCD txns {pccd_txns} vs CCPD {ccpd_txns}"
        );
    }

    #[test]
    fn handles_more_threads_than_candidates() {
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        let (r, _) = mine(&db, &ParallelConfig::new(base_cfg(), 8));
        assert_eq!(r.all_itemsets(), expected);
    }
}
