//! PCCD — Partitioned Candidate, Common Database (§3.3).
//!
//! The comparison baseline: candidates are split across workers, each
//! worker builds a *local* hash tree and scans the **entire** database
//! against it. Total counting work is therefore ~`P×` the CCPD work —
//! the paper measured a speed-*down* and dropped the approach; we keep it
//! as the baseline it is (Fig. 11 commentary, DESIGN.md experiment index).

use crate::ccpd::run_threads;
use crate::config::ParallelConfig;
use crate::scratch::ScratchPool;
use crate::stats::ParallelRunStats;
use arm_metrics::{Counter, MetricsRegistry};

use arm_core::{
    adaptive_fanout, count_singletons, equivalence_classes, f1_items, frequent_from_counts,
    generate_class, make_hash, FrequentLevel, IterStats, MiningResult,
};
use arm_dataset::Database;
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter, TreeBuilder,
    WorkMeter,
};
use arm_mem::LocalCounters;
use std::time::Instant;

/// Runs PCCD, returning the mining result (identical to sequential) and
/// phase statistics.
pub fn mine(db: &Database, cfg: &ParallelConfig) -> (MiningResult, ParallelRunStats) {
    let run_start = Instant::now();
    let p = cfg.n_threads.max(1);
    let min_support = cfg.base.min_support.absolute(db.len());
    let metrics = MetricsRegistry::new(p);
    let mut run_meters = vec![WorkMeter::default(); p];

    // F1 is identical to CCPD (histograms are cheap; keep it serial here
    // to emphasize that PCCD's pathology is in the counting phase).
    let span = metrics.phase("f1", 1);
    let counts = count_singletons(db, 0..db.len());
    let f1 = frequent_from_counts(&counts, min_support);
    span.finish_serial();

    let f1_item_list = f1_items(&f1);
    // Same pooling as CCPD: one scratch per worker across all iterations.
    let scratch_pool = cfg
        .base
        .reuse_scratch
        .then(|| ScratchPool::new(p, db.n_items()));
    let mut iter_stats = vec![IterStats {
        k: 1,
        n_candidates: db.n_items() as usize,
        n_frequent: f1.len(),
        fanout: 0,
        tree_bytes: 0,
        tree_nodes: 0,
        join_pairs: 0,
        meter: WorkMeter::default(),
    }];
    let mut levels = vec![f1];

    let mut k = 2u32;
    loop {
        if cfg.base.max_k.is_some_and(|m| k > m) {
            break;
        }
        let prev = levels.last().unwrap();
        if prev.len() < 2 {
            break;
        }

        // Sequential candidate generation (master), as in the paper's
        // PCCD variant; the candidates are then *partitioned*.
        let span = metrics.phase("candgen", k);
        let classes = equivalence_classes(prev);
        let mut cands = CandidateSet::new(k);
        let mut scratch = Vec::with_capacity(k as usize);
        let mut join_pairs = 0u64;
        for class in &classes {
            join_pairs += generate_class(prev, class.clone(), &mut cands, &mut scratch);
        }
        span.finish_serial();
        if cands.is_empty() {
            break;
        }

        let fanout = if cfg.base.adaptive_fanout {
            adaptive_fanout(&classes, cfg.base.leaf_threshold, k)
        } else {
            cfg.base.fixed_fanout
        };
        let hash = make_hash(cfg.base.hash_scheme, fanout, &f1_item_list, db.n_items());

        // Partition candidates across threads (greedy over uniform
        // weights ≈ equal tree sizes, §3.2.1).
        let weights = vec![1u64; cands.len()];
        let assignment = cfg.candgen_scheme.assign(&weights, p);

        // Each thread: local tree over its candidates, full database scan.
        let span = metrics.phase("count", k);
        let opts = CountOptions {
            short_circuit: cfg.base.short_circuit,
            visited: cfg.base.visited,
            hash_memo: cfg.base.hash_memo,
            iterative: cfg.base.iterative_walk,
        };
        // (global candidate ids, their counts, meter, tree bytes, tree nodes)
        type ThreadOutcome = (Vec<u32>, Vec<u32>, WorkMeter, usize, u32);
        let outcomes: Vec<ThreadOutcome> = run_threads(p, |t| {
            let shard = metrics.shard(t);
            let ids = &assignment.bins[t]; // sorted → lexicographic subset
            let mut local_set = CandidateSet::new(k);
            for &id in ids {
                local_set.push(cands.get(id as u32));
            }
            let mut meter = WorkMeter::default();
            if local_set.is_empty() {
                return (Vec::new(), Vec::new(), meter, 0, 0);
            }
            // Local trees are private, so lock telemetry here records the
            // uncontended baseline PCCD trades CCPD's shared tree for.
            let builder = TreeBuilder::new(&local_set, &hash, cfg.base.leaf_threshold);
            builder.insert_all_tallied(shard);
            let tree = freeze_policy(&builder, cfg.base.placement);
            shard.add(Counter::TreeBytes, tree.total_bytes() as u64);
            shard.add(Counter::TreeNodes, tree.n_nodes() as u64);
            // Each worker trims against its *own* candidate subset — a
            // tighter (still lossless) filter than the global one.
            let filter = cfg
                .base
                .trim_transactions
                .then(|| ItemFilter::from_candidates(&local_set, db.n_items()));
            let filter = filter.as_ref();
            let mut pooled;
            let mut fresh;
            let scratch: &mut CountScratch = match &scratch_pool {
                Some(pool) => {
                    shard.incr(Counter::ScratchRetargets);
                    pooled = pool.slot(t);
                    pooled.retarget(tree.n_nodes());
                    &mut pooled
                }
                None => {
                    shard.incr(Counter::ScratchAllocs);
                    fresh = CountScratch::new(db.n_items(), tree.n_nodes());
                    &mut fresh
                }
            };
            let local_counts: Vec<u32> = if tree.counters_inline() {
                let mut cref = CounterRef::Inline;
                tree.count_partition(
                    &hash,
                    db,
                    0..db.len(),
                    filter,
                    scratch,
                    &mut cref,
                    opts,
                    &mut meter,
                );
                tree.inline_counts()
            } else {
                let mut local = LocalCounters::new(local_set.len());
                {
                    let mut cref = CounterRef::Local(&mut local);
                    tree.count_partition(
                        &hash,
                        db,
                        0..db.len(),
                        filter,
                        scratch,
                        &mut cref,
                        opts,
                        &mut meter,
                    );
                }
                local.slots().to_vec()
            };
            shard.add(Counter::ScratchStampBytes, scratch.stamp_bytes() as u64);
            let ids_u32: Vec<u32> = ids.iter().map(|&i| i as u32).collect();
            (
                ids_u32,
                local_counts,
                meter,
                tree.total_bytes(),
                tree.n_nodes(),
            )
        });
        let count_work: Vec<u64> = outcomes
            .iter()
            .map(|(_, _, m, _, _)| m.work_units())
            .collect();
        for (rm, (_, _, m, _, _)) in run_meters.iter_mut().zip(&outcomes) {
            rm.merge(m);
        }
        span.finish(count_work);

        // Reduction: scatter local counts back to global candidate ids.
        let span = metrics.phase("extract", k);
        let mut final_counts = vec![0u32; cands.len()];
        let mut tree_bytes = 0usize;
        let mut tree_nodes = 0u32;
        let mut total_meter = WorkMeter::default();
        for (ids, local_counts, meter, tb, tn) in &outcomes {
            for (slot, &id) in ids.iter().enumerate() {
                final_counts[id as usize] = local_counts[slot];
            }
            tree_bytes += tb;
            tree_nodes += tn;
            total_meter.merge(meter);
        }
        let mut fk_sets = CandidateSet::new(k);
        let mut fk_supports = Vec::new();
        for (id, items) in cands.iter() {
            if final_counts[id as usize] >= min_support {
                fk_sets.push(items);
                fk_supports.push(final_counts[id as usize]);
            }
        }
        let fk = FrequentLevel::new(fk_sets, fk_supports);
        span.finish_serial();

        iter_stats.push(IterStats {
            k,
            n_candidates: cands.len(),
            n_frequent: fk.len(),
            fanout,
            tree_bytes,
            tree_nodes,
            join_pairs,
            meter: total_meter,
        });

        let done = fk.is_empty();
        if !done {
            levels.push(fk);
        }
        k += 1;
        if done {
            break;
        }
    }

    let result = MiningResult {
        levels,
        iter_stats,
        min_support,
    };
    let stats = ParallelRunStats {
        n_threads: p,
        phases: metrics.take_phases(),
        wall: run_start.elapsed(),
        count_meters: run_meters,
        metrics: metrics.snapshot(),
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccpd;
    use arm_core::{mine as mine_seq, AprioriConfig, Support};

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    fn base_cfg() -> AprioriConfig {
        AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        }
    }

    #[test]
    fn matches_sequential() {
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        for p in [1usize, 2, 3] {
            let (r, _) = mine(&db, &ParallelConfig::new(base_cfg(), p));
            assert_eq!(r.all_itemsets(), expected, "P={p}");
        }
    }

    #[test]
    fn duplicated_scan_work_exceeds_ccpd() {
        // PCCD's defining pathology: total counting work grows with P
        // because every thread scans the full database. Trimming is off so
        // the transaction tallies reflect the raw duplicated scans (PCCD's
        // per-thread filters would otherwise skip trimmed-short txns).
        let db = paper_db();
        let cfg = AprioriConfig {
            trim_transactions: false,
            ..base_cfg()
        };
        let (_, ccpd_stats) = ccpd::mine(&db, &ParallelConfig::new(cfg.clone(), 3));
        let (_, pccd_stats) = mine(&db, &ParallelConfig::new(cfg, 3));
        let ccpd_txns: u64 = ccpd_stats.count_meters.iter().map(|m| m.txns).sum();
        let pccd_txns: u64 = pccd_stats.count_meters.iter().map(|m| m.txns).sum();
        assert!(
            pccd_txns > 2 * ccpd_txns,
            "PCCD txns {pccd_txns} vs CCPD {ccpd_txns}"
        );
    }

    #[test]
    fn handles_more_threads_than_candidates() {
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        let (r, _) = mine(&db, &ParallelConfig::new(base_cfg(), 8));
        assert_eq!(r.all_itemsets(), expected);
    }
}
