//! Phase-level statistics and the simulated-speedup work model.
//!
//! Every mining phase records its wall time and (when it runs on multiple
//! threads) a per-thread work tally in abstract units. The model in
//! [`ParallelRunStats::simulated_speedup`] derives the speedup the run
//! *would* achieve on dedicated cores: a parallel phase's cost shrinks
//! from `sum(work)` to `max(work)` (its critical path), serial phases
//! don't shrink at all (Amdahl).
//!
//! This is the substitution documented in DESIGN.md for the paper's
//! 12-processor SGI host: load-balance effects — the whole point of the
//! COMP/TREE optimizations — are properties of the *work distribution*,
//! which the model measures exactly, independent of how many physical
//! cores the benchmark host has. On a genuinely multi-core host, compare
//! with wall-clock ([`ParallelRunStats::wall`]) across thread counts too.

use arm_hashtree::WorkMeter;
use arm_metrics::MetricsSnapshot;
use std::time::Duration;

/// One recorded phase of a parallel mining run.
///
/// Since the observability layer landed this is [`arm_metrics::PhaseRecord`]
/// (the drivers record phases through a
/// [`arm_metrics::MetricsRegistry`]); the historical `PhaseStat` name is
/// kept as the crate's public alias.
pub use arm_metrics::PhaseRecord as PhaseStat;

/// Statistics of one parallel mining run.
#[derive(Debug, Clone)]
pub struct ParallelRunStats {
    /// Number of worker threads the run used.
    pub n_threads: usize,
    /// All phases, in execution order.
    pub phases: Vec<PhaseStat>,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Per-thread counting meters, merged across iterations.
    pub count_meters: Vec<WorkMeter>,
    /// Per-thread telemetry counters (lock contention, counter CAS
    /// retries, scratch/tree tallies). All-zero when the `metrics`
    /// feature is off.
    pub metrics: MetricsSnapshot,
}

impl ParallelRunStats {
    /// Sum of phase wall times attributed to serial phases.
    pub fn serial_wall(&self) -> Duration {
        self.phases
            .iter()
            .filter(|p| p.thread_work.is_none())
            .map(|p| p.wall)
            .sum()
    }

    /// Work-model speedup over an ideal 1-thread execution of the same
    /// work (see module docs). Phases are weighted by their measured wall
    /// time; a parallel phase's ideal cost is `wall * max(work)/sum(work)`.
    ///
    /// The model treats each phase's wall time as proportional to the
    /// total work it performed, which holds exactly when the host
    /// serializes threads (1 core) and approximately otherwise.
    pub fn simulated_speedup(&self) -> f64 {
        let mut seq = 0.0f64;
        let mut par = 0.0f64;
        for ph in &self.phases {
            let w = ph.wall.as_secs_f64();
            match &ph.thread_work {
                None => {
                    seq += w;
                    par += w;
                }
                Some(tw) => {
                    let sum: u64 = tw.iter().sum();
                    let max = tw.iter().copied().max().unwrap_or(0);
                    seq += w;
                    // A phase that recorded no work units still took `w`
                    // seconds of overhead; treat it as unshrinkable.
                    // Parenthesized so `max == sum` contributes exactly
                    // `w`: `(w * max) / sum` can round one ulp above `w`,
                    // which would push the speedup below 1.0.
                    par += if sum > 0 {
                        w * (max as f64 / sum as f64)
                    } else {
                        w
                    };
                }
            }
        }
        if par == 0.0 {
            1.0
        } else {
            seq / par
        }
    }

    /// Estimated run time on `n_threads` dedicated cores, in seconds:
    /// serial phases at their measured wall, parallel phases shrunk to
    /// their critical path (`wall * max(work)/sum(work)`). Comparable
    /// across configurations measured on the same host; the numerator of
    /// [`ParallelRunStats::simulated_speedup`].
    pub fn simulated_time(&self) -> f64 {
        let mut par = 0.0f64;
        for ph in &self.phases {
            let w = ph.wall.as_secs_f64();
            match &ph.thread_work {
                None => par += w,
                Some(tw) => {
                    let sum: u64 = tw.iter().sum();
                    let max = tw.iter().copied().max().unwrap_or(0);
                    // Parenthesized so `max == sum` contributes exactly
                    // `w`: `(w * max) / sum` can round one ulp above `w`,
                    // which would push the speedup below 1.0.
                    par += if sum > 0 {
                        w * (max as f64 / sum as f64)
                    } else {
                        w
                    };
                }
            }
        }
        par
    }

    /// Total serialized work time in seconds (the 1-core equivalent):
    /// the sum of all phase walls.
    pub fn serialized_time(&self) -> f64 {
        self.phases.iter().map(|p| p.wall.as_secs_f64()).sum()
    }

    /// [`ParallelRunStats::simulated_time`] restricted to the named
    /// phases. The paper's Figs. 8–10 report improvements "only based on
    /// the computation time"; passing `["candgen", "build", "count"]`
    /// reproduces that accounting (it excludes freeze/extract/reduce
    /// bookkeeping whose jitter would otherwise drown small effects).
    pub fn simulated_time_of(&self, names: &[&str]) -> f64 {
        let mut par = 0.0f64;
        for ph in self.phases.iter().filter(|p| names.contains(&p.name)) {
            let w = ph.wall.as_secs_f64();
            match &ph.thread_work {
                None => par += w,
                Some(tw) => {
                    let sum: u64 = tw.iter().sum();
                    let max = tw.iter().copied().max().unwrap_or(0);
                    // Parenthesized so `max == sum` contributes exactly
                    // `w`: `(w * max) / sum` can round one ulp above `w`,
                    // which would push the speedup below 1.0.
                    par += if sum > 0 {
                        w * (max as f64 / sum as f64)
                    } else {
                        w
                    };
                }
            }
        }
        par
    }

    /// The worst per-phase imbalance across all counting phases — the
    /// quantity the COMP optimization attacks.
    pub fn max_imbalance(&self, phase_name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == phase_name)
            .map(|p| p.imbalance())
            .fold(1.0, f64::max)
    }

    /// Imbalance of the single heaviest (largest total work) phase named
    /// `phase_name` — the representative figure for the paper's balancing
    /// plots, immune to degenerate late iterations where almost no work
    /// exists to balance.
    pub fn imbalance_of_heaviest(&self, phase_name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == phase_name)
            .max_by_key(|p| p.thread_work.as_ref().map_or(0, |w| w.iter().sum::<u64>()))
            .map_or(1.0, |p| p.imbalance())
    }

    /// Total work units across all threads for phases named `phase_name`.
    pub fn total_work(&self, phase_name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == phase_name)
            .filter_map(|p| p.thread_work.as_ref())
            .map(|w| w.iter().sum::<u64>())
            .sum()
    }

    /// Max-thread work units for phases named `phase_name`, summed over
    /// iterations (the critical path of that phase type).
    pub fn critical_work(&self, phase_name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == phase_name)
            .filter_map(|p| p.thread_work.as_ref())
            .map(|w| w.iter().copied().max().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(phases: Vec<PhaseStat>) -> ParallelRunStats {
        ParallelRunStats {
            n_threads: 2,
            phases,
            wall: Duration::from_secs(1),
            count_meters: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    fn ph(name: &'static str, wall_ms: u64, work: Option<Vec<u64>>) -> PhaseStat {
        PhaseStat {
            name,
            k: 2,
            wall: Duration::from_millis(wall_ms),
            thread_work: work,
        }
    }

    #[test]
    fn perfectly_balanced_two_threads_doubles() {
        let s = stats(vec![ph("count", 100, Some(vec![50, 50]))]);
        assert!((s.simulated_speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_serial_fraction_caps_speedup() {
        // Half the time serial: speedup = 1 / (0.5 + 0.25) ≈ 1.333.
        let s = stats(vec![
            ph("freeze", 100, None),
            ph("count", 100, Some(vec![50, 50])),
        ]);
        assert!((s.simulated_speedup() - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.serial_wall(), Duration::from_millis(100));
    }

    #[test]
    fn imbalance_degrades_speedup() {
        let balanced = stats(vec![ph("count", 100, Some(vec![50, 50]))]);
        let skewed = stats(vec![ph("count", 100, Some(vec![90, 10]))]);
        assert!(skewed.simulated_speedup() < balanced.simulated_speedup());
        assert!((skewed.phases[0].imbalance() - 1.8).abs() < 1e-9);
        assert!((skewed.max_imbalance("count") - 1.8).abs() < 1e-9);
    }

    #[test]
    fn zero_work_phase_is_harmless() {
        let s = stats(vec![ph("count", 0, Some(vec![0, 0]))]);
        assert_eq!(s.simulated_speedup(), 1.0);
        assert_eq!(s.phases[0].imbalance(), 1.0);
    }

    #[test]
    fn max_imbalance_missing_phase_is_one() {
        // No phase with that name ever ran: the fold over an empty
        // iterator must land on the neutral 1.0, not 0 or NaN.
        let s = stats(vec![ph("count", 10, Some(vec![90, 10]))]);
        assert_eq!(s.max_imbalance("build"), 1.0);
        assert_eq!(s.max_imbalance(""), 1.0);
        let empty = stats(Vec::new());
        assert_eq!(empty.max_imbalance("count"), 1.0);
    }

    #[test]
    fn max_imbalance_single_thread_is_one() {
        // One thread is trivially balanced (max == mean), across any
        // number of iterations of the phase.
        let s = stats(vec![
            ph("count", 10, Some(vec![40])),
            ph("count", 10, Some(vec![7])),
        ]);
        assert_eq!(s.max_imbalance("count"), 1.0);
        // Serial phases (no thread work) report 1.0 too.
        let serial = stats(vec![ph("count", 10, None)]);
        assert_eq!(serial.max_imbalance("count"), 1.0);
    }

    #[test]
    fn max_imbalance_takes_worst_iteration() {
        let s = stats(vec![
            ph("count", 10, Some(vec![50, 50])),
            ph("count", 10, Some(vec![90, 10])),
            ph("count", 10, Some(vec![60, 40])),
        ]);
        assert!((s.max_imbalance("count") - 1.8).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_heaviest_missing_phase_is_one() {
        let s = stats(vec![ph("count", 10, Some(vec![90, 10]))]);
        assert_eq!(s.imbalance_of_heaviest("build"), 1.0);
        let empty = stats(Vec::new());
        assert_eq!(empty.imbalance_of_heaviest("count"), 1.0);
    }

    #[test]
    fn imbalance_of_heaviest_single_thread_is_one() {
        let s = stats(vec![ph("count", 10, Some(vec![123]))]);
        assert_eq!(s.imbalance_of_heaviest("count"), 1.0);
    }

    #[test]
    fn imbalance_of_heaviest_picks_largest_total_work() {
        // The skewed iteration is light (total 10); the heavy iteration
        // (total 100) is balanced. The representative figure follows the
        // heavy one, unlike max_imbalance.
        let s = stats(vec![
            ph("count", 10, Some(vec![9, 1])),
            ph("count", 10, Some(vec![50, 50])),
        ]);
        assert_eq!(s.imbalance_of_heaviest("count"), 1.0);
        assert!((s.max_imbalance("count") - 1.8).abs() < 1e-9);
        // Serial iterations count as zero total work, so a parallel
        // iteration always outranks them.
        let s2 = stats(vec![
            ph("count", 10, None),
            ph("count", 10, Some(vec![30, 10])),
        ]);
        assert!((s2.imbalance_of_heaviest("count") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn work_aggregation() {
        let s = stats(vec![
            ph("count", 10, Some(vec![30, 10])),
            ph("count", 10, Some(vec![20, 20])),
            ph("candgen", 10, Some(vec![5, 5])),
        ]);
        assert_eq!(s.total_work("count"), 80);
        assert_eq!(s.critical_work("count"), 50);
        assert_eq!(s.total_work("candgen"), 10);
    }
}
