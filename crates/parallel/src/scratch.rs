//! Thread-persistent counting scratch shared by the CCPD and PCCD
//! drivers.
//!
//! Without pooling, every counting phase allocated a fresh
//! [`CountScratch`] (bitmap + stamp tables + fast-path buffers) per
//! thread per iteration. The pool keeps one slot per worker alive for the
//! whole mining run; workers re-target their slot at each iteration's
//! tree ([`CountScratch::retarget`] re-zeroes the stamp table in place
//! and keeps every other allocation), so steady-state iterations allocate
//! nothing.

use arm_hashtree::CountScratch;
use parking_lot::{Mutex, MutexGuard};

/// One [`CountScratch`] slot per worker thread, living across iterations.
pub struct ScratchPool {
    slots: Vec<Mutex<CountScratch>>,
}

impl ScratchPool {
    /// Creates a pool of `p` slots for databases over `n_items` items.
    /// Stamp tables start empty; each worker sizes its slot via
    /// [`CountScratch::retarget`] once it knows the iteration's tree.
    pub fn new(p: usize, n_items: u32) -> Self {
        ScratchPool {
            slots: (0..p)
                .map(|_| Mutex::new(CountScratch::new(n_items, 0)))
                .collect(),
        }
    }

    /// Number of slots (the worker count the pool was built for).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Locks worker `t`'s slot. Slots map 1:1 to workers so the lock is
    /// never contended; it exists only to hand `&mut` scratch through the
    /// `Fn(usize)` worker closure the thread runner requires.
    pub fn slot(&self, t: usize) -> MutexGuard<'_, CountScratch> {
        self.slots[t].lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_independent_and_reusable() {
        let pool = ScratchPool::new(3, 64);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        std::thread::scope(|s| {
            for t in 0..3 {
                let pool = &pool;
                s.spawn(move || {
                    let mut slot = pool.slot(t);
                    slot.retarget(10 + t as u32);
                });
            }
        });
        // Re-targeting again (a new "iteration") must work on every slot.
        for t in 0..3 {
            pool.slot(t).retarget(100);
        }
    }
}
