//! Bridge from a parallel mining run to the machine-readable
//! [`RunReport`] schema in [`arm_metrics`].
//!
//! [`run_report`] folds the three artifacts a driver hands back — the
//! [`MiningResult`], the [`ParallelRunStats`] (phases + work meters), and
//! the embedded [`arm_metrics::MetricsSnapshot`] — into one report that
//! serializes to the `arm-run-report/v1` JSON schema. The bench binaries
//! use this to emit comparable reports for every figure.

use crate::stats::ParallelRunStats;
use arm_core::MiningResult;
use arm_metrics::{IterReport, RunReport, ThreadReport};

/// Builds a [`RunReport`] for one completed parallel run.
///
/// `algorithm` and `dataset` are free-form labels (e.g. `"ccpd"` and
/// `"T10.I4.D800K"`); everything else is read from the run artifacts.
/// Per-thread *work* fields come from the run's merged counting meters;
/// per-thread *telemetry* fields (locks, CAS retries) come from the
/// metrics snapshot and are all-zero when the `metrics` feature is off.
pub fn run_report(
    algorithm: &str,
    dataset: &str,
    result: &MiningResult,
    stats: &ParallelRunStats,
) -> RunReport {
    let mut report = RunReport::new(algorithm, dataset, stats.n_threads, result.min_support);
    report.wall_seconds = stats.wall.as_secs_f64();
    report.simulated_speedup = stats.simulated_speedup();
    report.simulated_seconds = stats.simulated_time();
    report.set_phases(&stats.phases);
    report.threads = stats
        .count_meters
        .iter()
        .enumerate()
        .map(|(id, m)| ThreadReport {
            id,
            work_units: m.work_units(),
            txns: m.txns,
            node_visits: m.node_visits,
            leaf_scans: m.leaf_scans,
            subset_checks: m.subset_checks,
            hits: m.hits,
            ..ThreadReport::default()
        })
        .collect();
    report.apply_snapshot(&stats.metrics);
    report.iters = result
        .iter_stats
        .iter()
        .map(|it| IterReport {
            k: it.k,
            n_candidates: it.n_candidates as u64,
            n_frequent: it.n_frequent as u64,
            tree_bytes: it.tree_bytes as u64,
            tree_nodes: it.tree_nodes as u64,
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccpd;
    use crate::config::ParallelConfig;
    use arm_core::{AprioriConfig, Support};
    use arm_dataset::Database;
    use arm_metrics::MetricsRegistry;

    #[test]
    fn report_captures_run_shape() {
        let db = Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap();
        let base = AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        };
        let (result, stats) = ccpd::mine(&db, &ParallelConfig::new(base, 2));
        let report = run_report("ccpd", "paper-example", &result, &stats);

        assert_eq!(report.algorithm, "ccpd");
        assert_eq!(report.n_threads, 2);
        assert_eq!(report.min_support, 2);
        assert_eq!(report.metrics_enabled, MetricsRegistry::enabled());
        assert!(report.phases.iter().any(|p| p.name == "count"));
        assert!(report.phases.iter().any(|p| p.name == "f1"));
        assert_eq!(report.threads.len(), 2);
        assert!(report.threads.iter().any(|t| t.txns > 0));
        assert_eq!(report.iters.len(), result.iter_stats.len());
        assert!(report.simulated_speedup >= 1.0);
        if MetricsRegistry::enabled() {
            // The shared-tree build takes per-leaf locks; every acquisition
            // must show up in the per-thread telemetry.
            assert!(report.locks.leaf_acquires > 0);
            assert!(report.mem.tree_bytes > 0);
        } else {
            assert_eq!(report.locks.leaf_acquires, 0);
        }

        // The report survives a JSON round trip byte-identically.
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }
}
