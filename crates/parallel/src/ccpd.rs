//! CCPD — Common Candidate, Partitioned Database (§3.3).
//!
//! One shared candidate hash tree; the database is logically split among
//! the workers. Every phase mirrors the paper:
//!
//! * `F_1`: per-thread histograms over database blocks + sum reduction;
//! * candidate generation: equivalence classes balanced across threads by
//!   the configured scheme (§3.1.2), with adaptive parallelism (§3.1.3);
//! * tree build: all threads insert into the shared tree under per-leaf
//!   locks (§3.1.4);
//! * freeze: the placement policy's memory image is laid out (GPP's remap);
//! * support counting: each thread scans its partition against the shared
//!   tree, with counters inline / segregated / privatized per policy;
//! * extraction: the master thread selects `F_k`.
//!
//! The data-parallel phases (F1, tree build, counting) draw their work from
//! an [`arm_exec::ChunkPool`] seeded with the phase's static split: under
//! `Scheduling::Static` each thread receives exactly its block (the paper's
//! behavior and the differential oracle), while the chunked/guided/stealing
//! modes re-balance the same indices at run time without changing any
//! result.
//!
//! Every phase records wall time and per-thread work for the speedup model
//! in [`crate::stats`].

use crate::config::{DbPartition, ParallelConfig};
use crate::scratch::ScratchPool;
use crate::stats::ParallelRunStats;
use arm_core::f1::{count_pair_buckets_into, pair_bucket};
use arm_core::{
    adaptive_fanout, class_weight, count_singletons_into, equivalence_classes, f1_items,
    frequent_from_counts, generate_class, make_hash, FrequentLevel, IterStats, MiningResult,
};
use arm_dataset::{block_ranges, weighted_ranges, weighted_ranges_for_k, Database};
use arm_exec::ChunkPool;
use arm_faults::{try_run_threads, CancelToken, MiningError, RunControl};
use arm_hashtree::{
    freeze_policy, CandidateSet, CountOptions, CountScratch, CounterRef, ItemFilter, TreeBuilder,
    WorkMeter,
};
use arm_mem::counters::reduce;
use arm_mem::{FlatCounters, LocalCounters};
use arm_metrics::{Counter, MetricsRegistry, TalliedCounters};
use std::ops::Range;
use std::time::Instant;

/// Runs CCPD, returning the mining result (identical to the sequential
/// algorithm's) and the run's phase statistics.
///
/// Infallible wrapper over [`try_mine`] with an inert [`RunControl`]: no
/// token, no faults. A worker panic — impossible to observe through this
/// API before the fault layer existed — is re-raised on the caller.
pub fn mine(db: &Database, cfg: &ParallelConfig) -> (MiningResult, ParallelRunStats) {
    try_mine(db, cfg, &RunControl::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs CCPD under a [`RunControl`]: the token is checkpointed at every
/// chunk claim and phase boundary, worker panics are contained and
/// returned as [`MiningError::WorkerPanicked`], and armed fault-plan
/// sites fire at each instrumented claim (phases `f1`, `build`, `count`).
///
/// On `Err` every worker thread has joined and all shared state built by
/// the run is discarded; retrying with a live control yields results
/// bit-identical to an undisturbed run.
pub fn try_mine(
    db: &Database,
    cfg: &ParallelConfig,
    ctrl: &RunControl,
) -> Result<(MiningResult, ParallelRunStats), MiningError> {
    let run_start = Instant::now();
    let p = cfg.n_threads.max(1);
    let min_support = cfg.base.min_support.absolute(db.len());
    let metrics = MetricsRegistry::new(p);
    let mut run_meters = vec![WorkMeter::default(); p];

    // ---- F1: parallel histograms ----------------------------------------
    let span = metrics.phase("f1", 1);
    let ranges = block_ranges(db.len(), p);
    let pair_buckets = cfg.base.pair_filter_buckets;
    let pool = ChunkPool::new(&ranges, cfg.scheduling).with_cancel_token(ctrl.cancel.clone());
    let partials: Vec<(Vec<u32>, Option<Vec<u32>>, u64)> =
        try_run_threads(p, "f1", &ctrl.cancel, |t| {
            let mut singles = vec![0u32; db.n_items() as usize];
            let mut pairs = pair_buckets.map(|m| vec![0u32; m]);
            let mut items = 0u64;
            let mut chunk = 0u64;
            while let Some(r) = pool.next(t) {
                ctrl.faults.fire("f1", t, chunk);
                chunk += 1;
                items += (db.offsets()[r.end] - db.offsets()[r.start]) as u64;
                count_singletons_into(db, r.clone(), &mut singles);
                if let Some(table) = pairs.as_mut() {
                    count_pair_buckets_into(db, r, table);
                }
            }
            (singles, pairs, items)
        })?;
    record_exec(&metrics, &pool);
    ctrl.gate("f1", run_start)?;
    // Work units stay what they were under the static split — items
    // actually scanned by each thread — so imbalance remains comparable
    // across scheduling modes.
    let f1_work: Vec<u64> = partials.iter().map(|(_, _, items)| *items).collect();
    span.finish(f1_work);

    let span = metrics.phase("reduce", 1);
    let mut counts = vec![0u32; db.n_items() as usize];
    let mut pair_table = pair_buckets.map(|m| vec![0u32; m]);
    for (part, pairs, _) in &partials {
        for (c, v) in counts.iter_mut().zip(part) {
            *c += v;
        }
        if let (Some(total), Some(local)) = (pair_table.as_mut(), pairs.as_ref()) {
            for (t, v) in total.iter_mut().zip(local) {
                *t += v;
            }
        }
    }
    let f1 = frequent_from_counts(&counts, min_support);
    span.finish_serial();

    let f1_item_list = f1_items(&f1);
    // With `reuse_scratch`, one counting scratch per worker lives across
    // all iterations (re-targeted per tree) instead of being reallocated.
    let scratch_pool = cfg
        .base
        .reuse_scratch
        .then(|| ScratchPool::new(p, db.n_items()));
    let mut iter_stats = vec![IterStats {
        k: 1,
        n_candidates: db.n_items() as usize,
        n_frequent: f1.len(),
        fanout: 0,
        tree_bytes: 0,
        tree_nodes: 0,
        join_pairs: 0,
        meter: WorkMeter::default(),
    }];
    // Uniform `max_k` semantics: a cap of 0 admits no level at all (the
    // k-loop below then breaks immediately on `k > m`).
    let mut levels = if cfg.base.max_k == Some(0) {
        Vec::new()
    } else {
        vec![f1]
    };

    // ---- Iterations k >= 2 ----------------------------------------------
    let mut k = 2u32;
    loop {
        if cfg.base.max_k.is_some_and(|m| k > m) {
            break;
        }
        let Some(prev) = levels.last() else { break };
        if prev.len() < 2 {
            break;
        }

        // Candidate generation.
        let span = metrics.phase("candgen", k);
        let classes = equivalence_classes(prev);
        let weights: Vec<u64> = classes.iter().map(class_weight).collect();
        let (cands, candgen_work, join_pairs) = if p > 1 && prev.len() >= cfg.parallel_candgen_min {
            parallel_candgen(prev, &classes, &weights, cfg, p, &ctrl.cancel)?
        } else {
            // Adaptive parallelism: not enough frequent itemsets to be
            // worth forking (§3.1.3).
            let mut out = CandidateSet::new(k);
            let mut scratch = Vec::with_capacity(k as usize);
            let mut pairs = 0u64;
            for class in &classes {
                pairs += generate_class(prev, class.clone(), &mut out, &mut scratch);
            }
            let mut work = vec![0u64; p];
            work[0] = pairs;
            (out, work, pairs)
        };
        let cands = if k == 2 {
            if let (Some(m), Some(table)) = (pair_buckets, pair_table.as_ref()) {
                cands.filtered(|_, it| table[pair_bucket(it[0], it[1], m)] >= min_support)
            } else {
                cands
            }
        } else {
            cands
        };
        span.finish(candgen_work);
        ctrl.gate("candgen", run_start)?;
        if cands.is_empty() {
            break;
        }
        debug_assert!(cands.is_sorted_unique());

        let fanout = if cfg.base.adaptive_fanout {
            adaptive_fanout(&classes, cfg.base.leaf_threshold, k)
        } else {
            cfg.base.fixed_fanout
        };
        let hash = make_hash(cfg.base.hash_scheme, fanout, &f1_item_list, db.n_items());

        // Parallel tree build (shared tree, per-leaf locks). The per-leaf
        // lock telemetry of §3.1.4 is attributed to each inserter's shard.
        let span = metrics.phase("build", k);
        let builder = TreeBuilder::new(&cands, &hash, cfg.base.leaf_threshold);
        let cand_ranges = block_ranges(cands.len(), p);
        let pool =
            ChunkPool::new(&cand_ranges, cfg.scheduling).with_cancel_token(ctrl.cancel.clone());
        let build_work: Vec<u64> = try_run_threads(p, "build", &ctrl.cancel, |t| {
            let shard = metrics.shard(t);
            let mut inserted = 0u64;
            let mut chunk = 0u64;
            while let Some(r) = pool.next(t) {
                ctrl.faults.fire("build", t, chunk);
                chunk += 1;
                inserted += r.len() as u64;
                for id in r {
                    builder.insert_tallied(id as u32, shard);
                }
            }
            inserted
        })?;
        record_exec(&metrics, &pool);
        span.finish(build_work);
        ctrl.gate("build", run_start)?;

        // Freeze into the placement policy's image (serial, like the
        // paper's remap).
        let span = metrics.phase("freeze", k);
        let tree = freeze_policy(&builder, cfg.base.placement);
        span.finish_serial();
        let master = metrics.shard(0);
        master.add(Counter::TreeBytes, tree.total_bytes() as u64);
        master.add(Counter::TreeNodes, tree.n_nodes() as u64);

        // Parallel support counting.
        let span = metrics.phase("count", k);
        let db_ranges: Vec<Range<usize>> = match cfg.db_partition {
            DbPartition::Block => block_ranges(db.len(), p),
            DbPartition::WeightedStatic { kmax } => weighted_ranges(db, p, kmax),
            DbPartition::WeightedPerIteration => weighted_ranges_for_k(db, p, k),
        };
        let opts = CountOptions {
            short_circuit: cfg.base.short_circuit,
            visited: cfg.base.visited,
            hash_memo: cfg.base.hash_memo,
            iterative: cfg.base.iterative_walk,
        };
        // Shared read-only trim filter for this iteration's candidates.
        let filter = cfg
            .base
            .trim_transactions
            .then(|| ItemFilter::from_candidates(&cands, db.n_items()));
        let inline = tree.counters_inline();
        let per_thread = cfg.base.placement.per_thread_counters();
        let shared = (!inline && !per_thread).then(|| FlatCounters::new(cands.len()));

        // Dynamic modes re-chunk the very same partition the static split
        // would use, so a weighted DbPartition still seeds the deques with
        // its cost estimate and stealing only corrects the residual error.
        let pool =
            ChunkPool::new(&db_ranges, cfg.scheduling).with_cancel_token(ctrl.cancel.clone());
        let outcomes: Vec<(WorkMeter, Option<LocalCounters>)> =
            try_run_threads(p, "count", &ctrl.cancel, |t| {
                let shard = metrics.shard(t);
                let mut pooled;
                let mut fresh;
                let scratch: &mut CountScratch = match &scratch_pool {
                    Some(pool) => {
                        pooled = pool.slot(t);
                        pooled.retarget(tree.n_nodes());
                        shard.incr(Counter::ScratchRetargets);
                        &mut pooled
                    }
                    None => {
                        fresh = CountScratch::new(db.n_items(), tree.n_nodes());
                        shard.incr(Counter::ScratchAllocs);
                        &mut fresh
                    }
                };
                let mut meter = WorkMeter::default();
                let mut local = per_thread.then(|| LocalCounters::new(cands.len()));
                // Shared counters go through the tallying wrapper so striped
                // increments and their CAS retries land in this thread's shard.
                let tallied = shared.as_ref().map(|s| TalliedCounters::new(s, shard));
                {
                    let mut cref = if inline {
                        CounterRef::Inline
                    } else if let Some(l) = local.as_mut() {
                        CounterRef::Local(l)
                    } else {
                        // `shared` is built exactly when neither inline nor
                        // per-thread counters are selected.
                        CounterRef::Shared(tallied.as_ref().expect("shared counters exist"))
                    };
                    let mut chunk = 0u64;
                    while let Some(r) = pool.next(t) {
                        ctrl.faults.fire("count", t, chunk);
                        chunk += 1;
                        tree.count_partition(
                            &hash,
                            db,
                            r,
                            filter.as_ref(),
                            scratch,
                            &mut cref,
                            opts,
                            &mut meter,
                        );
                    }
                }
                shard.add(Counter::ScratchStampBytes, scratch.stamp_bytes() as u64);
                (meter, local)
            })?;
        record_exec(&metrics, &pool);
        ctrl.gate("count", run_start)?;
        let meters: Vec<WorkMeter> = outcomes.iter().map(|(m, _)| *m).collect();
        let count_work: Vec<u64> = meters.iter().map(|m| m.work_units()).collect();
        for (rm, m) in run_meters.iter_mut().zip(&meters) {
            rm.merge(m);
        }
        span.finish(count_work);

        // Reduction + extraction (master).
        let span = metrics.phase("extract", k);
        let final_counts: Vec<u32> = if inline {
            tree.inline_counts()
        } else if per_thread {
            // Every worker built a local table under `per_thread`.
            let locals: Vec<LocalCounters> = outcomes.into_iter().filter_map(|(_, l)| l).collect();
            reduce(&locals)
        } else {
            shared.expect("shared counters exist").snapshot()
        };
        let mut fk_sets = CandidateSet::new(k);
        let mut fk_supports = Vec::new();
        for (id, items) in cands.iter() {
            if final_counts[id as usize] >= min_support {
                fk_sets.push(items);
                fk_supports.push(final_counts[id as usize]);
            }
        }
        let fk = FrequentLevel::new(fk_sets, fk_supports);
        span.finish_serial();

        let mut total_meter = WorkMeter::default();
        for m in &meters {
            total_meter.merge(m);
        }
        iter_stats.push(IterStats {
            k,
            n_candidates: cands.len(),
            n_frequent: fk.len(),
            fanout,
            tree_bytes: tree.total_bytes(),
            tree_nodes: tree.n_nodes(),
            join_pairs,
            meter: total_meter,
        });

        let done = fk.is_empty();
        if !done {
            levels.push(fk);
        }
        k += 1;
        if done {
            break;
        }
    }

    // Successful runs fold the fault-layer tallies into the report; runs
    // that returned Err above discard their registry with everything else.
    metrics
        .shard(0)
        .add(Counter::FaultsInjected, ctrl.faults.injected());

    let result = MiningResult {
        levels,
        iter_stats,
        min_support,
    };
    let stats = ParallelRunStats {
        n_threads: p,
        phases: metrics.take_phases(),
        wall: run_start.elapsed(),
        count_meters: run_meters,
        metrics: metrics.snapshot(),
    };
    Ok((result, stats))
}

/// Candidate generation balanced across `p` threads at *member*
/// granularity (§3.1.2): the unit of work is one itemset of `F_{k-1}`,
/// whose workload is the number of joins it initiates within its
/// equivalence class (`|S| - i - 1`, the triangular profile of the
/// paper's running example). This matters most for `C_2`, where all of
/// `F_1` forms a single class and class-granularity partitioning would
/// serialize the join.
///
/// Returns the merged (lex-ordered) candidates, per-thread join
/// workloads, and the total pair count.
fn parallel_candgen(
    prev: &FrequentLevel,
    classes: &[Range<u32>],
    weights: &[u64],
    cfg: &ParallelConfig,
    p: usize,
    cancel: &CancelToken,
) -> Result<(CandidateSet, Vec<u64>, u64), MiningError> {
    let k = prev.k() + 1;
    // Work units: (class index, member index) with triangular weights.
    let mut units: Vec<(u32, u32)> = Vec::new();
    let mut unit_weights: Vec<u64> = Vec::new();
    for (ci, class) in classes.iter().enumerate() {
        let size = class.end - class.start;
        for m in 0..size {
            units.push((ci as u32, m));
            unit_weights.push((size - m - 1) as u64);
        }
    }
    let assignment = cfg.candgen_scheme.assign(&unit_weights, p);

    // Each thread generates the candidates its members initiate, keyed by
    // unit index for the deterministic lex-order merge.
    let outputs: Vec<Vec<(usize, CandidateSet)>> = try_run_threads(p, "candgen", cancel, |t| {
        let mut scratch = Vec::with_capacity(k as usize);
        let mut out = Vec::with_capacity(assignment.bins[t].len());
        for &u in &assignment.bins[t] {
            let (ci, m) = units[u];
            let class = &classes[ci as usize];
            let mut set = CandidateSet::new(k);
            generate_member(prev, class.clone(), m, &mut set, &mut scratch);
            out.push((u, set));
        }
        out
    })?;
    // Units are (class, member) in lexicographic generation order, so
    // concatenating by unit index restores the sequential ordering.
    let mut by_unit: Vec<(usize, CandidateSet)> = outputs.into_iter().flatten().collect();
    by_unit.sort_by_key(|(u, _)| *u);
    let mut merged = CandidateSet::new(k);
    for (_, set) in &by_unit {
        merged.extend_from(set);
    }
    let pairs = weights.iter().sum();
    Ok((merged, assignment.loads, pairs))
}

/// Generates the candidates initiated by member `m` of `class` (joins
/// with every later member), with pruning — one work unit of the
/// balanced parallel join.
fn generate_member(
    prev: &FrequentLevel,
    class: Range<u32>,
    m: u32,
    out: &mut CandidateSet,
    scratch: &mut Vec<u32>,
) {
    let sub = (class.start + m)..class.end;
    arm_core::generation::generate_class_member(prev, sub, out, scratch);
}

/// Folds a drained [`ChunkPool`]'s per-thread scheduling telemetry into
/// the matching metrics shards. Shared by every pool-driven phase in the
/// workspace (CCPD/PCCD here, the vertical miner in `arm-vertical`).
pub fn record_exec(metrics: &MetricsRegistry, pool: &ChunkPool) {
    for t in 0..pool.n_threads() {
        let s = pool.thread_stats(t);
        let shard = metrics.shard(t);
        shard.add(Counter::ChunksExecuted, s.chunks);
        shard.add(Counter::ChunksStolen, s.stolen);
        shard.add(Counter::StealAttempts, s.steal_attempts);
        shard.add(Counter::CursorCasRetries, s.cursor_retries);
        shard.add(Counter::CancelChecks, s.cancel_checks);
    }
}

/// Spawns `p` scoped threads running `f(thread_id)` and collects results
/// in thread order. With `p == 1` the closure runs on the caller's thread.
///
/// Infallible wrapper over [`arm_faults::try_run_threads`] with a throwaway
/// token: a worker panic is contained, siblings still join, and the typed
/// error is re-raised on the caller. Fallible drivers call the `try`
/// variant directly.
pub fn run_threads<R: Send>(p: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    try_run_threads(p, "run", &CancelToken::new(), f).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_balance::Scheme;
    use arm_core::{mine as mine_seq, AprioriConfig, Support};
    use arm_hashtree::PlacementPolicy;

    fn paper_db() -> Database {
        Database::from_transactions(
            8,
            [
                vec![1u32, 4, 5],
                vec![1, 2],
                vec![3, 4, 5],
                vec![1, 2, 4, 5],
            ],
        )
        .unwrap()
    }

    fn base_cfg() -> AprioriConfig {
        AprioriConfig {
            min_support: Support::Absolute(2),
            leaf_threshold: 2,
            ..AprioriConfig::default()
        }
    }

    #[test]
    fn matches_sequential_on_worked_example() {
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        for p in [1usize, 2, 3, 4] {
            let cfg = ParallelConfig::new(base_cfg(), p);
            let (r, stats) = mine(&db, &cfg);
            assert_eq!(r.all_itemsets(), expected, "P={p}");
            assert_eq!(stats.n_threads, p);
            assert!(stats.wall.as_nanos() > 0);
        }
    }

    #[test]
    fn all_policies_and_schemes_agree() {
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        for policy in PlacementPolicy::ALL {
            for scheme in [
                Scheme::Block,
                Scheme::Interleaved,
                Scheme::Bitonic,
                Scheme::Greedy,
            ] {
                let mut cfg =
                    ParallelConfig::new(base_cfg().with_placement(policy), 3).with_candgen(scheme);
                cfg.parallel_candgen_min = 1; // force parallel candgen
                let (r, _) = mine(&db, &cfg);
                assert_eq!(r.all_itemsets(), expected, "{policy} {scheme:?}");
            }
        }
    }

    #[test]
    fn db_partition_strategies_agree() {
        use crate::config::DbPartition;
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        for part in [
            DbPartition::Block,
            DbPartition::WeightedStatic { kmax: 6 },
            DbPartition::WeightedPerIteration,
        ] {
            let cfg = ParallelConfig::new(base_cfg(), 2).with_db_partition(part);
            let (r, _) = mine(&db, &cfg);
            assert_eq!(r.all_itemsets(), expected, "{part:?}");
        }
    }

    #[test]
    fn scheduling_modes_agree() {
        use arm_exec::Scheduling;
        let db = paper_db();
        let expected = mine_seq(&db, &base_cfg()).all_itemsets();
        for mode in [
            Scheduling::Static,
            Scheduling::Chunked { chunk: 1 },
            Scheduling::Guided,
            Scheduling::Stealing,
        ] {
            for p in [1usize, 2, 4] {
                let cfg = ParallelConfig::new(base_cfg(), p).with_scheduling(mode);
                let (r, _) = mine(&db, &cfg);
                assert_eq!(r.all_itemsets(), expected, "{mode:?} P={p}");
            }
        }
    }

    #[test]
    fn phase_stats_are_recorded() {
        let db = paper_db();
        let (_, stats) = mine(&db, &ParallelConfig::new(base_cfg(), 2));
        let names: Vec<&str> = stats.phases.iter().map(|p| p.name).collect();
        assert!(names.contains(&"f1"));
        assert!(names.contains(&"candgen"));
        assert!(names.contains(&"build"));
        assert!(names.contains(&"freeze"));
        assert!(names.contains(&"count"));
        assert!(names.contains(&"extract"));
        assert!(stats.simulated_speedup() >= 1.0);
        assert!(stats.total_work("count") > 0);
    }

    #[test]
    fn empty_database() {
        let db = Database::from_transactions(4, Vec::<Vec<u32>>::new()).unwrap();
        let (r, _) = mine(&db, &ParallelConfig::new(AprioriConfig::default(), 2));
        assert_eq!(r.total_frequent(), 0);
    }
}
