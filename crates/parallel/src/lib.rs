//! Shared-memory parallel association mining: the paper's CCPD algorithm
//! (and the PCCD baseline), with phase-level work accounting.
//!
//! * [`ccpd`] — Common Candidate, Partitioned Database: the algorithm the
//!   paper evaluates throughout (§3.3, Figs. 8–13);
//! * [`pccd`] — Partitioned Candidate, Common Database: the baseline whose
//!   duplicated scans make it a speed-down (kept for the comparison);
//! * [`config`] — thread count, candidate-generation balancing scheme,
//!   database partition heuristic;
//! * [`scratch`] — the per-worker counting-scratch pool both drivers keep
//!   alive across iterations;
//! * [`stats`] — per-phase wall/work records and the simulated-speedup
//!   model documented in DESIGN.md;
//! * [`report`] — folds a run into the machine-readable
//!   [`arm_metrics::RunReport`] schema the bench binaries emit.
//!
//! ```
//! use arm_core::{AprioriConfig, Support};
//! use arm_dataset::Database;
//! use arm_parallel::{ccpd, ParallelConfig};
//!
//! let db = Database::from_transactions(
//!     8,
//!     [vec![1u32, 4, 5], vec![1, 2], vec![3, 4, 5], vec![1, 2, 4, 5]],
//! )
//! .unwrap();
//! let base = AprioriConfig {
//!     min_support: Support::Absolute(2),
//!     leaf_threshold: 2,
//!     ..AprioriConfig::default()
//! };
//! let (result, stats) = ccpd::mine(&db, &ParallelConfig::new(base, 2));
//! assert_eq!(result.support_of(&[1, 4, 5]), Some(2));
//! assert!(stats.simulated_speedup() >= 1.0);
//! ```

pub mod ccpd;
pub mod config;
pub mod pccd;
pub mod report;
pub mod scratch;
pub mod stats;

pub use arm_exec::Scheduling;
pub use arm_faults::{try_run_threads, CancelToken, FaultKind, FaultPlan, MiningError, RunControl};
pub use ccpd::{record_exec, run_threads};
pub use config::{DbPartition, ParallelConfig};
pub use report::run_report;
pub use scratch::ScratchPool;
pub use stats::{ParallelRunStats, PhaseStat};
