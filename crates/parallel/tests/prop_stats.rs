//! Property tests for the work model: the simulated speedup is bounded by
//! `[1, n_threads]` and the imbalance metric is `≥ 1`, with equality
//! exactly on uniform work vectors.

use arm_metrics::PhaseRecord;
use arm_parallel::{ParallelRunStats, PhaseStat};
use proptest::collection::vec;
use proptest::prelude::*;
use std::time::Duration;

fn stats(n_threads: usize, phases: Vec<PhaseStat>) -> ParallelRunStats {
    ParallelRunStats {
        n_threads,
        phases,
        wall: Duration::from_secs(1),
        count_meters: Vec::new(),
        metrics: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Simulated speedup can never drop below 1 (shrinking a phase to its
    /// critical path cannot slow it down) nor exceed the thread count
    /// (the critical path is at least `sum/n`).
    #[test]
    fn simulated_speedup_is_bounded_by_thread_count(
        runs in vec(
            (1u64..1_000, vec(0u64..10_000, 1..8)),
            1..6,
        ),
        serial_ms in vec(0u64..100, 0..4),
    ) {
        let n_threads = runs.iter().map(|(_, w)| w.len()).max().unwrap();
        let mut phases: Vec<PhaseStat> = runs
            .iter()
            .map(|(ms, work)| PhaseRecord {
                name: "count",
                k: 2,
                wall: Duration::from_millis(*ms),
                thread_work: Some(work.clone()),
            })
            .collect();
        phases.extend(serial_ms.iter().map(|&ms| PhaseRecord {
            name: "freeze",
            k: 2,
            wall: Duration::from_millis(ms),
            thread_work: None,
        }));
        let s = stats(n_threads, phases);
        let speedup = s.simulated_speedup();
        prop_assert!(speedup >= 1.0 - 1e-9, "speedup {speedup} < 1");
        prop_assert!(
            speedup <= n_threads as f64 + 1e-9,
            "speedup {speedup} > n_threads {n_threads}"
        );
        // simulated_time * speedup == serialized_time by construction.
        let resid = s.simulated_time() * speedup - s.serialized_time();
        prop_assert!(resid.abs() < 1e-6);
    }

    /// `imbalance()` is `≥ 1`, and `== 1` exactly when every thread did
    /// the same amount of work (or the phase recorded no work at all).
    #[test]
    fn imbalance_is_at_least_one_with_equality_iff_uniform(
        work in vec(0u64..1_000, 1..9),
    ) {
        let ph = PhaseRecord {
            name: "count",
            k: 2,
            wall: Duration::from_millis(1),
            thread_work: Some(work.clone()),
        };
        let imb = ph.imbalance();
        prop_assert!(imb >= 1.0);
        let uniform = work.iter().all(|&w| w == work[0]);
        let total: u64 = work.iter().sum();
        if uniform || total == 0 {
            prop_assert_eq!(imb, 1.0);
        } else {
            prop_assert!(imb > 1.0, "non-uniform {work:?} gave imbalance 1.0");
        }
    }

    /// Serial phases always report imbalance 1 (there is nothing to
    /// balance), and a uniform run's speedup equals the parallel-fraction
    /// ideal.
    #[test]
    fn uniform_two_thread_phase_doubles(ms in 1u64..1_000, w in 1u64..10_000) {
        let ph = PhaseRecord {
            name: "count",
            k: 2,
            wall: Duration::from_millis(ms),
            thread_work: Some(vec![w, w]),
        };
        prop_assert_eq!(ph.imbalance(), 1.0);
        let s = stats(2, vec![ph]);
        prop_assert!((s.simulated_speedup() - 2.0).abs() < 1e-9);

        let serial = PhaseRecord {
            name: "candgen",
            k: 2,
            wall: Duration::from_millis(ms),
            thread_work: None,
        };
        prop_assert_eq!(serial.imbalance(), 1.0);
    }
}
