//! # parallel-arm
//!
//! Parallel association rule mining for shared-memory systems — a
//! production-grade reproduction of *"Parallel Data Mining for Association
//! Rules on Shared-Memory Multi-Processors"* (Zaki, Ogihara,
//! Parthasarathy, Li; SC'96 / KAIS'01).
//!
//! The workspace is organized bottom-up:
//!
//! | crate | contents |
//! |---|---|
//! | [`dataset`] | transaction databases (CSR layout), partitioning, IO, stats |
//! | [`quest`] | the IBM Quest synthetic basket-data generator |
//! | [`mem`] | placement substrate: word regions, counter schemes, concurrent arena |
//! | [`exec`] | chunked / guided / work-stealing scheduling over index ranges |
//! | [`balance`] | block/interleaved/bitonic partitioning, balanced hash functions |
//! | [`hashtree`] | the candidate hash tree: concurrent build, placement freeze, counting |
//! | [`core`] | sequential Apriori, candidate generation, rule generation |
//! | [`parallel`] | CCPD and PCCD with phase/work statistics |
//! | [`vertical`] | tidset (Eclat) mining: bitmap/list backends, parallel and hybrid drivers |
//! | [`faults`] | cancellation tokens, deadline/fault injection, panic-contained `try_mine_*` errors |
//! | [`metrics`] | phase timers, lock/counter telemetry, `RunReport` JSON/CSV |
//!
//! ## Quickstart
//!
//! ```
//! use parallel_arm::prelude::*;
//!
//! // Generate a small synthetic market-basket database ...
//! let db = parallel_arm::quest::generate(
//!     &QuestParams::paper(10, 4, 1_000),
//! );
//! // ... mine it with all optimizations on, using 2 threads ...
//! let base = AprioriConfig {
//!     min_support: Support::Fraction(0.01),
//!     ..AprioriConfig::default()
//! };
//! let (result, stats) = ccpd::mine(&db, &ParallelConfig::new(base, 2));
//! // ... and derive association rules.
//! let rules = generate_rules(&result, 0.9);
//! assert!(result.total_frequent() > 0);
//! assert!(stats.simulated_speedup() >= 1.0);
//! let _ = rules;
//! ```

pub mod cli;

pub use arm_balance as balance;
pub use arm_core as core;
pub use arm_dataset as dataset;
pub use arm_exec as exec;
pub use arm_faults as faults;
pub use arm_hashtree as hashtree;
pub use arm_mem as mem;
pub use arm_metrics as metrics;
pub use arm_parallel as parallel;
pub use arm_quest as quest;
pub use arm_vertical as vertical;

/// The most common imports in one place.
pub mod prelude {
    pub use arm_balance::{BitonicHash, HashFn, IndirectionHash, ModHash, Scheme};
    pub use arm_core::{
        generate_rules, mine, AprioriConfig, HashScheme, MiningResult, Rule, Support,
    };
    pub use arm_dataset::{Database, DatabaseBuilder, DatasetStats};
    pub use arm_faults::{CancelToken, FaultKind, FaultPlan, MiningError, RunControl};
    pub use arm_hashtree::PlacementPolicy;
    pub use arm_metrics::{MetricsRegistry, MetricsSnapshot, RunReport};
    pub use arm_parallel::{ccpd, pccd, run_report, ParallelConfig, ParallelRunStats, Scheduling};
    pub use arm_quest::{generate, QuestParams};
    pub use arm_vertical::{
        mine_eclat_parallel, mine_hybrid, mine_vertical, try_mine_eclat_parallel, try_mine_hybrid,
        TidBackend, VerticalConfig,
    };
}
