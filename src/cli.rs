//! Shared command-line machinery for the `arm-mine` and `arm-gen` tools.
//!
//! Deliberately dependency-free: a tiny `--flag value` parser with typed
//! getters, help rendering, and the option-to-config translation both
//! binaries share.

use arm_core::{AprioriConfig, HashScheme, Support};
use arm_hashtree::{PlacementPolicy, VisitedMode};
use std::collections::BTreeMap;

/// A parsed command line: `--key value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    opts: BTreeMap<String, String>,
    positional: Vec<String>,
    flags: Vec<String>,
}

/// Errors raised during argument handling.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--key` given without a value where one is required.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The offending raw text.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An option that is not understood.
    UnknownOption(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingValue(k) => write!(f, "--{k} requires a value"),
            CliError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "--{key}: cannot parse {value:?} (expected {expected})"),
            CliError::UnknownOption(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments. `boolean_flags` lists options that take no
    /// value (e.g. `--help`); everything else starting with `--` consumes
    /// the next token as its value. `allowed` guards against typos.
    pub fn parse(
        raw: impl IntoIterator<Item = String>,
        allowed: &[&str],
        boolean_flags: &[&str],
    ) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if !allowed.contains(&key) && !boolean_flags.contains(&key) {
                    return Err(CliError::UnknownOption(key.to_string()));
                }
                if boolean_flags.contains(&key) {
                    out.flags.push(key.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::MissingValue(key.into()))?;
                    out.opts.insert(key.to_string(), value);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// True when a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, CliError> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                key: key.into(),
                value: v.clone(),
                expected,
            }),
        }
    }
}

/// Builds an [`AprioriConfig`] from common mining options:
/// `--support` (fraction like `0.005`, or absolute like `50t`),
/// `--placement`, `--hash` (`mod` | `bitonic`), `--leaf-threshold`,
/// `--fanout` (fixed; `auto` = adaptive), `--max-k`,
/// `--no-short-circuit`, `--visited` (`node` | `level`).
pub fn mining_config(args: &Args) -> Result<AprioriConfig, CliError> {
    let mut cfg = AprioriConfig::default();

    if let Some(s) = args.get("support") {
        cfg.min_support = if let Some(abs) = s.strip_suffix('t') {
            Support::Absolute(abs.parse().map_err(|_| CliError::BadValue {
                key: "support".into(),
                value: s.into(),
                expected: "a fraction (0.005) or absolute count (50t)",
            })?)
        } else {
            Support::Fraction(s.parse().map_err(|_| CliError::BadValue {
                key: "support".into(),
                value: s.into(),
                expected: "a fraction (0.005) or absolute count (50t)",
            })?)
        };
    }
    if let Some(p) = args.get("placement") {
        cfg.placement = p
            .parse::<PlacementPolicy>()
            .map_err(|_| CliError::BadValue {
                key: "placement".into(),
                value: p.into(),
                expected: "CCPD|SPP|LPP|GPP|L-SPP|L-LPP|L-GPP|LCA-GPP",
            })?;
    }
    if let Some(h) = args.get("hash") {
        cfg.hash_scheme = match h {
            "mod" | "interleaved" => HashScheme::Interleaved,
            "bitonic" => HashScheme::Bitonic,
            _ => {
                return Err(CliError::BadValue {
                    key: "hash".into(),
                    value: h.into(),
                    expected: "mod | bitonic",
                })
            }
        };
    }
    cfg.leaf_threshold = args.get_parsed("leaf-threshold", cfg.leaf_threshold, "an integer")?;
    if let Some(f) = args.get("fanout") {
        if f == "auto" {
            cfg.adaptive_fanout = true;
        } else {
            cfg.adaptive_fanout = false;
            cfg.fixed_fanout = f.parse().map_err(|_| CliError::BadValue {
                key: "fanout".into(),
                value: f.into(),
                expected: "an integer or 'auto'",
            })?;
        }
    }
    if let Some(mk) = args.get("max-k") {
        cfg.max_k = Some(mk.parse().map_err(|_| CliError::BadValue {
            key: "max-k".into(),
            value: mk.into(),
            expected: "an integer",
        })?);
    }
    if args.flag("no-short-circuit") {
        cfg.short_circuit = false;
    }
    if let Some(v) = args.get("visited") {
        cfg.visited = match v {
            "node" => VisitedMode::PerNode,
            "level" => VisitedMode::LevelPath,
            _ => {
                return Err(CliError::BadValue {
                    key: "visited".into(),
                    value: v.into(),
                    expected: "node | level",
                })
            }
        };
    }
    Ok(cfg)
}

/// Option names accepted by [`mining_config`].
pub const MINING_OPTS: &[&str] = &[
    "support",
    "placement",
    "hash",
    "leaf-threshold",
    "fanout",
    "max-k",
    "visited",
];

/// Boolean flags accepted by [`mining_config`].
pub const MINING_FLAGS: &[&str] = &["no-short-circuit", "help"];

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(
            words.iter().map(|s| s.to_string()),
            &[
                "support",
                "placement",
                "hash",
                "fanout",
                "threads",
                "leaf-threshold",
                "max-k",
                "visited",
            ],
            &["help", "no-short-circuit"],
        )
        .unwrap()
    }

    #[test]
    fn parses_mixed_arguments() {
        let a = parse(&["in.txt", "--support", "0.01", "--help", "out.txt"]);
        assert_eq!(a.positional(), &["in.txt", "out.txt"]);
        assert_eq!(a.get("support"), Some("0.01"));
        assert!(a.flag("help"));
        assert!(!a.flag("no-short-circuit"));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        let err = Args::parse(["--bogus".to_string(), "1".into()], &["support"], &[]).unwrap_err();
        assert_eq!(err, CliError::UnknownOption("bogus".into()));
        let err = Args::parse(["--support".to_string()], &["support"], &[]).unwrap_err();
        assert_eq!(err, CliError::MissingValue("support".into()));
    }

    #[test]
    fn mining_config_translation() {
        let a = parse(&[
            "--support",
            "25t",
            "--placement",
            "lpp",
            "--hash",
            "mod",
            "--fanout",
            "16",
            "--max-k",
            "4",
            "--no-short-circuit",
            "--visited",
            "level",
        ]);
        let cfg = mining_config(&a).unwrap();
        assert_eq!(cfg.min_support, Support::Absolute(25));
        assert_eq!(cfg.placement, PlacementPolicy::Lpp);
        assert_eq!(cfg.hash_scheme, HashScheme::Interleaved);
        assert!(!cfg.adaptive_fanout);
        assert_eq!(cfg.fixed_fanout, 16);
        assert_eq!(cfg.max_k, Some(4));
        assert!(!cfg.short_circuit);
        assert_eq!(cfg.visited, VisitedMode::LevelPath);
    }

    #[test]
    fn mining_config_fraction_and_auto() {
        let a = parse(&["--support", "0.02", "--fanout", "auto"]);
        let cfg = mining_config(&a).unwrap();
        assert_eq!(cfg.min_support, Support::Fraction(0.02));
        assert!(cfg.adaptive_fanout);
    }

    #[test]
    fn mining_config_bad_values() {
        for (k, v) in [
            ("support", "lots"),
            ("placement", "ZPP"),
            ("hash", "sha256"),
            ("visited", "maybe"),
        ] {
            let a = parse(&[&format!("--{k}"), v]);
            assert!(mining_config(&a).is_err(), "--{k} {v}");
        }
    }
}
