//! `arm-mine` — mine association rules from a transaction file.
//!
//! ```text
//! arm-mine <input> [--format text|bin] [--support 0.005|50t] [--confidence 0.8]
//!          [--threads N] [--placement GPP] [--hash bitonic|mod]
//!          [--leaf-threshold 8] [--fanout auto|H] [--max-k K]
//!          [--visited node|level] [--no-short-circuit]
//!          [--summary all|maximal|closed] [--top N]
//! ```
//!
//! Text input: one transaction per line, whitespace-separated item ids.

use parallel_arm::cli::{mining_config, Args, MINING_FLAGS, MINING_OPTS};
use parallel_arm::prelude::*;

const EXTRA_OPTS: &[&str] = &["format", "confidence", "threads", "summary", "top"];

fn usage() -> ! {
    eprintln!(
        "usage: arm-mine <input> [--format text|bin] [--support 0.005|50t]\n\
         \t[--confidence 0.8] [--threads N] [--placement CCPD|SPP|LPP|GPP|L-SPP|L-LPP|L-GPP|LCA-GPP]\n\
         \t[--hash bitonic|mod] [--leaf-threshold T] [--fanout auto|H] [--max-k K]\n\
         \t[--visited node|level] [--no-short-circuit] [--summary all|maximal|closed] [--top N]"
    );
    std::process::exit(2);
}

fn main() {
    let allowed: Vec<&str> = MINING_OPTS.iter().chain(EXTRA_OPTS).copied().collect();
    let args = match Args::parse(std::env::args().skip(1), &allowed, MINING_FLAGS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    if args.flag("help") || args.positional().len() != 1 {
        usage();
    }
    let input = &args.positional()[0];

    let db = match args.get("format").unwrap_or("text") {
        "bin" => parallel_arm::dataset::io::load(input),
        "text" => std::fs::File::open(input)
            .and_then(|f| parallel_arm::dataset::io::read_text(std::io::BufReader::new(f), 0)),
        other => {
            eprintln!("error: unknown format {other:?} (text | bin)");
            usage();
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("error: cannot read {input}: {e}");
        std::process::exit(1);
    });

    let cfg = mining_config(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage();
    });
    let threads: usize = args.get_parsed("threads", 1, "an integer").unwrap_or(1);
    let confidence: f64 = args
        .get_parsed("confidence", 0.8, "a fraction")
        .unwrap_or(0.8);
    let top: usize = args.get_parsed("top", 20, "an integer").unwrap_or(20);

    eprintln!(
        "mining {} transactions over {} items ({} threads)...",
        db.len(),
        db.n_items(),
        threads
    );
    let result = if threads > 1 {
        ccpd::mine(&db, &ParallelConfig::new(cfg, threads)).0
    } else {
        parallel_arm::core::mine(&db, &cfg)
    };

    println!(
        "# {} frequent itemsets (min support {} txns, longest k={})",
        result.total_frequent(),
        result.min_support,
        result.max_k()
    );
    let listed: Vec<(Vec<u32>, u32)> = match args.get("summary").unwrap_or("all") {
        "maximal" => parallel_arm::core::maximal_itemsets(&result),
        "closed" => parallel_arm::core::closed_itemsets(&result),
        _ => result.all_itemsets(),
    };
    for (items, sup) in &listed {
        let words: Vec<String> = items.iter().map(|i| i.to_string()).collect();
        println!("{}\t{}", words.join(" "), sup);
    }

    let mut rules = generate_rules(&result, confidence);
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then(b.support.cmp(&a.support))
    });
    println!(
        "# top {} rules (confidence >= {confidence}):",
        top.min(rules.len())
    );
    for r in rules.iter().take(top) {
        println!("# {r}");
    }
}
