//! `arm-gen` — generate IBM Quest-style synthetic basket data.
//!
//! ```text
//! arm-gen <output> [--t 10] [--i 4] [--d 100000] [--items 1000]
//!         [--patterns 2000] [--seed 42] [--format text|bin]
//! ```

use parallel_arm::cli::Args;
use parallel_arm::prelude::*;

const OPTS: &[&str] = &["t", "i", "d", "items", "patterns", "seed", "format"];

fn usage() -> ! {
    eprintln!(
        "usage: arm-gen <output> [--t 10] [--i 4] [--d 100000] [--items 1000]\n\
         \t[--patterns 2000] [--seed 42] [--format text|bin]"
    );
    std::process::exit(2);
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1), OPTS, &["help"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    if args.flag("help") || args.positional().len() != 1 {
        usage();
    }
    let output = &args.positional()[0];

    let t: u32 = args.get_parsed("t", 10, "an integer").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    let i: u32 = args.get_parsed("i", 4, "an integer").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    let d: usize = args
        .get_parsed("d", 100_000, "an integer")
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            usage()
        });
    let mut params = QuestParams::paper(t, i, d);
    params.n_items = args
        .get_parsed("items", params.n_items, "an integer")
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            usage()
        });
    params.n_patterns = args
        .get_parsed("patterns", params.n_patterns, "an integer")
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            usage()
        });
    if let Some(seed) = args.get("seed") {
        params = params.with_seed(seed.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed must be an integer");
            usage()
        }));
    }

    eprintln!(
        "generating {} ({} items, {} patterns)...",
        params.name(),
        params.n_items,
        params.n_patterns
    );
    let db = generate(&params);
    let stats = DatasetStats::measure(params.name(), &db);
    eprintln!(
        "  {} transactions, avg length {:.2}, {:.2} MB",
        stats.n_txns,
        stats.avg_txn_len,
        stats.total_mb()
    );

    let res = match args.get("format").unwrap_or("text") {
        "bin" => parallel_arm::dataset::io::save(&db, output),
        "text" => std::fs::File::create(output)
            .and_then(|f| parallel_arm::dataset::io::write_text(&db, std::io::BufWriter::new(f))),
        other => {
            eprintln!("error: unknown format {other:?} (text | bin)");
            usage();
        }
    };
    if let Err(e) = res {
        eprintln!("error: cannot write {output}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {output}");
}
